//! `janne` — Jan Gustafsson's `janne_complex.c` (Mälardalen): two nested
//! loops whose iteration counts depend on each other through conditional
//! updates. A classic flow-analysis stress test; multipath, and the default
//! input `(a, b) = (1, 1)` exercises the worst-case path.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Safe bound for the outer loop.
pub const OUTER_BOUND: u32 = 30;
/// Safe bound for the inner loop.
pub const INNER_BOUND: u32 = 30;

/// Builds the `janne` program.
///
/// ```c
/// while (a < 30) {
///   while (b < a) {
///     if (b > 5) b = b * 3; else b = b + 2;
///     if (b >= 10 && b <= 12) a = a + 10; else a = a + 1;
///   }
///   a = a + 2;
///   b = b - 10;
/// }
/// ```
#[must_use]
pub fn program() -> Program {
    let mut b_ = ProgramBuilder::new("janne");
    // A tiny state array keeps the benchmark's data accesses observable in
    // the DL1 (the original works on registers only; the Mälardalen driver
    // stores results to memory).
    let state = b_.array("state", 2);
    let a = b_.var("a");
    let b = b_.var("b");

    b_.push(Stmt::while_(
        Expr::var(a).lt(Expr::c(30)),
        OUTER_BOUND,
        vec![
            Stmt::while_(
                Expr::var(b).lt(Expr::var(a)),
                INNER_BOUND,
                vec![
                    Stmt::if_(
                        Expr::var(b).gt(Expr::c(5)),
                        vec![Stmt::Assign(b, Expr::var(b).mul(Expr::c(3)))],
                        vec![Stmt::Assign(b, Expr::var(b).add(Expr::c(2)))],
                    ),
                    Stmt::if_(
                        Expr::var(b)
                            .ge(Expr::c(10))
                            .and(Expr::var(b).le(Expr::c(12))),
                        vec![Stmt::Assign(a, Expr::var(a).add(Expr::c(10)))],
                        vec![Stmt::Assign(a, Expr::var(a).add(Expr::c(1)))],
                    ),
                ],
            ),
            Stmt::Assign(a, Expr::var(a).add(Expr::c(2))),
            Stmt::Assign(b, Expr::var(b).sub(Expr::c(10))),
        ],
    ));
    b_.push(Stmt::store(state, Expr::c(0), Expr::var(a)));
    b_.push(Stmt::store(state, Expr::c(1), Expr::var(b)));
    b_.build().expect("janne is well-formed")
}

fn ab_inputs(p: &Program, a: i64, b: i64) -> Inputs {
    Inputs::new()
        .with_var(p.var_by_name("a").expect("a"), a)
        .with_var(p.var_by_name("b").expect("b"), b)
}

/// Default input `(1, 1)` — the Mälardalen driver's call.
#[must_use]
pub fn default_input() -> Inputs {
    ab_inputs(&program(), 1, 1)
}

/// A few (a, b) seeds exercising different interleavings.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    [(1, 1), (5, 0), (10, 3), (25, 20)]
        .into_iter()
        .map(|(a, b)| NamedInput {
            name: format!("a{a}_b{b}"),
            inputs: ab_inputs(&p, a, b),
        })
        .collect()
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "janne",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::MultipathWorstKnown,
    }
}

/// Reference implementation used by the tests.
#[must_use]
pub fn reference(mut a: i64, mut b: i64) -> (i64, i64) {
    while a < 30 {
        while b < a {
            if b > 5 {
                b *= 3;
            } else {
                b += 2;
            }
            if (10..=12).contains(&b) {
                a += 10;
            } else {
                a += 1;
            }
        }
        a += 2;
        b -= 10;
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn matches_reference_on_all_vectors() {
        let p = program();
        let state = p.array_by_name("state").unwrap();
        for v in input_vectors() {
            let run = execute(&p, &v.inputs).unwrap();
            // Recover the seeds from the name to drive the reference.
            let parts: Vec<i64> = v
                .name
                .trim_start_matches('a')
                .split("_b")
                .map(|s| s.parse().unwrap())
                .collect();
            let (ra, rb) = reference(parts[0], parts[1]);
            assert_eq!(run.state.array(state), &[ra, rb], "vector {}", v.name);
        }
    }

    #[test]
    fn different_seeds_different_paths() {
        let p = program();
        let vecs = input_vectors();
        let a = execute(&p, &vecs[0].inputs).unwrap();
        let b = execute(&p, &vecs[3].inputs).unwrap();
        assert_ne!(a.path.path_id(), b.path.path_id());
    }

    #[test]
    fn loop_bounds_hold_for_a_range_of_seeds() {
        let p = program();
        for a in 0..30 {
            for b in 0..20 {
                let run = execute(&p, &ab_inputs(&p, a, b));
                assert!(run.is_ok(), "bounds exceeded for a={a}, b={b}");
            }
        }
    }
}
