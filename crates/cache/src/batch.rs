//! Struct-of-arrays simulation of many independent cache layouts at once.
//!
//! A measurement campaign replays one trace under `R` random layouts. Run
//! as `R` independent [`Cache`](crate::Cache) simulations the trace is
//! re-walked `R` times; [`BatchCache`] instead holds `W` layouts side by
//! side — `W` placement seeds, `W` replacement RNG streams, one contiguous
//! `tags[layout * lines + set * ways + way]` allocation — and advances all
//! of them per trace access, so the trace (and its memory traffic) is paid
//! once per `W` runs.
//!
//! Each layout's observable behaviour is *bit-identical* to a standalone
//! `Cache` seeded the same way: layouts share no state, each draws from its
//! own RNG stream only when a standalone cache would (conflict miss with no
//! empty way under random replacement), and each keeps its own LRU/FIFO
//! clock. The equivalence is enforced by the tests below and by the
//! property suite in `mbcr-cpu`.

use mbcr_rng::{derive_seed, mix64, Rng64, Xoshiro256PlusPlus};
use mbcr_trace::LineId;

use crate::{CacheGeometry, CacheStats, PlacementPolicy, ReplacementPolicy};

const INVALID: u64 = u64::MAX;

/// `W` independent cache layouts advanced in lockstep over one line stream.
///
/// # Examples
///
/// ```
/// use mbcr_cache::{BatchCache, Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
/// use mbcr_trace::LineId;
///
/// let g = CacheGeometry::paper_l1();
/// let (p, r) = (PlacementPolicy::RandomHash, ReplacementPolicy::Random);
/// let seeds = [11, 22, 33];
/// let mut batch = BatchCache::new(g, p, r, &seeds);
/// let mut solo: Vec<Cache> = seeds.iter().map(|&s| Cache::new(g, p, r, s)).collect();
/// let mut cycles = vec![0u64; 3];
/// for line in (0..100).map(LineId) {
///     batch.access_line_accum(line, 1, 100, &mut cycles);
///     for c in &mut solo {
///         c.access_line(line);
///     }
/// }
/// for (l, c) in solo.iter().enumerate() {
///     assert_eq!(batch.stats(l), c.stats());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BatchCache {
    geometry: CacheGeometry,
    placement: PlacementPolicy,
    replacement: ReplacementPolicy,
    width: usize,
    /// Entries per layout (`sets * ways`).
    lines: usize,
    placement_seeds: Vec<u64>,
    rngs: Vec<Xoshiro256PlusPlus>,
    /// Tag store, layout-major: `tags[layout * lines + set * ways + way]`.
    tags: Vec<u64>,
    /// Per-way metadata (LRU timestamps / FIFO insertion order), same shape.
    meta: Vec<u64>,
    clocks: Vec<u64>,
    stats: Vec<CacheStats>,
}

impl BatchCache {
    /// Creates `seeds.len()` layouts; layout `l` is state-identical to
    /// `Cache::new(geometry, placement, replacement, seeds[l])`.
    #[must_use]
    pub fn new(
        geometry: CacheGeometry,
        placement: PlacementPolicy,
        replacement: ReplacementPolicy,
        seeds: &[u64],
    ) -> Self {
        let mut batch = Self {
            geometry,
            placement,
            replacement,
            width: 0,
            lines: geometry.lines() as usize,
            placement_seeds: Vec::new(),
            rngs: Vec::new(),
            tags: Vec::new(),
            meta: Vec::new(),
            clocks: Vec::new(),
            stats: Vec::new(),
        };
        batch.reseed(seeds);
        batch
    }

    /// Re-randomizes the batch for a fresh pass: `seeds.len()` flushed
    /// layouts, layout `l` state-identical to a standalone cache after
    /// `reseed(seeds[l])`. Allocations are reused across passes, so a
    /// campaign driver pays for the state once per peak width.
    pub fn reseed(&mut self, seeds: &[u64]) {
        self.width = seeds.len();
        self.placement_seeds.clear();
        self.placement_seeds
            .extend(seeds.iter().map(|&s| derive_seed(s, 0)));
        self.rngs.clear();
        self.rngs.extend(
            seeds
                .iter()
                .map(|&s| Xoshiro256PlusPlus::from_seed(derive_seed(s, 1))),
        );
        let entries = self.width * self.lines;
        self.tags.clear();
        self.tags.resize(entries, INVALID);
        self.meta.clear();
        self.meta.resize(entries, 0);
        self.clocks.clear();
        self.clocks.resize(self.width, 0);
        self.stats.clear();
        self.stats.resize(self.width, CacheStats::default());
    }

    /// Number of layouts in the batch.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The geometry all layouts share.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Hit/miss counters of layout `layout`.
    #[must_use]
    pub fn stats(&self, layout: usize) -> CacheStats {
        self.stats[layout]
    }

    /// Accesses `line` in every layout, adding `hit_cost` or `miss_cost`
    /// cycles into `cycles[layout]` according to each layout's outcome.
    ///
    /// Per layout this reproduces `Cache::access_line` exactly: clock tick,
    /// hit scan (LRU touch on hit), then fill-empty-way or evict per policy
    /// — random replacement draws from *that layout's* RNG stream only on a
    /// conflict miss, so the stream consumption matches a standalone run.
    ///
    /// # Panics
    ///
    /// Panics if `cycles.len()` differs from [`width`](Self::width).
    pub fn access_line_accum(
        &mut self,
        line: LineId,
        hit_cost: u64,
        miss_cost: u64,
        cycles: &mut [u64],
    ) {
        assert_eq!(cycles.len(), self.width, "one accumulator per layout");
        if self.replacement == ReplacementPolicy::Random {
            // Random replacement never reads `meta` or the clock (the victim
            // comes from the RNG stream), so the hot paper-default path skips
            // both: less state traffic per layout, identical observable
            // behaviour (stats, contents, RNG consumption).
            self.accum_random(line, hit_cost, miss_cost, cycles);
        } else {
            self.accum_ordered(line, hit_cost, miss_cost, cycles);
        }
    }

    /// [`access_line_accum`](Self::access_line_accum) specialized for
    /// [`ReplacementPolicy::Random`].
    fn accum_random(&mut self, line: LineId, hit_cost: u64, miss_cost: u64, cycles: &mut [u64]) {
        let ways = self.geometry.ways() as usize;
        if ways == 2 {
            // The paper's platform is 2-way; the dedicated loop below is
            // branch-free on the hit path, which is what lets the CPU keep
            // several independent layouts in flight.
            self.accum_random_2way(line, hit_cost, miss_cost, cycles);
            return;
        }
        let sets = self.geometry.sets();
        let placement = self.placement;
        for (((seed, rng), stats), (cyc, tags)) in self
            .placement_seeds
            .iter()
            .zip(self.rngs.iter_mut())
            .zip(self.stats.iter_mut())
            .zip(
                cycles
                    .iter_mut()
                    .zip(self.tags.chunks_exact_mut(self.lines)),
            )
        {
            let base = placement.set_of(line, sets, *seed) * ways;
            let set_tags = &mut tags[base..base + ways];
            if set_tags.contains(&line.0) {
                stats.hits += 1;
                *cyc += hit_cost;
                continue;
            }
            stats.misses += 1;
            let victim = match set_tags.iter().position(|&t| t == INVALID) {
                Some(w) => w,
                None => rng.below_usize(ways),
            };
            set_tags[victim] = line.0;
            *cyc += miss_cost;
        }
    }

    /// [`accum_random`](Self::accum_random) for 2-way sets (the paper's
    /// geometry): both ways are inspected unconditionally and the victim is
    /// selected with arithmetic, so the only data-dependent branch left is
    /// the conflict-miss RNG draw. Observable behaviour is identical to the
    /// generic loop — on a hit the "fill" rewrites the hit way with the tag
    /// it already holds.
    fn accum_random_2way(
        &mut self,
        line: LineId,
        hit_cost: u64,
        miss_cost: u64,
        cycles: &mut [u64],
    ) {
        let sets = self.geometry.sets();
        debug_assert!(sets.is_power_of_two());
        let mask = sets - 1;
        let placement = self.placement;
        for (((seed, rng), stats), (cyc, tags)) in self
            .placement_seeds
            .iter()
            .zip(self.rngs.iter_mut())
            .zip(self.stats.iter_mut())
            .zip(
                cycles
                    .iter_mut()
                    .zip(self.tags.chunks_exact_mut(self.lines)),
            )
        {
            let set = match placement {
                PlacementPolicy::Modulo => (line.0 & mask) as usize,
                PlacementPolicy::RandomHash => (mix64(line.0 ^ seed) & mask) as usize,
            };
            let pair = &mut tags[set * 2..set * 2 + 2];
            let (t0, t1) = (pair[0], pair[1]);
            let (hit0, hit1) = (t0 == line.0, t1 == line.0);
            let hit = hit0 | hit1;
            let (empty0, empty1) = (t0 == INVALID, t1 == INVALID);
            // Same priority as the scan: hit way, else first empty way,
            // else a random victim (the only RNG-stream consumption).
            let victim = if hit {
                usize::from(!hit0)
            } else if empty0 | empty1 {
                usize::from(!empty0)
            } else {
                rng.below_usize(2)
            };
            pair[victim] = line.0;
            stats.hits += u64::from(hit);
            stats.misses += u64::from(!hit);
            *cyc += if hit { hit_cost } else { miss_cost };
        }
    }

    /// [`access_line_accum`](Self::access_line_accum) for the clock-ordered
    /// policies (LRU/FIFO), which maintain `meta` timestamps.
    fn accum_ordered(&mut self, line: LineId, hit_cost: u64, miss_cost: u64, cycles: &mut [u64]) {
        let ways = self.geometry.ways() as usize;
        let sets = self.geometry.sets();
        for (l, cyc) in cycles.iter_mut().enumerate() {
            let set = self.placement.set_of(line, sets, self.placement_seeds[l]);
            let base = l * self.lines + set * ways;
            self.clocks[l] += 1;
            let clock = self.clocks[l];

            // Hit check.
            let mut hit_way = None;
            for w in 0..ways {
                if self.tags[base + w] == line.0 {
                    hit_way = Some(w);
                    break;
                }
            }
            if let Some(w) = hit_way {
                self.stats[l].hits += 1;
                if self.replacement == ReplacementPolicy::Lru {
                    self.meta[base + w] = clock;
                }
                *cyc += hit_cost;
                continue;
            }

            // Miss: fill an empty way if available, otherwise evict.
            self.stats[l].misses += 1;
            let victim = match (0..ways).find(|&w| self.tags[base + w] == INVALID) {
                Some(w) => w,
                None => match self.replacement {
                    ReplacementPolicy::Random => self.rngs[l].below_usize(ways),
                    ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..ways)
                        .min_by_key(|&w| self.meta[base + w])
                        .expect("ways > 0"),
                },
            };
            self.tags[base + victim] = line.0;
            self.meta[base + victim] = clock;
            *cyc += miss_cost;
        }
    }

    /// Accesses `line` in every layout, updating state and stats only.
    pub fn access_line(&mut self, line: LineId) {
        let mut sink = vec![0u64; self.width];
        self.access_line_accum(line, 0, 0, &mut sink);
    }

    /// Returns `true` if `line` is currently cached in layout `layout`.
    #[must_use]
    pub fn contains(&self, layout: usize, line: LineId) -> bool {
        let ways = self.geometry.ways() as usize;
        let set = self
            .placement
            .set_of(line, self.geometry.sets(), self.placement_seeds[layout]);
        let base = layout * self.lines + set * ways;
        (0..ways).any(|w| self.tags[base + w] == line.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use mbcr_rng::SplitMix64;

    fn policies() -> Vec<(PlacementPolicy, ReplacementPolicy)> {
        let placements = [PlacementPolicy::Modulo, PlacementPolicy::RandomHash];
        let replacements = [
            ReplacementPolicy::Random,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
        ];
        placements
            .iter()
            .flat_map(|&p| replacements.iter().map(move |&r| (p, r)))
            .collect()
    }

    /// Per-access lockstep equivalence: after every access, every layout's
    /// stats and membership match a standalone `Cache` fed the same stream.
    #[test]
    fn batch_matches_standalone_caches_per_access() {
        let geometries = [
            CacheGeometry::new(256, 2, 32).unwrap(), // 4 sets: conflicts; 2-way fast path
            CacheGeometry::new(512, 4, 32).unwrap(), // 4 sets, 4-way: generic path
        ];
        let seeds = [3u64, 1441, 0, u64::MAX];
        for (g, (p, r)) in geometries
            .into_iter()
            .flat_map(|g| policies().into_iter().map(move |pr| (g, pr)))
        {
            let mut batch = BatchCache::new(g, p, r, &seeds);
            let mut solo: Vec<Cache> = seeds.iter().map(|&s| Cache::new(g, p, r, s)).collect();
            let mut stream = SplitMix64::new(7);
            let mut cycles = vec![0u64; seeds.len()];
            for _ in 0..2000 {
                let line = LineId(stream.next_u64() % 23);
                batch.access_line_accum(line, 1, 100, &mut cycles);
                for (l, c) in solo.iter_mut().enumerate() {
                    c.access_line(line);
                    assert_eq!(batch.stats(l), c.stats(), "{p:?}/{r:?} layout {l}");
                    assert_eq!(
                        batch.contains(l, line),
                        c.contains(line),
                        "{p:?}/{r:?} layout {l}"
                    );
                }
            }
            // The accumulated cycles decompose into per-layout hit/miss sums.
            for (l, c) in solo.iter().enumerate() {
                let want = c.stats().hits + 100 * c.stats().misses;
                assert_eq!(cycles[l], want, "{p:?}/{r:?} layout {l}");
            }
        }
    }

    #[test]
    fn reseed_matches_fresh_construction() {
        let g = CacheGeometry::paper_l1();
        let (p, r) = (PlacementPolicy::RandomHash, ReplacementPolicy::Random);
        let mut recycled = BatchCache::new(g, p, r, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut warm = vec![0u64; 8];
        for i in 0..500 {
            recycled.access_line_accum(LineId(i % 90), 1, 100, &mut warm);
        }
        recycled.reseed(&[10, 20]); // narrower than the first pass
        let mut fresh = BatchCache::new(g, p, r, &[10, 20]);
        let (mut a, mut b) = (vec![0u64; 2], vec![0u64; 2]);
        for i in 0..500 {
            recycled.access_line_accum(LineId(i % 90), 1, 100, &mut a);
            fresh.access_line_accum(LineId(i % 90), 1, 100, &mut b);
        }
        assert_eq!(a, b);
        assert_eq!(recycled.stats(0), fresh.stats(0));
        assert_eq!(recycled.stats(1), fresh.stats(1));
    }

    #[test]
    fn width_zero_batch_is_inert() {
        let g = CacheGeometry::paper_l1();
        let mut batch = BatchCache::new(
            g,
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
            &[],
        );
        assert_eq!(batch.width(), 0);
        batch.access_line(LineId(1));
        batch.access_line_accum(LineId(2), 1, 100, &mut []);
    }

    #[test]
    #[should_panic(expected = "one accumulator per layout")]
    fn accumulator_length_mismatch_panics() {
        let g = CacheGeometry::paper_l1();
        let mut batch = BatchCache::new(
            g,
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
            &[1, 2],
        );
        let mut short = vec![0u64; 1];
        batch.access_line_accum(LineId(0), 1, 100, &mut short);
    }
}
