//! Worker liveness: heartbeat-refreshed leases with a TTL.
//!
//! The scheduler ([`mbcr_engine::JobScheduler`]) records *which* jobs a
//! worker holds; this table records only whether the worker is still
//! alive. Any frame from a worker — request, chunk, heartbeat, result —
//! refreshes its lease. A worker whose lease expires (hung process,
//! partitioned host) is evicted and its jobs requeued; a worker whose
//! connection drops is evicted immediately, without waiting for the TTL.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Liveness bookkeeping for connected workers.
#[derive(Debug)]
pub struct LeaseTable {
    ttl: Duration,
    last_seen: HashMap<u64, Instant>,
}

impl LeaseTable {
    /// A table declaring workers dead after `ttl` without a frame.
    #[must_use]
    pub fn new(ttl: Duration) -> Self {
        Self {
            ttl,
            last_seen: HashMap::new(),
        }
    }

    /// The configured TTL.
    #[must_use]
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Records a sign of life from `worker` at `now` (registers it on
    /// first contact).
    pub fn touch(&mut self, worker: u64, now: Instant) {
        self.last_seen.insert(worker, now);
    }

    /// Evicts `worker` (its connection closed); harmless if unknown.
    pub fn remove(&mut self, worker: u64) {
        self.last_seen.remove(&worker);
    }

    /// Number of live workers.
    #[must_use]
    pub fn live(&self) -> usize {
        self.last_seen.len()
    }

    /// Evicts and returns every worker whose lease expired by `now`, in
    /// ascending id order.
    pub fn expired(&mut self, now: Instant) -> Vec<u64> {
        let mut dead: Vec<u64> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.duration_since(seen) > self.ttl)
            .map(|(&w, _)| w)
            .collect();
        dead.sort_unstable();
        for w in &dead {
            self.last_seen.remove(w);
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_keep_a_lease_alive_and_silence_expires_it() {
        let mut table = LeaseTable::new(Duration::from_secs(10));
        let t0 = Instant::now();
        table.touch(1, t0);
        table.touch(2, t0);
        assert_eq!(table.live(), 2);
        // Worker 1 heartbeats at t+8; worker 2 stays silent.
        table.touch(1, t0 + Duration::from_secs(8));
        assert!(table.expired(t0 + Duration::from_secs(9)).is_empty());
        assert_eq!(table.expired(t0 + Duration::from_secs(12)), vec![2]);
        assert_eq!(table.live(), 1, "the expired worker is evicted");
        // Expiry reports each worker once.
        assert!(table.expired(t0 + Duration::from_secs(12)).is_empty());
        assert_eq!(table.expired(t0 + Duration::from_secs(30)), vec![1]);
    }

    #[test]
    fn expiry_is_strict_at_the_ttl_boundary() {
        // `expired` uses a strict `>`: a worker seen exactly `ttl` ago is
        // still alive (its heartbeat cadence may equal the TTL under
        // `--lease-ttl 1`-style tight configs); one nanosecond past it
        // is dead. Pinning this keeps the boundary from silently
        // flipping to `>=` and evicting healthy edge-cadence workers.
        let ttl = Duration::from_secs(10);
        let mut table = LeaseTable::new(ttl);
        let t0 = Instant::now();
        table.touch(1, t0);
        assert!(
            table.expired(t0 + ttl).is_empty(),
            "exactly ttl elapsed is not expired"
        );
        assert_eq!(table.live(), 1);
        assert_eq!(
            table.expired(t0 + ttl + Duration::from_nanos(1)),
            vec![1],
            "any instant past ttl is expired"
        );
    }

    #[test]
    fn removal_on_disconnect_beats_the_ttl() {
        let mut table = LeaseTable::new(Duration::from_secs(10));
        let t0 = Instant::now();
        table.touch(7, t0);
        table.remove(7);
        assert_eq!(table.live(), 0);
        assert!(table.expired(t0 + Duration::from_secs(60)).is_empty());
    }
}
