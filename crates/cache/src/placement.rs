//! Placement policies: which set a line maps to.

use mbcr_rng::mix64;
use mbcr_trace::LineId;

/// Placement (indexing) policy of a cache.
///
/// * [`Modulo`](PlacementPolicy::Modulo) — the conventional deterministic
///   index: `set = line mod sets`.
/// * [`RandomHash`](PlacementPolicy::RandomHash) — the MBPTA-compliant random
///   placement: a parametric avalanche hash of the line id and a per-run
///   seed. For each seed, every distinct line receives an (approximately)
///   independent, uniformly distributed set — the property TAC's
///   `(1/S)^(k−1)` co-mapping probabilities rely on. Re-seeding between runs
///   plays the role of relinking/relocating the program in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Deterministic modulo indexing.
    Modulo,
    /// Seeded random placement (hash-based).
    RandomHash,
}

impl PlacementPolicy {
    /// Returns the set index of `line` for this policy under `seed`.
    ///
    /// `sets` must be a power of two (guaranteed by
    /// [`CacheGeometry`](crate::CacheGeometry)).
    #[inline]
    #[must_use]
    pub fn set_of(self, line: LineId, sets: u64, seed: u64) -> usize {
        debug_assert!(sets.is_power_of_two());
        let mask = sets - 1;
        match self {
            PlacementPolicy::Modulo => (line.0 & mask) as usize,
            PlacementPolicy::RandomHash => (mix64(line.0 ^ seed) & mask) as usize,
        }
    }

    /// Returns `true` if the policy is time-randomized (usable for MBPTA).
    #[must_use]
    pub fn is_randomized(self) -> bool {
        matches!(self, PlacementPolicy::RandomHash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_ignores_seed() {
        let l = LineId(0x123);
        assert_eq!(
            PlacementPolicy::Modulo.set_of(l, 64, 1),
            PlacementPolicy::Modulo.set_of(l, 64, 2)
        );
        assert_eq!(PlacementPolicy::Modulo.set_of(LineId(65), 64, 0), 1);
    }

    #[test]
    fn random_hash_depends_on_seed() {
        let l = LineId(0x123);
        let a = PlacementPolicy::RandomHash.set_of(l, 64, 1);
        let b = PlacementPolicy::RandomHash.set_of(l, 64, 2);
        // Not guaranteed different for a single line, but over many lines
        // the mappings must differ somewhere.
        let differs = (0..64).any(|i| {
            PlacementPolicy::RandomHash.set_of(LineId(i), 64, 1)
                != PlacementPolicy::RandomHash.set_of(LineId(i), 64, 2)
        });
        assert!(differs);
        let _ = (a, b);
    }

    #[test]
    fn random_hash_is_uniform_over_lines() {
        // Chi-square uniformity of the placement of 64k consecutive lines
        // into 64 sets for a fixed seed.
        let sets = 64u64;
        let n = 64_000u64;
        let mut counts = vec![0u64; sets as usize];
        for line in 0..n {
            counts[PlacementPolicy::RandomHash.set_of(LineId(line), sets, 0xFEED)] += 1;
        }
        let expected = n as f64 / sets as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 63 dof, 99.9% critical value ≈ 103.4.
        assert!(chi2 < 103.4, "chi2 = {chi2}");
    }

    #[test]
    fn random_hash_pair_comapping_probability() {
        // The TAC model assumes P(set(a) == set(b)) ≈ 1/S for distinct lines.
        let sets = 8u64;
        let mut same = 0u32;
        let trials = 40_000u32;
        for seed in 0..trials {
            let a = PlacementPolicy::RandomHash.set_of(LineId(10), sets, u64::from(seed));
            let b = PlacementPolicy::RandomHash.set_of(LineId(11), sets, u64::from(seed));
            if a == b {
                same += 1;
            }
        }
        let p = f64::from(same) / f64::from(trials);
        // 1/8 = 0.125; binomial std ≈ 0.0017 -> 5 sigma ≈ 0.008.
        assert!((p - 0.125).abs() < 0.008, "p = {p}");
    }
}
