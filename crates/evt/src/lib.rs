//! MBPTA statistics: ECCDFs, EVT tail fits, i.i.d. tests and the
//! convergence procedure.
//!
//! Measurement-Based Probabilistic Timing Analysis (paper Section 2)
//! "applies Extreme Value Theory on a set of execution time measurements,
//! which must meet certain statistical properties (e.g. independence and
//! identical distribution), and determines the best set of maxima values of
//! the sample to be used to estimate the pWCET". This crate implements each
//! ingredient:
//!
//! * [`Eccdf`] — empirical complementary CDFs (Figures 2 and 4);
//! * [`fit_exp_tail`] — the coefficient-of-variation exponential-tail
//!   method (Abella et al., TODAES'17), the MBPTA engine the paper builds
//!   on;
//! * [`fit_gumbel`] — classical block-maxima Gumbel fitting for
//!   comparison (Palma et al., RTSS'17);
//! * [`Pwcet`] — the combined estimate: empirical body + extrapolated tail,
//!   queried at any exceedance probability (the paper reports 10⁻¹²);
//! * [`IidReport`] — Kolmogorov–Smirnov, Ljung–Box and runs tests;
//! * [`converge`] — the iterative campaign-sizing procedure producing
//!   `R_orig` / `R_pub`;
//! * [`stats`] — the underlying special functions (own implementations —
//!   no external statistics dependency, bit-stable results).
//!
//! # Examples
//!
//! ```
//! use mbcr_evt::{converge, ConvergenceConfig};
//! use mbcr_rng::{Rng64, Xoshiro256PlusPlus};
//!
//! // A synthetic MBPTA campaign over an exponential-tailed platform.
//! let mut rng = Xoshiro256PlusPlus::from_seed(1);
//! let outcome = converge(
//!     |count| (0..count).map(|_| 2000 + rng.exponential(0.01) as u64).collect(),
//!     &ConvergenceConfig::default(),
//! )?;
//! assert!(outcome.converged);
//! println!(
//!     "R = {} runs, pWCET@1e-12 = {:.0} cycles",
//!     outcome.runs,
//!     outcome.pwcet.quantile(1e-12),
//! );
//! # Ok::<(), mbcr_evt::EvtError>(())
//! ```

mod convergence;
mod eccdf;
mod exp_tail;
mod gumbel;
pub mod iid;
mod pwcet;
pub mod stats;

pub use convergence::{converge, ConvergenceConfig, ConvergenceOutcome};
pub use eccdf::Eccdf;
pub use exp_tail::{fit_exp_tail, EvtError, ExpTailFit, TailConfig};
pub use gumbel::{fit_gumbel, GumbelFit};
pub use iid::IidReport;
pub use pwcet::{Dither, FitMethod, Pwcet, TailModel};
