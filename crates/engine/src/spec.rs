//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names *what* to analyse — benchmarks × inputs × cache
//! geometries × seeds × analysis kinds — without saying how to schedule it.
//! Specs round-trip through JSON so campaigns are reviewable, diffable
//! artifacts; [`crate::run_sweep`] expands one into a job DAG and executes
//! it.

use mbcr::AnalysisConfig;
use mbcr_cache::CacheGeometry;
use mbcr_json::{Json, Serialize};

use crate::EngineError;

/// A cache geometry named by its parameters (both L1s get this shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometrySpec {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_size: u64,
}

impl GeometrySpec {
    /// The paper's platform: 4 KB, 2-way, 32 B lines.
    #[must_use]
    pub fn paper_l1() -> Self {
        Self {
            size_bytes: 4096,
            ways: 2,
            line_size: 32,
        }
    }

    /// Stable label used in job keys, artifact rows and the CLI
    /// (`"4096B-2w-32B"`).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}B-{}w-{}B", self.size_bytes, self.ways, self.line_size)
    }

    /// Validates and instantiates the simulator geometry.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] if the parameters are inconsistent (size not a
    /// power-of-two multiple of `ways * line_size`, …).
    pub fn geometry(&self) -> Result<CacheGeometry, EngineError> {
        CacheGeometry::new(self.size_bytes, self.ways, self.line_size)
            .map_err(|e| EngineError::Spec(format!("geometry {}: {e}", self.label())))
    }

    /// Parses `"SIZE:WAYS:LINE"` (e.g. `"4096:2:32"`) or `"paper"`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        if text == "paper" {
            return Ok(Self::paper_l1());
        }
        let parts: Vec<&str> = text.split(':').collect();
        let bad = || EngineError::Spec(format!("bad geometry '{text}', want SIZE:WAYS:LINE"));
        if parts.len() != 3 {
            return Err(bad());
        }
        let spec = Self {
            size_bytes: parts[0].parse().map_err(|_| bad())?,
            ways: parts[1].parse().map_err(|_| bad())?,
            line_size: parts[2].parse().map_err(|_| bad())?,
        };
        spec.geometry()?;
        Ok(spec)
    }

    /// Reads a geometry from its [`Serialize`] form (the spec/wire
    /// layout).
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing or malformed fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| EngineError::Spec(format!("geometry needs integer '{k}'")))
        };
        Ok(Self {
            size_bytes: field("size_bytes")?,
            ways: u32::try_from(field("ways")?)
                .map_err(|_| EngineError::Spec("geometry 'ways' out of range".into()))?,
            line_size: field("line_size")?,
        })
    }
}

impl Serialize for GeometrySpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("size_bytes".to_string(), Json::UInt(self.size_bytes)),
            ("ways".to_string(), Json::UInt(u64::from(self.ways))),
            ("line_size".to_string(), Json::UInt(self.line_size)),
        ])
    }
}

/// Which input vectors of each benchmark a sweep covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSelection {
    /// The default input only (the paper's Table 2 baseline).
    Default,
    /// Every exploratory input vector the benchmark ships.
    All,
    /// Specific vectors by name (unknown names fail expansion).
    Named(Vec<String>),
}

impl InputSelection {
    fn to_json(&self) -> Json {
        match self {
            InputSelection::Default => "default".into(),
            InputSelection::All => "all".into(),
            InputSelection::Named(names) => {
                Json::Arr(names.iter().map(|n| n.as_str().into()).collect())
            }
        }
    }

    fn from_json(v: &Json) -> Result<Self, EngineError> {
        match v {
            Json::Str(s) if s == "default" => Ok(InputSelection::Default),
            Json::Str(s) if s == "all" => Ok(InputSelection::All),
            Json::Arr(items) => {
                let names = items
                    .iter()
                    .map(|i| i.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| EngineError::Spec("input names must be strings".into()))?;
                Ok(InputSelection::Named(names))
            }
            _ => Err(EngineError::Spec(
                "inputs must be \"default\", \"all\" or a name array".into(),
            )),
        }
    }
}

/// The analysis kinds a sweep runs per (benchmark, geometry, seed) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// Plain MBPTA on the original program (`R_orig` baseline).
    Original,
    /// The paper's PUB + TAC + MBPTA pipeline, one job per input vector.
    PubTac,
    /// Corollary 2 combination over every pubbed path (depends on the
    /// `PubTac` jobs of the same cell).
    Multipath,
}

impl AnalysisKind {
    /// Stable spelling used in specs, manifests and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Original => "original",
            AnalysisKind::PubTac => "pub_tac",
            AnalysisKind::Multipath => "multipath",
        }
    }

    /// Inverse of [`AnalysisKind::name`] (also accepts `pub-tac`).
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on an unknown kind.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        match text {
            "original" => Ok(AnalysisKind::Original),
            "pub_tac" | "pub-tac" => Ok(AnalysisKind::PubTac),
            "multipath" => Ok(AnalysisKind::Multipath),
            other => Err(EngineError::Spec(format!(
                "unknown analysis kind '{other}'"
            ))),
        }
    }
}

/// The result-affecting analysis knobs of one sweep, detached from its
/// dimensions — everything a sweep-agnostic executor (a shard worker)
/// needs, together with a job's geometry and derived seed, to rebuild the
/// exact [`AnalysisConfig`] the sweep's planner used. Ships inside each
/// wire job so one worker fleet can serve many concurrent sweeps without
/// per-sweep handshakes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisKnobs {
    /// Use the shrunk `quick()` campaign preset.
    pub quick: bool,
    /// Campaign-length cap override.
    pub max_campaign_runs: Option<usize>,
    /// Exceedance probability for headline pWCET values.
    pub exceedance: f64,
    /// Checkpoint-interval override (digest-neutral; see
    /// [`crate::RunOptions::checkpoint_interval`]).
    pub checkpoint_interval: Option<usize>,
    /// Campaign layouts-per-pass override (digest-neutral; see
    /// [`crate::RunOptions::batch_width`]).
    pub batch_width: Option<usize>,
}

impl AnalysisKnobs {
    /// Extracts the knobs of `spec`, folding in a run's digest-neutral
    /// checkpoint and batching overrides.
    #[must_use]
    pub fn from_spec(
        spec: &SweepSpec,
        checkpoint_interval: Option<usize>,
        batch_width: Option<usize>,
    ) -> Self {
        Self {
            quick: spec.quick,
            max_campaign_runs: spec.max_campaign_runs,
            exceedance: spec.exceedance,
            checkpoint_interval,
            batch_width,
        }
    }

    /// Instantiates the per-job analysis configuration — the single
    /// definition shared by the planner ([`crate::SweepPlan`]) and remote
    /// executors, so their stage digests can never disagree.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] if the geometry is invalid.
    pub fn config(
        &self,
        geometry: &GeometrySpec,
        job_seed: u64,
    ) -> Result<AnalysisConfig, EngineError> {
        let mut b = AnalysisConfig::builder()
            .seed(job_seed)
            .l1_geometry(geometry.geometry()?)
            .exceedance(self.exceedance)
            .threads(1);
        if self.quick {
            b = b.quick();
        }
        if let Some(cap) = self.max_campaign_runs {
            b = b.max_campaign_runs(cap);
        }
        let mut cfg = b.build();
        if let Some(interval) = self.checkpoint_interval {
            cfg.checkpoint_interval = interval;
        }
        if let Some(width) = self.batch_width {
            cfg.batch_width = width.max(1);
        }
        Ok(cfg)
    }

    /// The knobs' wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("quick".to_string(), Json::Bool(self.quick)),
            (
                "max_campaign_runs".to_string(),
                Serialize::to_json(&self.max_campaign_runs),
            ),
            ("exceedance".to_string(), Json::Num(self.exceedance)),
            (
                "checkpoint_interval".to_string(),
                Serialize::to_json(&self.checkpoint_interval.map(|v| v as u64)),
            ),
            (
                "batch_width".to_string(),
                Serialize::to_json(&self.batch_width.map(|v| v as u64)),
            ),
        ])
    }

    /// Inverse of [`AnalysisKnobs::to_json`]. `None` on malformed input.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        let opt_usize = |k: &str| match v.get(k) {
            None | Some(Json::Null) => Some(None),
            Some(other) => other.as_usize().map(Some),
        };
        Some(Self {
            quick: v.get("quick")?.as_bool()?,
            max_campaign_runs: opt_usize("max_campaign_runs")?,
            exceedance: v
                .get("exceedance")?
                .as_f64()
                .filter(|p| *p > 0.0 && *p < 1.0)?,
            checkpoint_interval: opt_usize("checkpoint_interval")?,
            // Absent on frames from pre-batching peers: the tuned default.
            batch_width: opt_usize("batch_width")?,
        })
    }
}

/// A declarative batch campaign: the cross product the engine expands into
/// a job DAG.
///
/// # Examples
///
/// ```
/// use mbcr_engine::{GeometrySpec, SweepSpec};
///
/// let spec = SweepSpec::new("demo")
///     .benchmarks(["bs", "cnt"])
///     .geometries([GeometrySpec::paper_l1()])
///     .seeds([42]);
/// let text = spec.to_json().to_pretty();
/// assert_eq!(SweepSpec::from_json_text(&text).unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (also the default run-directory name).
    pub name: String,
    /// Benchmarks to analyse; empty means every benchmark in the registry.
    pub benchmarks: Vec<String>,
    /// Input vectors per benchmark.
    pub inputs: InputSelection,
    /// Cache geometries to sweep.
    pub geometries: Vec<GeometrySpec>,
    /// Master seeds; each gets a full copy of the campaign.
    pub seeds: Vec<u64>,
    /// Analysis kinds per cell.
    pub analyses: Vec<AnalysisKind>,
    /// Use the shrunk `quick()` campaign preset (tests, laptops).
    pub quick: bool,
    /// Overrides the campaign-length cap when set.
    pub max_campaign_runs: Option<usize>,
    /// Exceedance probability for headline pWCET values.
    pub exceedance: f64,
}

impl SweepSpec {
    /// A spec with the paper's defaults: all benchmarks, default inputs,
    /// the paper L1, one seed, all three analyses, quick campaigns.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            benchmarks: Vec::new(),
            inputs: InputSelection::Default,
            geometries: vec![GeometrySpec::paper_l1()],
            seeds: vec![0x6D62_6372],
            analyses: vec![
                AnalysisKind::Original,
                AnalysisKind::PubTac,
                AnalysisKind::Multipath,
            ],
            quick: true,
            max_campaign_runs: None,
            exceedance: 1e-12,
        }
    }

    /// Replaces the benchmark list.
    #[must_use]
    pub fn benchmarks<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.benchmarks = names.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the geometry list.
    #[must_use]
    pub fn geometries(mut self, geometries: impl IntoIterator<Item = GeometrySpec>) -> Self {
        self.geometries = geometries.into_iter().collect();
        self
    }

    /// Replaces the seed list.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the analysis kinds.
    #[must_use]
    pub fn analyses(mut self, kinds: impl IntoIterator<Item = AnalysisKind>) -> Self {
        self.analyses = kinds.into_iter().collect();
        self
    }

    /// Replaces the input selection.
    #[must_use]
    pub fn inputs(mut self, inputs: InputSelection) -> Self {
        self.inputs = inputs;
        self
    }

    /// The per-job analysis configuration for one sweep cell. `job_seed`
    /// comes from [`crate::JobSpec::job_seed`]; campaigns run serially
    /// inside a job because the engine already parallelises across jobs.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] if the geometry is invalid.
    pub fn analysis_config(
        &self,
        geometry: &GeometrySpec,
        job_seed: u64,
    ) -> Result<AnalysisConfig, EngineError> {
        AnalysisKnobs::from_spec(self, None, None).config(geometry, job_seed)
    }

    /// Serializes the spec (round-trips through [`SweepSpec::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), self.name.as_str().into()),
            (
                "benchmarks".to_string(),
                Json::Arr(self.benchmarks.iter().map(|b| b.as_str().into()).collect()),
            ),
            ("inputs".to_string(), self.inputs.to_json()),
            (
                "geometries".to_string(),
                Serialize::to_json(&self.geometries),
            ),
            (
                "seeds".to_string(),
                Json::Arr(self.seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "analyses".to_string(),
                Json::Arr(self.analyses.iter().map(|a| a.name().into()).collect()),
            ),
            ("quick".to_string(), Json::Bool(self.quick)),
            (
                "max_campaign_runs".to_string(),
                Serialize::to_json(&self.max_campaign_runs),
            ),
            ("exceedance".to_string(), Json::Num(self.exceedance)),
        ])
    }

    /// Reads a spec from a parsed JSON document. Absent optional fields
    /// take the [`SweepSpec::new`] defaults.
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on missing/malformed fields.
    pub fn from_json(v: &Json) -> Result<Self, EngineError> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| EngineError::Spec("spec needs a string 'name'".into()))?;
        let mut spec = SweepSpec::new(name);
        if let Some(benchmarks) = v.get("benchmarks") {
            let items = benchmarks
                .as_array()
                .ok_or_else(|| EngineError::Spec("'benchmarks' must be an array".into()))?;
            spec.benchmarks = items
                .iter()
                .map(|i| i.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| EngineError::Spec("benchmark names must be strings".into()))?;
        }
        if let Some(inputs) = v.get("inputs") {
            spec.inputs = InputSelection::from_json(inputs)?;
        }
        if let Some(geometries) = v.get("geometries") {
            let items = geometries
                .as_array()
                .ok_or_else(|| EngineError::Spec("'geometries' must be an array".into()))?;
            spec.geometries = items
                .iter()
                .map(GeometrySpec::from_json)
                .collect::<Result<Vec<_>, _>>()?;
        }
        if let Some(seeds) = v.get("seeds") {
            let items = seeds
                .as_array()
                .ok_or_else(|| EngineError::Spec("'seeds' must be an array".into()))?;
            spec.seeds = items
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| EngineError::Spec("seeds must be non-negative integers".into()))?;
        }
        if let Some(analyses) = v.get("analyses") {
            let items = analyses
                .as_array()
                .ok_or_else(|| EngineError::Spec("'analyses' must be an array".into()))?;
            spec.analyses = items
                .iter()
                .map(|i| {
                    i.as_str()
                        .ok_or_else(|| EngineError::Spec("analysis kinds must be strings".into()))
                        .and_then(AnalysisKind::parse)
                })
                .collect::<Result<Vec<_>, _>>()?;
        }
        if let Some(quick) = v.get("quick") {
            spec.quick = quick
                .as_bool()
                .ok_or_else(|| EngineError::Spec("'quick' must be a boolean".into()))?;
        }
        if let Some(cap) = v.get("max_campaign_runs") {
            spec.max_campaign_runs = match cap {
                Json::Null => None,
                other => Some(other.as_usize().ok_or_else(|| {
                    EngineError::Spec("'max_campaign_runs' must be an integer".into())
                })?),
            };
        }
        if let Some(p) = v.get("exceedance") {
            spec.exceedance = p
                .as_f64()
                .filter(|p| *p > 0.0 && *p < 1.0)
                .ok_or_else(|| EngineError::Spec("'exceedance' must be in (0, 1)".into()))?;
        }
        if spec.geometries.is_empty() {
            return Err(EngineError::Spec("spec needs at least one geometry".into()));
        }
        if spec.seeds.is_empty() {
            return Err(EngineError::Spec("spec needs at least one seed".into()));
        }
        if spec.analyses.is_empty() {
            return Err(EngineError::Spec(
                "spec needs at least one analysis kind".into(),
            ));
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`EngineError::Parse`] / [`EngineError::Spec`].
    pub fn from_json_text(text: &str) -> Result<Self, EngineError> {
        Self::from_json(&mbcr_json::parse(text)?)
    }

    /// Loads a spec from a JSON file.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] / [`EngineError::Parse`] / [`EngineError::Spec`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, EngineError> {
        Self::from_json_text(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_label_and_parse_roundtrip() {
        let g = GeometrySpec {
            size_bytes: 2048,
            ways: 4,
            line_size: 16,
        };
        assert_eq!(g.label(), "2048B-4w-16B");
        assert_eq!(GeometrySpec::parse("2048:4:16").unwrap(), g);
        assert_eq!(
            GeometrySpec::parse("paper").unwrap(),
            GeometrySpec::paper_l1()
        );
        assert!(GeometrySpec::parse("2048:4").is_err());
        assert!(
            GeometrySpec::parse("2048:3:32").is_err(),
            "non-power-of-two sets"
        );
    }

    #[test]
    fn spec_json_roundtrip_preserves_everything() {
        let spec = SweepSpec::new("t2")
            .benchmarks(["bs", "crc"])
            .inputs(InputSelection::Named(vec!["v1".into(), "v3".into()]))
            .geometries([
                GeometrySpec::paper_l1(),
                GeometrySpec::parse("2048:2:32").unwrap(),
            ])
            .seeds([1, u64::MAX])
            .analyses([AnalysisKind::PubTac, AnalysisKind::Multipath]);
        let text = spec.to_json().to_pretty();
        assert_eq!(SweepSpec::from_json_text(&text).unwrap(), spec);
    }

    #[test]
    fn spec_defaults_apply_for_absent_fields() {
        let spec = SweepSpec::from_json_text(r#"{"name": "min"}"#).unwrap();
        assert_eq!(spec, SweepSpec::new("min"));
    }

    #[test]
    fn spec_rejects_bad_fields() {
        for bad in [
            r#"{}"#,
            r#"{"name": "x", "seeds": []}"#,
            r#"{"name": "x", "geometries": []}"#,
            r#"{"name": "x", "analyses": ["nope"]}"#,
            r#"{"name": "x", "exceedance": 2.0}"#,
            r#"{"name": "x", "inputs": 7}"#,
        ] {
            assert!(
                SweepSpec::from_json_text(bad).is_err(),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn knobs_roundtrip_and_rebuild_the_planner_config() {
        let spec = SweepSpec {
            max_campaign_runs: Some(1234),
            quick: true,
            ..SweepSpec::new("k")
        };
        let knobs = AnalysisKnobs::from_spec(&spec, Some(500), Some(32));
        let back =
            AnalysisKnobs::from_json(&mbcr_json::parse(&knobs.to_json().to_compact()).unwrap())
                .unwrap();
        assert_eq!(back, knobs);
        let geometry = GeometrySpec::paper_l1();
        let cfg = back.config(&geometry, 77).unwrap();
        assert_eq!(cfg.checkpoint_interval, 500);
        assert_eq!(cfg.max_campaign_runs, 1234);
        // Without the interval override, the knobs' config equals the
        // spec's (same digest — the resumability contract).
        let plain = AnalysisKnobs::from_spec(&spec, None, None).config(&geometry, 77);
        assert_eq!(
            plain.unwrap().digest(),
            spec.analysis_config(&geometry, 77).unwrap().digest()
        );
        for bad in [
            r#"{"quick": true, "exceedance": 0.0}"#,
            r#"{"quick": 1, "exceedance": 1e-12}"#,
            r#"{"exceedance": 1e-12}"#,
        ] {
            assert!(AnalysisKnobs::from_json(&mbcr_json::parse(bad).unwrap()).is_none());
        }
    }

    #[test]
    fn analysis_config_applies_spec_knobs() {
        let spec = SweepSpec::new("cfg");
        let geometry = GeometrySpec::parse("2048:2:32").unwrap();
        let cfg = spec.analysis_config(&geometry, 77).unwrap();
        assert_eq!(cfg.seed, 77);
        assert_eq!(cfg.platform.il1.size_bytes(), 2048);
        assert_eq!(cfg.platform.dl1.size_bytes(), 2048);
        assert_eq!(cfg.threads, 1);
        assert!(cfg.max_campaign_runs <= 3_000, "quick preset");
        let capped = SweepSpec {
            max_campaign_runs: Some(500),
            ..spec
        }
        .analysis_config(&geometry, 1);
        assert_eq!(capped.unwrap().max_campaign_runs, 500);
    }
}
