//! Minimal, offline, API-compatible stand-in for the subset of
//! [criterion](https://docs.rs/criterion) used by the `mbcr-bench` perf
//! targets.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps the bench sources unchanged and still produces
//! useful wall-clock numbers. It measures each benchmark closure over a
//! configurable number of samples and prints `min / mean / max` per sample
//! (one sample = one closure invocation), without criterion's statistical
//! machinery (outlier classification, regression detection, HTML reports).

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// routine invocation per sample regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up invocation, unmeasured.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = *times.iter().min().expect("non-empty");
    let max = *times.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

/// Top-level benchmark driver (shim).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect the harness contract: `cargo bench -- <filter>` filters by
        // substring. Flag-style arguments (`--bench`, `--save-baseline x`,
        // …) are accepted and ignored.
        let filter = std::env::args().skip(1).rfind(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.selected(id) {
            let mut b = Bencher::new(self.sample_size);
            f(&mut b);
            report(id, &b.times, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        if self.parent.selected(&full) {
            let mut b = Bencher::new(self.parent.sample_size);
            f(&mut b);
            report(&full, &b.times, self.throughput);
        }
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("square_sum", |b| {
            b.iter(|| (0u64..100).map(|i| i * i).sum::<u64>())
        });
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn macros_and_driver_run() {
        criterion_group! {
            name = benches;
            config = Criterion { sample_size: 3, filter: None };
            targets = work
        }
        benches();
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("nope".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1);
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with('s'));
    }
}
