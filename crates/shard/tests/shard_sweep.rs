//! End-to-end sharding guarantees, driven through the real `mbcr`
//! binary:
//!
//! * `mbcr sweep --shards N` produces a manifest, Table 2 CSV and sample
//!   chunk logs **byte-identical** to a single-process `mbcr sweep`;
//! * a worker killed with SIGKILL mid-campaign costs nothing: its jobs
//!   re-lease to the surviving worker, which *adopts* the in-flight
//!   campaign from the coordinator's chunk log, the manifest marks the
//!   job resumed, and every artifact still matches the single-process
//!   run byte-for-byte (the manifest differing only in the resumed-run
//!   count).

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const MBCR: &str = env!("CARGO_BIN_EXE_mbcr");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-shard-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under a store, relative path → bytes, in sorted order.
/// `*.tmpN` strays a `kill -9`'d writer left mid-`write_atomic` are
/// skipped — store scans ignore them; they are not artifacts.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir").flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, root, out);
            } else if path
                .extension()
                .is_some_and(|e| e.to_string_lossy().starts_with("tmp"))
            {
                continue;
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_stores_identical(a: &Path, b: &Path, ignore: &[&str]) {
    let snap_a = snapshot(a);
    let snap_b = snapshot(b);
    let names = |snap: &[(String, Vec<u8>)]| -> Vec<String> {
        snap.iter()
            .map(|(n, _)| n.clone())
            .filter(|n| !ignore.contains(&n.as_str()))
            .collect()
    };
    assert_eq!(names(&snap_a), names(&snap_b), "store file sets differ");
    for ((name_a, bytes_a), (name_b, bytes_b)) in snap_a.iter().zip(&snap_b) {
        assert_eq!(name_a, name_b);
        if ignore.contains(&name_a.as_str()) {
            continue;
        }
        assert_eq!(
            bytes_a,
            bytes_b,
            "{name_a} differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

fn run_ok(args: &[&str]) {
    let output = Command::new(MBCR)
        .args(args)
        .stdout(Stdio::null())
        .output()
        .expect("spawn mbcr");
    assert!(
        output.status.success(),
        "mbcr {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn sharded_sweep_matches_single_process_byte_for_byte() {
    let dir_single = tmp_dir("clean-single");
    let dir_sharded = tmp_dir("clean-sharded");
    let spec_args = |out: &Path| {
        vec![
            "sweep".to_string(),
            "--benchmarks".to_string(),
            "bs,crc".to_string(),
            "--inputs".to_string(),
            "all".to_string(),
            "--seeds".to_string(),
            "11".to_string(),
            "--checkpoint-interval".to_string(),
            "256".to_string(),
            "--out".to_string(),
            out.display().to_string(),
        ]
    };
    let single: Vec<String> = spec_args(&dir_single);
    run_ok(&single.iter().map(String::as_str).collect::<Vec<_>>());
    let mut sharded: Vec<String> = spec_args(&dir_sharded);
    sharded.extend(["--shards".to_string(), "2".to_string()]);
    run_ok(&sharded.iter().map(String::as_str).collect::<Vec<_>>());

    // Everything — manifest, table2.csv, stage artifacts, chunk logs, job
    // artifacts and job sample logs — must match byte-for-byte.
    assert_stores_identical(&dir_single, &dir_sharded, &[]);

    // A second sharded pass over the same store is fully cached: the
    // manifest reports zero executions.
    run_ok(&sharded.iter().map(String::as_str).collect::<Vec<_>>());
    let manifest = fs::read_to_string(dir_sharded.join("manifest.json")).expect("manifest");
    let doc = mbcr_json::parse(&manifest).expect("manifest parses");
    let counts = doc.get("counts").expect("counts");
    assert_eq!(
        counts.get("executed").and_then(mbcr_json::Json::as_u64),
        Some(0),
        "warm sharded re-run must execute nothing"
    );
    assert!(
        counts
            .get("skipped")
            .and_then(mbcr_json::Json::as_u64)
            .unwrap_or(0)
            > 0,
        "warm sharded re-run reports its cache hits"
    );

    let _ = fs::remove_dir_all(&dir_single);
    let _ = fs::remove_dir_all(&dir_sharded);
}

struct Fleet {
    coordinator: Child,
    workers: Vec<Child>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.workers.iter_mut().chain([&mut self.coordinator]) {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `mbcr coord` on an ephemeral port plus two workers.
fn spawn_fleet(out: &Path, spec_args: &[&str]) -> (Fleet, String) {
    let mut coordinator = Command::new(MBCR)
        .arg("coord")
        .args(spec_args)
        .args(["--out", &out.display().to_string()])
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let stdout = coordinator.stdout.take().expect("coordinator stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("coordinator exited before announcing its address")
            .expect("read coordinator stdout");
        if let Some(addr) = line.strip_prefix("coordinator listening on ") {
            break addr.to_string();
        }
    };
    // Drain the rest of the coordinator's stdout in the background so it
    // never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    let workers = (0..2)
        .map(|_| {
            Command::new(MBCR)
                .args(["worker", "--connect", &addr])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    (
        Fleet {
            coordinator,
            workers,
        },
        addr,
    )
}

/// Total bytes of campaign chunk logs currently in a store.
fn slog_bytes(out: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(out.join("stages")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".samples.slog"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// One kill attempt: fleet up, SIGKILL one worker once campaign logs have
/// grown well past the convergence prefix, let the sweep finish. Returns
/// the resumed-run count found in the manifest (`0` when the kill missed
/// every in-flight campaign — the caller retries).
fn kill_one_worker_mid_campaign(out: &Path, spec_args: &[&str]) -> u64 {
    let (mut fleet, _addr) = spawn_fleet(out, spec_args);
    // ~4k runs of delta-varint samples: past R_pub (~1k for bs), well
    // inside the ~21k-run campaigns.
    let deadline = Instant::now() + Duration::from_secs(300);
    while slog_bytes(out) < 8 * 1024 {
        assert!(
            Instant::now() < deadline,
            "campaign logs never grew; coordinator stuck?"
        );
        if let Ok(Some(status)) = fleet.coordinator.try_wait() {
            panic!("coordinator exited early with {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = &mut fleet.workers[0];
    victim.kill().expect("SIGKILL the worker");
    victim.wait().expect("reap the worker");

    let status = fleet.coordinator.wait().expect("wait for the coordinator");
    assert!(
        status.success(),
        "the sweep must complete despite the killed worker"
    );

    let manifest = fs::read_to_string(out.join("manifest.json")).expect("manifest");
    let doc = mbcr_json::parse(&manifest).expect("manifest parses");
    let jobs = doc.get("jobs").and_then(mbcr_json::Json::as_array).unwrap();
    jobs.iter()
        .filter_map(|j| j.get("summary"))
        .filter_map(|s| s.get("campaign_resumed"))
        .filter_map(mbcr_json::Json::as_u64)
        .max()
        .unwrap_or(0)
}

#[test]
fn killed_worker_mid_campaign_resumes_and_reproduces_every_artifact() {
    // Campaigns long enough (R_tac ≈ 21k for bs) that an 8 KiB log is
    // early-campaign, two seeds so both workers hold a campaign when the
    // SIGKILL lands.
    let spec_args = [
        "--benchmarks",
        "bs",
        "--seeds",
        "7,8",
        "--analyses",
        "pub_tac",
        "--max-campaign-runs",
        "60000",
        "--checkpoint-interval",
        "500",
    ];
    let reference = tmp_dir("kill-reference");
    let mut single: Vec<&str> = vec!["sweep"];
    single.extend(spec_args);
    let reference_out = reference.display().to_string();
    single.extend(["--out", &reference_out]);
    run_ok(&single);

    // The kill can race a campaign's completion; retry on a fresh store
    // until it lands mid-flight (the first attempt almost always does —
    // the kill fires ~4k runs into ~21k-run campaigns).
    let mut resumed = 0;
    for attempt in 0..4 {
        let out = tmp_dir(&format!("kill-sharded-{attempt}"));
        resumed = kill_one_worker_mid_campaign(&out, &spec_args);
        if resumed > 0 {
            // The manifest marks the adopted campaign resumed; everything
            // else — table2.csv, stage artifacts, chunk logs, job
            // artifacts and job sample logs — matches the single-process
            // store byte-for-byte. The manifest itself differs *only* in
            // that resumed-run count.
            assert_stores_identical(&reference, &out, &["manifest.json"]);
            let normalize = |path: &Path| {
                let manifest = fs::read_to_string(path.join("manifest.json")).unwrap();
                manifest
                    .lines()
                    .filter(|l| !l.contains("\"campaign_resumed\""))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                normalize(&reference),
                normalize(&out),
                "manifests must agree on everything but the resume count"
            );
            let _ = fs::remove_dir_all(&out);
            break;
        }
        eprintln!("attempt {attempt}: kill missed every in-flight campaign; retrying");
        let _ = fs::remove_dir_all(&out);
    }
    assert!(
        resumed > 0,
        "no attempt interrupted a campaign mid-flight; the adoption path \
         was never exercised"
    );
    let _ = fs::remove_dir_all(&reference);
}
