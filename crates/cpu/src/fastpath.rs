//! Specialized one-pass campaign kernel for the paper-shaped platform.
//!
//! The general batched engine ([`BatchPlatform`](crate::BatchPlatform))
//! replays a resolved trace against `W` layouts with full `Cache` semantics
//! per layout. For the configuration every paper experiment uses — 2-way
//! set-associative caches with random replacement — almost all of that
//! per-access work can be precomputed or packed away:
//!
//! * **Placement hashes move out of the access loop.** A trace touches a
//!   small set of distinct lines, and under a fixed placement seed each
//!   line's set index is a constant. Per pass, a `distinct-lines × W` table
//!   of set indices is built once, and the access loop just reads it.
//! * **A 2-way set packs into one `u64`.** Tags are stored as two `u32`
//!   halves (`u32::MAX` = invalid way), so the whole set loads with a
//!   single read and the hit/empty tests are plain integer compares. The
//!   pack is valid whenever every line id fits in a `u32` — checked up
//!   front, and with 32-byte lines that holds for any address below 128 GB.
//! * **Cycles reduce to miss counts.** A run's execution time is an affine
//!   function of its per-cache miss counts (`base + Σ misses × (miss_cost −
//!   hit_cost)`), so the loop only increments one counter per layout and
//!   the times materialize at the end of the pass.
//!
//! On x86-64 hosts with AVX-512 (F+DQ+VL+BMI2) the inner loop additionally
//! processes 8 layouts per instruction batch: one gather fetches 8 packed
//! sets, one dword compare tests all 16 ways, and an all-hit batch — the
//! common case — retires with no stores at all. Misses fall back to a
//! scalar fixup that draws each conflicted layout's RNG in layout order,
//! which is what keeps the output bit-identical to the serial stream (see
//! the equivalence tests below and the property suite in `tests/`).
//!
//! Everything observable — hit/miss decisions, RNG stream consumption,
//! returned cycle counts — matches `Platform::run_randomized` exactly;
//! [`FastCampaign::try_new`] simply refuses configurations where the
//! specialization does not apply and the caller stays on the general
//! engine.

use std::collections::HashMap;

use mbcr_rng::{derive_seed, mix64, Rng64, Xoshiro256PlusPlus};

use mbcr_cache::{PlacementPolicy, ReplacementPolicy};

use crate::{PlatformConfig, ResolvedTrace};

/// Invalid-way marker in the packed `u32` tag representation. `Cache` uses
/// `u64::MAX`; a line id never reaches it, and `try_new` guarantees ids
/// also stay below `u32::MAX` so the truncated marker stays unambiguous.
const INV32: u32 = u32::MAX;

/// High bit of a packed op: set for instruction fetches.
const INSTR_BIT: u32 = 1 << 31;

/// Per-cache state of one campaign pass: the packed sets of all `W`
/// layouts, their replacement RNG streams, and the per-layout miss tally.
struct SideState {
    /// Distinct line ids of this cache, indexed by dense id.
    lines: Vec<u32>,
    sets: usize,
    /// Seed-derivation index of this cache (0 = IL1, 1 = DL1).
    salt: u64,
    /// Per-pass placement table: `table[id * width + l]` is the packed-set
    /// index (`l * sets + set`) of dense line `id` in layout `l`.
    table: Vec<u32>,
    /// Packed 2-way sets, layout-major: way 0 in the low half, way 1 in
    /// the high half, [`INV32`] marking an empty way.
    pairs: Vec<u64>,
    rngs: Vec<Xoshiro256PlusPlus>,
    misses: Vec<u64>,
}

impl SideState {
    /// Rebuilds this cache's state for a pass over layouts seeded by
    /// `run_seeds`: flushed sets, fresh RNG streams, and the placement
    /// table under each layout's derived placement seed — all
    /// allocation-reusing, matching a standalone `Cache::reseed` chain.
    fn reseed(&mut self, placement: PlacementPolicy, run_seeds: &[u64]) {
        let width = run_seeds.len();
        let mask = (self.sets - 1) as u64;
        self.rngs.clear();
        self.table.clear();
        self.table.resize(self.lines.len() * width, 0);
        for (l, &run_seed) in run_seeds.iter().enumerate() {
            let cache_seed = derive_seed(run_seed, self.salt);
            let placement_seed = derive_seed(cache_seed, 0);
            self.rngs
                .push(Xoshiro256PlusPlus::from_seed(derive_seed(cache_seed, 1)));
            let layout_base = (l * self.sets) as u32;
            match placement {
                PlacementPolicy::Modulo => {
                    for (id, &line) in self.lines.iter().enumerate() {
                        let set = (u64::from(line) & mask) as u32;
                        self.table[id * width + l] = layout_base + set;
                    }
                }
                PlacementPolicy::RandomHash => {
                    for (id, &line) in self.lines.iter().enumerate() {
                        let set = (mix64(u64::from(line) ^ placement_seed) & mask) as u32;
                        self.table[id * width + l] = layout_base + set;
                    }
                }
            }
        }
        self.pairs.clear();
        self.pairs.resize(width * self.sets, u64::MAX);
        self.misses.clear();
        self.misses.resize(width, 0);
    }

    /// Accesses dense line `id` in every layout, counting misses and
    /// filling victims exactly as `Cache::access_line` would (empty way
    /// first, then a random draw from that layout's stream).
    #[inline]
    fn access_scalar(&mut self, id: usize, width: usize) {
        let line = self.lines[id];
        let row = &self.table[id * width..id * width + width];
        for (l, &idx) in row.iter().enumerate() {
            let pair = self.pairs[idx as usize];
            let (t0, t1) = (pair as u32, (pair >> 32) as u32);
            if t0 == line || t1 == line {
                continue;
            }
            let victim = if t0 == INV32 {
                0u32
            } else if t1 == INV32 {
                1
            } else {
                self.rngs[l].below_usize(2) as u32
            };
            let shift = victim * 32;
            let cleared = pair & !(0xFFFF_FFFFu64 << shift);
            self.pairs[idx as usize] = cleared | (u64::from(line) << shift);
            self.misses[l] += 1;
        }
    }
}

/// AVX-512 inner loop: 8 layouts per instruction batch.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{SideState, INV32};
    use mbcr_rng::Rng64;
    use std::arch::x86_64::{
        __m256i, __m512i, _mm256_loadu_si256, _mm512_cmpeq_epi32_mask, _mm512_cvtepu32_epi64,
        _mm512_mask_i64gather_epi64, _mm512_set1_epi32, _mm512_storeu_si512, _pext_u32,
    };

    /// Runtime gate for [`access`]: all four feature sets the kernel uses.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("bmi2")
    }

    /// Vector twin of [`SideState::access_scalar`]: gathers 8 packed sets,
    /// tests all 16 ways with one dword compare, and touches memory again
    /// only for layouts that missed. Inactive lanes of a partial batch are
    /// masked out of the gather and fed the accessed line as passthrough,
    /// which classifies them as hits — no store, no RNG draw, no miss.
    ///
    /// # Safety
    ///
    /// Caller must ensure [`available`] returned `true`, and that `side`'s
    /// invariants hold (table entries index `pairs`, one RNG and miss slot
    /// per layout) — guaranteed by `SideState::reseed`.
    #[target_feature(enable = "avx512f,avx512dq,avx512vl,bmi2")]
    pub unsafe fn access(side: &mut SideState, id: usize, width: usize) {
        let SideState {
            lines,
            table,
            pairs,
            rngs,
            misses,
            ..
        } = side;
        let line = lines[id];
        let row = &table[id * width..id * width + width];
        let pairs_ptr = pairs.as_mut_ptr();
        let linev = _mm512_set1_epi32(line as i32);
        let invv = _mm512_set1_epi32(INV32 as i32);
        let mut l0 = 0usize;
        while l0 < width {
            let lanes = (width - l0).min(8);
            let kmask = if lanes == 8 { 0xff } else { (1u8 << lanes) - 1 };
            let idx: __m512i = if lanes == 8 {
                _mm512_cvtepu32_epi64(_mm256_loadu_si256(row.as_ptr().add(l0).cast::<__m256i>()))
            } else {
                let mut buf = [0u32; 8];
                buf[..lanes].copy_from_slice(&row[l0..]);
                _mm512_cvtepu32_epi64(_mm256_loadu_si256(buf.as_ptr().cast::<__m256i>()))
            };
            let pairv = _mm512_mask_i64gather_epi64(linev, kmask, idx, pairs_ptr.cast(), 8);
            // 16 dword compares; bit pair (2l, 2l+1) is layout l's two ways.
            let hitd = u32::from(_mm512_cmpeq_epi32_mask(pairv, linev));
            let hit8 = _pext_u32(hitd | (hitd >> 1), 0x5555) as u8;
            if hit8 == 0xff {
                l0 += 8;
                continue;
            }
            let emptyd = u32::from(_mm512_cmpeq_epi32_mask(pairv, invv));
            let mut miss = !hit8;
            let mut bases = [0u64; 8];
            _mm512_storeu_si512(bases.as_mut_ptr().cast(), idx);
            // Scalar fixup in ascending layout order, so each conflicted
            // layout draws from its RNG stream exactly when the serial
            // simulation would.
            while miss != 0 {
                let lane = miss.trailing_zeros() as usize;
                miss &= miss - 1;
                let l = l0 + lane;
                let victim = if (emptyd >> (2 * lane)) & 1 != 0 {
                    0usize
                } else if (emptyd >> (2 * lane + 1)) & 1 != 0 {
                    1
                } else {
                    rngs[l].below_usize(2)
                };
                // Little-endian pack: way 0 is the low dword of the pair.
                *pairs_ptr
                    .cast::<u32>()
                    .add(bases[lane] as usize * 2 + victim) = line;
                misses[l] += 1;
            }
            l0 += 8;
        }
    }
}

/// Which inner loop a [`FastCampaign`] runs. Both produce bit-identical
/// results; the choice is made once per campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn detect_kernel() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    if avx512::available() {
        return Kernel::Avx512;
    }
    Kernel::Scalar
}

/// A campaign compiled for the specialized 2-way random-replacement
/// kernel: dense line ids, packed op stream, and reusable per-pass state.
pub(crate) struct FastCampaign {
    placement: PlacementPolicy,
    il1: SideState,
    dl1: SideState,
    /// Packed trace: [`INSTR_BIT`] selects the cache, low bits are the
    /// dense line id within it.
    ops: Vec<u32>,
    /// Cycles every run pays regardless of layout (issue + hit costs).
    base_cycles: u64,
    /// Extra cycles per IL1 / DL1 miss.
    il1_miss_weight: u64,
    dl1_miss_weight: u64,
    kernel: Kernel,
}

impl FastCampaign {
    /// Compiles `rt` for the specialized kernel, or `None` when the
    /// configuration needs the general engine: any replacement policy but
    /// random, associativity other than 2, hit costs above miss costs, or
    /// line ids too large for the packed `u32` representation.
    pub fn try_new(cfg: &PlatformConfig, rt: &ResolvedTrace) -> Option<Self> {
        if cfg.replacement != ReplacementPolicy::Random
            || cfg.il1.ways() != 2
            || cfg.dl1.ways() != 2
            || cfg.latency.il1_miss < cfg.latency.il1_hit
            || cfg.latency.dl1_miss < cfg.latency.dl1_hit
        {
            return None;
        }
        let mut il1_map: HashMap<u64, u32> = HashMap::new();
        let mut dl1_map: HashMap<u64, u32> = HashMap::new();
        let mut il1_lines = Vec::new();
        let mut dl1_lines = Vec::new();
        let mut ops = Vec::with_capacity(rt.len());
        let mut instr_ops = 0u64;
        for op in rt.ops() {
            // INV32 stays reserved for empty ways, INSTR_BIT for the
            // cache select.
            if op.line.0 >= u64::from(u32::MAX) {
                return None;
            }
            let (map, lines, flag) = if op.instr {
                instr_ops += 1;
                (&mut il1_map, &mut il1_lines, INSTR_BIT)
            } else {
                (&mut dl1_map, &mut dl1_lines, 0)
            };
            let next = lines.len() as u32;
            let id = *map.entry(op.line.0).or_insert_with(|| {
                lines.push(op.line.0 as u32);
                next
            });
            if id >= INSTR_BIT {
                return None;
            }
            ops.push(id | flag);
        }
        let lat = cfg.latency;
        let data_ops = rt.len() as u64 - instr_ops;
        Some(Self {
            placement: cfg.placement,
            il1: SideState {
                lines: il1_lines,
                sets: cfg.il1.sets() as usize,
                salt: 0,
                table: Vec::new(),
                pairs: Vec::new(),
                rngs: Vec::new(),
                misses: Vec::new(),
            },
            dl1: SideState {
                lines: dl1_lines,
                sets: cfg.dl1.sets() as usize,
                salt: 1,
                table: Vec::new(),
                pairs: Vec::new(),
                rngs: Vec::new(),
                misses: Vec::new(),
            },
            ops,
            base_cycles: instr_ops * (lat.issue_cycles + lat.il1_hit) + data_ops * lat.dl1_hit,
            il1_miss_weight: lat.il1_miss - lat.il1_hit,
            dl1_miss_weight: lat.dl1_miss - lat.dl1_hit,
            kernel: detect_kernel(),
        })
    }

    /// Whether a pass of `width` layouts keeps every packed-set index
    /// within the `u32` placement table entries.
    pub fn supports_width(&self, width: usize) -> bool {
        let sets = self.il1.sets.max(self.dl1.sets) as u64;
        (width as u64).saturating_mul(sets) <= u64::from(u32::MAX)
    }

    /// Simulates runs seeded by `run_seeds` in one trace pass, writing
    /// execution times to `out` in seed order — entry `l` is bit-identical
    /// to `Platform::run_randomized(trace, run_seeds[l])`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != run_seeds.len()`.
    pub fn run_pass(&mut self, run_seeds: &[u64], out: &mut [u64]) {
        assert_eq!(out.len(), run_seeds.len(), "one time slot per run seed");
        let width = run_seeds.len();
        self.il1.reseed(self.placement, run_seeds);
        self.dl1.reseed(self.placement, run_seeds);
        match self.kernel {
            Kernel::Scalar => self.walk_scalar(width),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect_kernel` only selects Avx512 when every
            // feature the kernel enables is present at runtime.
            Kernel::Avx512 => unsafe { self.walk_avx512(width) },
        }
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = self.base_cycles
                + self.il1_miss_weight * self.il1.misses[l]
                + self.dl1_miss_weight * self.dl1.misses[l];
        }
    }

    fn walk_scalar(&mut self, width: usize) {
        for &op in &self.ops {
            if op & INSTR_BIT != 0 {
                self.il1.access_scalar((op & !INSTR_BIT) as usize, width);
            } else {
                self.dl1.access_scalar(op as usize, width);
            }
        }
    }

    /// # Safety
    ///
    /// Caller must ensure [`avx512::available`] returned `true`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512vl,bmi2")]
    unsafe fn walk_avx512(&mut self, width: usize) {
        for &op in &self.ops {
            if op & INSTR_BIT != 0 {
                avx512::access(&mut self.il1, (op & !INSTR_BIT) as usize, width);
            } else {
                avx512::access(&mut self.dl1, op as usize, width);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{campaign_slice, LatencyConfig, Platform};
    use mbcr_cache::CacheGeometry;
    use mbcr_trace::{Access, Trace};

    fn paper_cfg() -> PlatformConfig {
        PlatformConfig::paper_default()
    }

    fn mixed_trace(len: usize, footprint: u64, seed: u64) -> Trace {
        let mut x = seed | 1;
        let mut t = Trace::new();
        for i in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x % footprint) * 8;
            match i % 3 {
                0 => t.push(Access::fetch(addr)),
                1 => t.push(Access::read(addr)),
                _ => t.push(Access::write(addr)),
            }
        }
        t
    }

    #[test]
    fn refuses_non_specializable_configs() {
        let trace = mixed_trace(50, 64, 7);
        let lru = PlatformConfig {
            replacement: ReplacementPolicy::Lru,
            ..paper_cfg()
        };
        assert!(FastCampaign::try_new(&lru, &ResolvedTrace::resolve(&lru, &trace)).is_none());
        let four_way = PlatformConfig {
            il1: CacheGeometry::new(4096, 4, 32).unwrap(),
            ..paper_cfg()
        };
        assert!(
            FastCampaign::try_new(&four_way, &ResolvedTrace::resolve(&four_way, &trace)).is_none()
        );
        let inverted = PlatformConfig {
            latency: LatencyConfig {
                il1_miss: 0,
                ..LatencyConfig::paper_default()
            },
            ..paper_cfg()
        };
        assert!(
            FastCampaign::try_new(&inverted, &ResolvedTrace::resolve(&inverted, &trace)).is_none()
        );
        // A line id at u32::MAX would collide with the empty-way marker.
        let mut big = Trace::new();
        big.push(Access::read(u64::from(u32::MAX) * 32));
        assert!(
            FastCampaign::try_new(&paper_cfg(), &ResolvedTrace::resolve(&paper_cfg(), &big))
                .is_none()
        );
    }

    #[test]
    fn matches_serial_platform_exactly() {
        for (placement, footprint) in [
            (PlacementPolicy::RandomHash, 40u64),
            (PlacementPolicy::RandomHash, 900),
            (PlacementPolicy::Modulo, 300),
        ] {
            let cfg = PlatformConfig {
                placement,
                ..paper_cfg()
            };
            let trace = mixed_trace(400, footprint * 32, 11);
            let rt = ResolvedTrace::resolve(&cfg, &trace);
            let mut fast = FastCampaign::try_new(&cfg, &rt).expect("paper config specializes");
            for width in [1usize, 2, 7, 8, 9, 16, 33] {
                let seeds: Vec<u64> = (0..width as u64)
                    .map(|i| mbcr_rng::derive_seed(99, i))
                    .collect();
                let mut got = vec![0u64; width];
                fast.run_pass(&seeds, &mut got);
                let mut platform = Platform::new(&cfg, 0);
                let want: Vec<u64> = seeds
                    .iter()
                    .map(|&s| platform.run_randomized_resolved(&rt, s))
                    .collect();
                assert_eq!(got, want, "{placement:?} footprint={footprint} W={width}");
            }
        }
    }

    #[test]
    fn scalar_and_vector_kernels_agree() {
        let cfg = paper_cfg();
        let trace = mixed_trace(600, 6000, 5);
        let rt = ResolvedTrace::resolve(&cfg, &trace);
        let mut auto = FastCampaign::try_new(&cfg, &rt).expect("specializes");
        let mut scalar = FastCampaign::try_new(&cfg, &rt).expect("specializes");
        scalar.kernel = Kernel::Scalar;
        let seeds: Vec<u64> = (0..19).map(|i| mbcr_rng::derive_seed(3, i)).collect();
        let (mut a, mut b) = (vec![0u64; 19], vec![0u64; 19]);
        auto.run_pass(&seeds, &mut a);
        scalar.run_pass(&seeds, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn pass_results_match_campaign_slice() {
        let cfg = paper_cfg();
        let trace = mixed_trace(229, 2048, 21);
        let rt = ResolvedTrace::resolve(&cfg, &trace);
        let mut fast = FastCampaign::try_new(&cfg, &rt).expect("specializes");
        let seeds: Vec<u64> = (5..21).map(|i| mbcr_rng::derive_seed(42, i)).collect();
        let mut got = vec![0u64; seeds.len()];
        fast.run_pass(&seeds, &mut got);
        assert_eq!(got, campaign_slice(&cfg, &trace, 5, 16, 42));
    }
}
