//! Focused single-set simulation — TAC's impact estimator.
//!
//! TAC asks: *if this specific group of lines were randomly placed into the
//! same cache set, how many misses would the program's access sequence
//! suffer there?* Answering that does not need the whole cache: it is enough
//! to replay the subsequence of accesses to the group's lines through one
//! W-way set.
//!
//! For random replacement the miss count is itself random; [`expected_misses`]
//! averages over Monte-Carlo repetitions. For patterns whose group accesses
//! are a pure cyclic traversal (the paper's `{ABCDEA}`-style examples) the
//! lower bound of the paper holds: at least one miss per traversal once the
//! group exceeds the set's ways.

use mbcr_rng::{derive_seed, Rng64, Xoshiro256PlusPlus};
use mbcr_trace::LineId;

use crate::ReplacementPolicy;

/// Replays `stream` restricted to `group` through a single `ways`-way set
/// with the given replacement policy, returning the miss count of one run.
///
/// `group` must be sorted (binary search is used for membership).
///
/// # Panics
///
/// Panics if `ways == 0`.
#[must_use]
pub fn single_run_misses(
    stream: &[LineId],
    group: &[LineId],
    ways: u32,
    policy: ReplacementPolicy,
    seed: u64,
) -> u64 {
    assert!(ways > 0, "ways must be positive");
    let ways = ways as usize;
    let mut rng = Xoshiro256PlusPlus::from_seed(seed);
    let mut tags: Vec<Option<LineId>> = vec![None; ways];
    let mut meta: Vec<u64> = vec![0; ways];
    let mut clock = 0u64;
    let mut misses = 0u64;
    for &line in stream {
        if group.binary_search(&line).is_err() {
            continue;
        }
        clock += 1;
        if let Some(w) = tags.iter().position(|&t| t == Some(line)) {
            if policy == ReplacementPolicy::Lru {
                meta[w] = clock;
            }
            continue;
        }
        misses += 1;
        let victim = match tags.iter().position(Option::is_none) {
            Some(w) => w,
            None => match policy {
                ReplacementPolicy::Random => rng.below_usize(ways),
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    (0..ways).min_by_key(|&w| meta[w]).expect("ways > 0")
                }
            },
        };
        tags[victim] = Some(line);
        meta[victim] = clock;
    }
    misses
}

/// Monte-Carlo estimate of the expected miss count of `stream` restricted to
/// `group` in one `ways`-way random-replacement set.
///
/// Returns the mean over `reps` independent replacement streams. The
/// deterministic policies need a single rep ([`single_run_misses`]).
///
/// # Panics
///
/// Panics if `reps == 0` or `ways == 0`.
#[must_use]
pub fn expected_misses(
    stream: &[LineId],
    group: &[LineId],
    ways: u32,
    reps: u32,
    seed: u64,
) -> f64 {
    assert!(reps > 0, "reps must be positive");
    let total: u64 = (0..reps)
        .map(|r| {
            single_run_misses(
                stream,
                group,
                ways,
                ReplacementPolicy::Random,
                derive_seed(seed, u64::from(r)),
            )
        })
        .sum();
    total as f64 / f64::from(reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_trace::SymSeq;

    fn stream(s: &str, reps: usize) -> Vec<LineId> {
        s.parse::<SymSeq>().unwrap().repeat(reps).to_lines()
    }

    fn group(ids: &[u64]) -> Vec<LineId> {
        let mut g: Vec<LineId> = ids.iter().map(|&i| LineId(i)).collect();
        g.sort_unstable();
        g
    }

    #[test]
    fn group_within_ways_only_cold_misses() {
        let s = stream("ABCD", 100);
        let g = group(&[0, 1, 2, 3]);
        assert_eq!(
            single_run_misses(&s, &g, 4, ReplacementPolicy::Random, 1),
            4
        );
        assert!((expected_misses(&s, &g, 4, 16, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_5_lines_in_4_ways_misses_every_traversal() {
        // {ABCDEA}^n restricted to {A..E} in a 4-way set: the paper argues at
        // least n misses (one per traversal) — for random replacement the
        // observed count is much higher, but the lower bound must hold.
        let n = 200;
        let s = stream("ABCDEA", n);
        let g = group(&[0, 1, 2, 3, 4]);
        for seed in 0..10 {
            let m = single_run_misses(&s, &g, 4, ReplacementPolicy::Random, seed);
            assert!(m >= n as u64, "misses {m} < traversals {n}");
        }
    }

    #[test]
    fn lru_round_robin_worst_case() {
        // 5 distinct lines cyclically through a 4-way LRU set: every access
        // misses (the classic LRU pathological case).
        let n = 50;
        let s = stream("ABCDE", n);
        let g = group(&[0, 1, 2, 3, 4]);
        let m = single_run_misses(&s, &g, 4, ReplacementPolicy::Lru, 0);
        assert_eq!(m, (5 * n) as u64);
    }

    #[test]
    fn random_is_strictly_better_than_lru_here() {
        let n = 200;
        let s = stream("ABCDE", n);
        let g = group(&[0, 1, 2, 3, 4]);
        let lru = single_run_misses(&s, &g, 4, ReplacementPolicy::Lru, 0) as f64;
        let rnd = expected_misses(&s, &g, 4, 32, 7);
        assert!(
            rnd < lru,
            "random {rnd} should beat LRU {lru} on round-robin"
        );
        // And still at least one miss per traversal.
        assert!(rnd >= n as f64);
    }

    #[test]
    fn non_group_lines_are_ignored() {
        let s = stream("AXBYCZ", 10); // X, Y, Z outside the group
        let g = group(&[0, 1, 2]); // A, B, C
        assert_eq!(single_run_misses(&s, &g, 4, ReplacementPolicy::Lru, 0), 3);
    }

    #[test]
    fn empty_group_or_stream() {
        assert_eq!(
            single_run_misses(&[], &group(&[0]), 2, ReplacementPolicy::Random, 0),
            0
        );
        assert_eq!(
            single_run_misses(&stream("ABC", 5), &[], 2, ReplacementPolicy::Random, 0),
            0
        );
    }

    #[test]
    fn expected_misses_is_deterministic_in_seed() {
        let s = stream("ABCDEA", 50);
        let g = group(&[0, 1, 2, 3, 4]);
        assert_eq!(
            expected_misses(&s, &g, 4, 8, 5),
            expected_misses(&s, &g, 4, 8, 5)
        );
    }

    #[test]
    #[should_panic(expected = "reps must be positive")]
    fn zero_reps_panics() {
        let _ = expected_misses(&[], &[], 2, 0, 0);
    }
}
