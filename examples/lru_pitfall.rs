//! Why PUB must not be used with deterministic caches (paper Section 2).
//!
//! Demonstrates, on the paper's own sequences, that inserting an access —
//! PUB's only tool — can *reduce* the miss count of an LRU cache, while on
//! a random-replacement cache it can only make the expected execution time
//! worse.
//!
//! Run with `cargo run --release --example lru_pitfall`.

use mbcr::prelude::*;
use mbcr_cache::single_set;
use mbcr_trace::{LineId, SymSeq};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let orig: SymSeq = "ABCA".parse()?;
    let pubbed: SymSeq = "ABACA".parse()?; // ins(M, A) at position 2

    println!("original sequence : {orig}");
    println!("pubbed sequence   : {pubbed} (one access inserted)\n");

    // Deterministic 2-way LRU cache, single set.
    let tiny = CacheGeometry::new(64, 2, 32)?;
    let mut lru = Cache::new(tiny, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 0);
    let lru_orig = lru.run_lines(&orig.to_lines()).misses;
    let lru_pub = lru.run_lines(&pubbed.to_lines()).misses;
    println!("2-way LRU   : {orig} -> {lru_orig} misses, {pubbed} -> {lru_pub} misses");
    println!(
        "              inserting an access {} the program under LRU!",
        if lru_pub < lru_orig {
            "SPED UP"
        } else {
            "did not speed up"
        }
    );

    // Random replacement: expected misses/time can only grow.
    let group: Vec<LineId> = {
        let mut g = orig.to_lines();
        g.extend(pubbed.to_lines());
        g.sort_unstable();
        g.dedup();
        g
    };
    let e_orig = single_set::expected_misses(&orig.to_lines(), &group, 2, 20_000, 1);
    let e_pub = single_set::expected_misses(&pubbed.to_lines(), &group, 2, 20_000, 1);
    let t_orig = e_orig * 100.0 + (orig.len() as f64 - e_orig);
    let t_pub = e_pub * 100.0 + (pubbed.len() as f64 - e_pub);
    println!("\nrandom repl.: E[misses] {e_orig:.3} -> {e_pub:.3}");
    println!("              E[cycles] {t_orig:.1} -> {t_pub:.1} (always >=: insertion lemma)");

    println!("\nConclusion: PUB's upper-bounding argument (any insertion worsens the");
    println!("distribution) holds only on time-randomized caches — which is exactly");
    println!("why the paper's platform uses random placement + random replacement.");
    Ok(())
}
