//! Independence and identical-distribution tests.
//!
//! MBPTA requires its input measurements to be i.i.d. (paper Section 2);
//! on the simulated platform this holds by construction (independent
//! placement seeds per run), and these tests provide the standard evidence:
//!
//! * [`ks_two_sample`] — identical distribution (first half vs second half);
//! * [`ljung_box`] — absence of autocorrelation;
//! * [`runs_test`] — Wald–Wolfowitz randomness above/below the median.

use crate::stats::{chi2_sf, kolmogorov_sf, mean, normal_two_sided_p, variance};

/// Result of a single statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Returns the KS statistic (max CDF distance) and its asymptotic p-value.
/// Used split-half to check that early and late measurements follow the
/// same distribution.
///
/// # Panics
///
/// Panics if either sample is empty.
#[must_use]
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestResult {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS test needs non-empty samples"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = (na * nb / (na + nb)).sqrt();
    // Asymptotic p-value with the standard small-sample correction.
    let lambda = (ne + 0.12 + 0.11 / ne) * d;
    TestResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// Ljung–Box portmanteau test for autocorrelation up to `lags`.
///
/// The statistic is `n(n+2) Σ_k ρ_k²/(n−k)`, chi-square with `lags` degrees
/// of freedom under independence.
///
/// # Panics
///
/// Panics if `lags == 0` or the sample is shorter than `lags + 2`.
#[must_use]
pub fn ljung_box(sample: &[f64], lags: usize) -> TestResult {
    assert!(lags > 0, "ljung_box needs at least one lag");
    assert!(
        sample.len() > lags + 1,
        "sample too short for the requested lags"
    );
    let n = sample.len() as f64;
    let m = mean(sample);
    let denom: f64 = sample.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        // Constant series: no evidence of autocorrelation.
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut q = 0.0;
    for k in 1..=lags {
        let num: f64 = sample.windows(k + 1).map(|w| (w[0] - m) * (w[k] - m)).sum();
        let rho = num / denom;
        q += rho * rho / (n - k as f64);
    }
    q *= n * (n + 2.0);
    TestResult {
        statistic: q,
        p_value: chi2_sf(q, lags as u32),
    }
}

/// Wald–Wolfowitz runs test: counts runs above/below the median and
/// compares with the normal approximation of the run-count distribution.
///
/// Values equal to the median are dropped (standard practice). Samples with
/// fewer than two non-median values carry no evidence either way and report
/// a p-value of 1.
///
/// # Panics
///
/// Panics if the sample is empty.
#[must_use]
pub fn runs_test(sample: &[f64]) -> TestResult {
    assert!(!sample.is_empty(), "runs test needs a non-empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let signs: Vec<bool> = sample
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    if signs.len() < 2 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let n1 = signs.iter().filter(|&&s| s).count() as f64;
    let n2 = signs.len() as f64 - n1;
    if n1 == 0.0 || n2 == 0.0 {
        // After dropping median ties only one side remains — common for
        // heavily discrete samples whose mode is the median. The run
        // structure is degenerate and carries no evidence of dependence.
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let runs = 1.0 + signs.windows(2).filter(|w| w[0] != w[1]).count() as f64;
    let expected = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
    let var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2) / ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1.0));
    if var <= 0.0 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let z = (runs - expected) / var.sqrt();
    TestResult {
        statistic: z,
        p_value: normal_two_sided_p(z),
    }
}

/// Combined i.i.d. evidence for one measurement sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidReport {
    /// Split-half KS test (identical distribution).
    pub ks: TestResult,
    /// Ljung–Box test (independence).
    pub ljung_box: TestResult,
    /// Runs test (randomness).
    pub runs: TestResult,
}

impl IidReport {
    /// Runs all three tests on a sample (KS on first vs second half,
    /// Ljung–Box with 20 lags or n/5 if smaller).
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer than 12 values.
    #[must_use]
    pub fn evaluate(sample: &[f64]) -> Self {
        assert!(
            sample.len() >= 12,
            "IID evaluation needs at least 12 samples"
        );
        let half = sample.len() / 2;
        let lags = (sample.len() / 5).clamp(2, 20);
        // A constant sample is trivially i.i.d.: every test reports "no
        // evidence against".
        if variance(sample) == 0.0 {
            let pass = TestResult {
                statistic: 0.0,
                p_value: 1.0,
            };
            return Self {
                ks: pass,
                ljung_box: pass,
                runs: pass,
            };
        }
        Self {
            ks: ks_two_sample(&sample[..half], &sample[half..]),
            ljung_box: ljung_box(sample, lags),
            runs: runs_test(sample),
        }
    }

    /// `true` if no test rejects at significance `alpha`.
    #[must_use]
    pub fn passed(&self, alpha: f64) -> bool {
        self.ks.p_value >= alpha && self.ljung_box.p_value >= alpha && self.runs.p_value >= alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_rng::{Rng64, Xoshiro256PlusPlus};

    fn iid_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        (0..n).map(|_| rng.gaussian()).collect()
    }

    #[test]
    fn ks_accepts_same_distribution() {
        let a = iid_sample(2000, 1);
        let b = iid_sample(2000, 2);
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn ks_rejects_shifted_distribution() {
        let a = iid_sample(2000, 1);
        let b: Vec<f64> = iid_sample(2000, 2).iter().map(|x| x + 1.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.statistic > 0.3);
    }

    #[test]
    fn ljung_box_accepts_iid() {
        let r = ljung_box(&iid_sample(3000, 3), 20);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn ljung_box_rejects_autocorrelated() {
        // AR(1) with strong coefficient.
        let mut rng = Xoshiro256PlusPlus::from_seed(4);
        let mut x = 0.0;
        let sample: Vec<f64> = (0..2000)
            .map(|_| {
                x = 0.8 * x + rng.gaussian();
                x
            })
            .collect();
        let r = ljung_box(&sample, 10);
        assert!(r.p_value < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn runs_test_accepts_random_rejects_trend() {
        let r = runs_test(&iid_sample(1000, 5));
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
        // A monotone ramp has exactly 2 runs.
        let ramp: Vec<f64> = (0..1000).map(f64::from).collect();
        let r = runs_test(&ramp);
        assert!(r.p_value < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn iid_report_on_good_sample() {
        let rep = IidReport::evaluate(&iid_sample(2000, 6));
        assert!(rep.passed(0.01));
    }

    #[test]
    fn iid_report_on_constant_sample() {
        let rep = IidReport::evaluate(&vec![42.0; 100]);
        assert!(rep.passed(0.05), "constant sample is trivially iid");
    }

    #[test]
    fn false_positive_rate_is_calibrated() {
        // At alpha = 5%, each test should reject roughly 5% of truly iid
        // samples; the combined report at most ~15%. Check it's not wildly
        // off (which would indicate broken p-values).
        let trials = 200;
        let rejections = (0..trials)
            .filter(|&t| !IidReport::evaluate(&iid_sample(400, 100 + t)).passed(0.05))
            .count();
        let rate = rejections as f64 / f64::from(trials as u32);
        assert!(rate < 0.30, "rejection rate = {rate}");
    }

    #[test]
    fn discrete_samples_do_not_crash() {
        let mut rng = Xoshiro256PlusPlus::from_seed(8);
        let sample: Vec<f64> = (0..500).map(|_| (rng.below(3) * 100) as f64).collect();
        let rep = IidReport::evaluate(&sample);
        // Just sanity: p-values are probabilities.
        for r in [rep.ks, rep.ljung_box, rep.runs] {
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }
}

mbcr_json::impl_serialize_struct!(TestResult { statistic, p_value });
mbcr_json::impl_serialize_struct!(IidReport {
    ks,
    ljung_box,
    runs
});
