//! The stage graph: the Figure 3 pipeline as first-class, resumable stages.
//!
//! The paper's pipeline is inherently staged — PUB transform, path trace,
//! per-cache TAC requirement, MBPTA convergence, measurement campaign,
//! pWCET fit — but the classic entry points ([`crate::analyze_original`],
//! [`crate::analyze_pub_tac`]) expose it as one monolithic call. This
//! module breaks it into typed stages so batch drivers can schedule,
//! cache and resume at stage granularity:
//!
//! * [`AnalysisStage`] — the stage contract: typed input/output, a stable
//!   chained digest, and a JSON-serializable intermediate artifact;
//! * concrete stages [`PubStage`], [`TraceStage`], [`TacStage`] (one per
//!   cache), [`ConvergeStage`], [`CampaignStage`], [`FitStage`];
//! * [`AnalysisSession`] — the driver that composes the stages of one
//!   analysis, memoizes their outputs, and — when given a [`StageStore`] —
//!   persists/loads artifacts keyed by stage digest so a warm re-run
//!   resumes mid-analysis;
//! * [`StageDigests`] — the per-stage content digests, computable without
//!   executing anything, so schedulers can key jobs up front.
//!
//! # Digests and resume semantics
//!
//! Every stage digest chains over the *upstream* digest plus exactly the
//! knobs that stage consumes. Changing [`AnalysisConfig::max_campaign_runs`]
//! therefore invalidates only the campaign and fit stages — PUB, trace,
//! TAC and convergence artifacts stay valid and a warm re-run reuses them,
//! re-executing only the campaign tail and the fit. Changing the master
//! seed invalidates TAC/convergence/campaign (their seed streams change)
//! but not the PUB transform or the trace, which are seed-free.
//!
//! Artifacts fall in three classes:
//!
//! * **expensive, rehydratable** (trace, TAC, convergence): the full
//!   output round-trips through JSON, so a resumed session never
//!   recomputes them;
//! * **stream-backed** (campaign): the sample lives in the store's
//!   append-only chunk log ([`StageStore::append_samples`]), written one
//!   [`AnalysisConfig::checkpoint_interval`] at a time; the JSON artifact
//!   is only a completion marker (`runs` + `checksum`) validated against
//!   the log on load;
//! * **cheap, recomputed** (PUB, fit): the artifact records the result for
//!   reporting and cross-process sharing, but a resumed session re-derives
//!   the in-memory value (a deterministic transform or a fit over a cached
//!   sample) because the full output does not round-trip economically.
//!
//! The campaign stage is restart-safe at two granularities. Runs are
//! seeded by absolute index ([`mbcr_cpu::campaign_slice_with`]), so it
//! prepends the cached convergence sample and simulates only the tail;
//! and because it checkpoints completed chunks to the sample log as it
//! goes, a killed campaign resumes from its last checkpoint — losing at
//! most one interval of simulation — with a final sample bit-identical to
//! a one-shot campaign.
//!
//! # Examples
//!
//! ```
//! use mbcr::stage::{AnalysisSession, MemoryStageStore, StageKind, StageStatus};
//! use mbcr::AnalysisConfig;
//! use mbcr_ir::{Expr, Inputs, ProgramBuilder, Stmt};
//!
//! let mut b = ProgramBuilder::new("toy");
//! let a = b.array("a", 64);
//! let (x, i) = (b.var("x"), b.var("i"));
//! b.push(Stmt::for_(i, Expr::c(0), Expr::c(8), 8, vec![
//!     Stmt::Assign(x, Expr::var(x).add(Expr::load(a, Expr::var(i)))),
//! ]));
//! let program = b.build()?;
//! let input = Inputs::new();
//! let cfg = AnalysisConfig::builder().seed(7).quick().build();
//! let store = MemoryStageStore::default();
//!
//! let cold = AnalysisSession::pub_tac(&program, &input, &cfg)
//!     .with_store(&store)
//!     .finish_pub_tac()
//!     .unwrap();
//! // A second session resumes from the store: the expensive stages load.
//! let mut warm = AnalysisSession::pub_tac(&program, &input, &cfg).with_store(&store);
//! warm.advance(StageKind::Campaign).unwrap();
//! assert_eq!(warm.status(StageKind::Campaign), Some(StageStatus::Cached));
//! let resumed = warm.finish_pub_tac().unwrap();
//! assert_eq!(resumed.sample, cold.sample);
//! # Ok::<(), mbcr_ir::ProgramError>(())
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use mbcr_cache::CacheGeometry;
use mbcr_cpu::{campaign_slice, campaign_slice_chunked, Parallelism, PlatformConfig};
use mbcr_evt::{converge, ConvergenceConfig, IidReport, Pwcet};
use mbcr_ir::{
    classify, execute, group_inputs_by_path, Inputs, PathSpace, Program, Rollup, RollupSide,
};
use mbcr_json::{fnv1a, Json, Serialize, FNV_OFFSET};
use mbcr_pub::{pub_transform, ConstructReport, PubConfig, PubReport, PubResult};
use mbcr_rng::derive_seed;
use mbcr_tac::{analyze_lines, ConflictGroup, ImpactClass, TacAnalysis, TacConfig};
use mbcr_trace::{Access, AccessKind, LineId, Trace};

use crate::{AnalysisConfig, AnalyzeError, OriginalAnalysis, PubTacAnalysis};

/// Schema tag baked into stage artifacts; bump on layout changes to
/// invalidate old stage stores wholesale.
pub const STAGE_SCHEMA: &str = "mbcr-stage/2";

/// The stages of the Figure 3 pipeline, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// PUB transform of the original program.
    Pub,
    /// One execution of the (pubbed) program: the path's address trace.
    Trace,
    /// TAC requirement over the instruction-cache line stream.
    TacIl1,
    /// TAC requirement over the data-cache line stream.
    TacDl1,
    /// MBPTA convergence procedure (`R_pub` / `R_orig`).
    Converge,
    /// The full measurement campaign (`min(R_pub+tac, cap)` runs).
    Campaign,
    /// The pWCET fit plus i.i.d. evidence over the final sample.
    Fit,
    /// Measured-vs-static path coverage over an input set (a per-benchmark
    /// side stage — not part of either per-analysis pipeline).
    PathCoverage,
    /// Abstract-interpretation hit/miss classification of every access
    /// site against one L1 geometry pair (a per-benchmark × geometry side
    /// stage — not part of either per-analysis pipeline).
    CacheClass,
}

impl StageKind {
    /// Stable spelling used in artifacts, job labels and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Pub => "pub",
            StageKind::Trace => "trace",
            StageKind::TacIl1 => "tac_il1",
            StageKind::TacDl1 => "tac_dl1",
            StageKind::Converge => "converge",
            StageKind::Campaign => "campaign",
            StageKind::Fit => "fit",
            StageKind::PathCoverage => "path_coverage",
            StageKind::CacheClass => "cache_class",
        }
    }

    /// Inverse of [`StageKind::name`] — the wire/manifest deserialization
    /// used by distributed executors. `None` for unknown spellings.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "pub" => StageKind::Pub,
            "trace" => StageKind::Trace,
            "tac_il1" => StageKind::TacIl1,
            "tac_dl1" => StageKind::TacDl1,
            "converge" => StageKind::Converge,
            "campaign" => StageKind::Campaign,
            "fit" => StageKind::Fit,
            "path_coverage" => StageKind::PathCoverage,
            "cache_class" => StageKind::CacheClass,
            _ => return None,
        })
    }
}

/// Which stage set an analysis runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// Plain MBPTA on the original program: trace → converge → fit.
    Original,
    /// The paper's full pipeline: pub → trace → tac×2 → converge →
    /// campaign → fit.
    PubTac,
}

impl PipelineKind {
    /// The pipeline's stages, in dataflow order.
    #[must_use]
    pub fn stages(self) -> &'static [StageKind] {
        match self {
            PipelineKind::Original => &[StageKind::Trace, StageKind::Converge, StageKind::Fit],
            PipelineKind::PubTac => &[
                StageKind::Pub,
                StageKind::Trace,
                StageKind::TacIl1,
                StageKind::TacDl1,
                StageKind::Converge,
                StageKind::Campaign,
                StageKind::Fit,
            ],
        }
    }

    /// Stable spelling (matches the engine's analysis-kind names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Original => "original",
            PipelineKind::PubTac => "pub_tac",
        }
    }
}

/// How a session satisfied one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Executed in this session.
    Computed,
    /// Satisfied from the stage store.
    Cached,
}

impl StageStatus {
    /// Stable spelling for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageStatus::Computed => "computed",
            StageStatus::Cached => "cached",
        }
    }
}

/// Persistence for per-stage intermediate artifacts, keyed by stage
/// digest. Implementations must tolerate concurrent writers of the *same*
/// digest (content-addressing makes such writes idempotent).
///
/// Beyond whole artifacts, a store may support **streaming sample logs**
/// (the campaign stage's intra-stage checkpoints): `append_samples` /
/// `load_samples` stream a campaign's execution times as append-only,
/// contiguous chunks keyed by the campaign stage's digest. The default
/// implementations opt out (no partial state is ever kept), which also
/// means completed campaigns cannot be *cached* by such a store — the
/// campaign artifact is only a completion marker referencing the log.
pub trait StageStore: Sync {
    /// Loads the artifact stored under `digest`, if present and parsable.
    fn load_stage(&self, digest: u64) -> Option<Json>;

    /// Persists an artifact under `digest`.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn save_stage(&self, digest: u64, artifact: &Json) -> std::io::Result<()>;

    /// Loads the valid, contiguous prefix of the sample log stored under
    /// `digest`; `None` when there is no log (or the store does not
    /// support streaming samples — the default). A torn tail is never
    /// part of the returned prefix.
    fn load_samples(&self, digest: u64) -> Option<Vec<u64>> {
        let _ = digest;
        None
    }

    /// Appends `samples` — runs `start .. start + samples.len()` of a
    /// campaign whose resolved length is `total` — to the sample log under
    /// `digest`. Must be idempotent under replay: an append entirely
    /// covered by already-logged runs is a no-op, one partially covered
    /// keeps the durable prefix and appends only the uncovered tail
    /// (content-addressing guarantees the overlap carries identical
    /// values — this is what lets a resume under a *different*
    /// `checkpoint_interval` extend an existing log), and an append that
    /// would leave a gap is an error.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium, or a non-contiguous append.
    fn append_samples(
        &self,
        digest: u64,
        start: usize,
        total: usize,
        samples: &[u64],
    ) -> std::io::Result<()> {
        let _ = (digest, start, total, samples);
        Ok(())
    }

    /// Discards the sample log under `digest` wholesale — the recovery
    /// path when its content diverges from what the digest demands
    /// (corruption that slipped past the integrity checks): the rewriting
    /// campaign recreates it from scratch instead of extending poisoned
    /// data.
    ///
    /// # Errors
    ///
    /// I/O failures of the backing medium.
    fn reset_samples(&self, digest: u64) -> std::io::Result<()> {
        let _ = digest;
        Ok(())
    }
}

/// An in-memory [`StageStore`] for tests and single-process resume.
#[derive(Debug, Default)]
pub struct MemoryStageStore {
    map: Mutex<HashMap<u64, Json>>,
    samples: Mutex<HashMap<u64, Vec<u64>>>,
}

impl MemoryStageStore {
    /// Number of stored artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the inner lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("store poisoned").len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether an artifact exists for `digest`.
    ///
    /// # Panics
    ///
    /// Panics if the inner lock is poisoned.
    #[must_use]
    pub fn contains(&self, digest: u64) -> bool {
        self.map
            .lock()
            .expect("store poisoned")
            .contains_key(&digest)
    }
}

impl StageStore for MemoryStageStore {
    fn load_stage(&self, digest: u64) -> Option<Json> {
        self.map
            .lock()
            .expect("store poisoned")
            .get(&digest)
            .cloned()
    }

    fn save_stage(&self, digest: u64, artifact: &Json) -> std::io::Result<()> {
        self.map
            .lock()
            .expect("store poisoned")
            .insert(digest, artifact.clone());
        Ok(())
    }

    fn load_samples(&self, digest: u64) -> Option<Vec<u64>> {
        self.samples
            .lock()
            .expect("store poisoned")
            .get(&digest)
            .cloned()
    }

    fn append_samples(
        &self,
        digest: u64,
        start: usize,
        _total: usize,
        samples: &[u64],
    ) -> std::io::Result<()> {
        let mut map = self.samples.lock().expect("store poisoned");
        let log = map.entry(digest).or_default();
        let have = log.len();
        if have >= start + samples.len() {
            return Ok(()); // replayed append, already durable
        }
        if have < start {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("sample-log gap: have {have} runs, append starts at {start}"),
            ));
        }
        log.extend_from_slice(&samples[have - start..]);
        Ok(())
    }

    fn reset_samples(&self, digest: u64) -> std::io::Result<()> {
        self.samples.lock().expect("store poisoned").remove(&digest);
        Ok(())
    }
}

/// One stage of the pipeline: typed input/output, a stable digest chained
/// over the upstream digest, and a JSON artifact for the output.
///
/// `decode` is best-effort: stages whose output does not round-trip
/// economically (the PUB transform carries a whole program; the fit
/// carries a full pWCET curve that a cheap refit over the cached campaign
/// sample reproduces exactly) return `None`, and the session recomputes.
pub trait AnalysisStage<'i> {
    /// What the stage consumes (borrowed from the session).
    type Input: 'i;
    /// What the stage produces.
    type Output;

    /// Which stage this is.
    fn kind(&self) -> StageKind;

    /// Chains the stage's result-affecting knobs onto `upstream`.
    fn digest(&self, upstream: u64) -> u64;

    /// Executes the stage.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`].
    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError>;

    /// The output's JSON artifact (the `data` member of the stored doc).
    fn encode(&self, output: &Self::Output) -> Json;

    /// Rehydrates an output from its artifact; `None` if the artifact is
    /// malformed or the stage does not round-trip.
    fn decode(&self, artifact: &Json) -> Option<Self::Output>;
}

/// The PUB transform stage. Output: the inflation report (the pubbed
/// program itself is re-derived on demand — the transform is cheap and
/// deterministic).
#[derive(Debug, Clone, Copy)]
pub struct PubStage<'c> {
    /// PUB options.
    pub pub_cfg: &'c PubConfig,
}

impl<'i, 'c> AnalysisStage<'i> for PubStage<'c> {
    type Input = &'i Program;
    type Output = PubReport;

    fn kind(&self) -> StageKind {
        StageKind::Pub
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(upstream, &format!("|pub|{:?}", self.pub_cfg))
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        Ok(pub_transform(input, self.pub_cfg)?.report)
    }

    fn encode(&self, output: &Self::Output) -> Json {
        output.to_json()
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        pub_report_from_json(artifact)
    }
}

/// The path-trace stage: one execution of the (pubbed) program under the
/// session's input vector.
#[derive(Debug, Clone, Copy)]
pub struct TraceStage {
    /// Whether the traced program is the original or the pubbed one (part
    /// of the digest: the two traces are different artifacts).
    pub pipeline: PipelineKind,
}

/// Input of [`TraceStage`]: the program to execute and its input vector.
#[derive(Debug, Clone, Copy)]
pub struct TraceInput<'i> {
    /// The (pubbed) program.
    pub program: &'i Program,
    /// The input vector selecting the path.
    pub inputs: &'i Inputs,
}

impl<'i> AnalysisStage<'i> for TraceStage {
    type Input = TraceInput<'i>;
    type Output = Trace;

    fn kind(&self) -> StageKind {
        StageKind::Trace
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(upstream, &format!("|trace|{}", self.pipeline.name()))
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        Ok(execute(input.program, input.inputs)?.trace)
    }

    fn encode(&self, output: &Self::Output) -> Json {
        let mut kinds = String::with_capacity(output.len());
        let mut addrs = Vec::with_capacity(output.len());
        for access in output {
            kinds.push(match access.kind {
                AccessKind::InstrFetch => 'f',
                AccessKind::Read => 'r',
                AccessKind::Write => 'w',
            });
            addrs.push(Json::UInt(access.addr.0));
        }
        Json::Obj(vec![
            ("len".to_string(), Json::UInt(output.len() as u64)),
            ("kinds".to_string(), Json::Str(kinds)),
            ("addrs".to_string(), Json::Arr(addrs)),
        ])
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        let len = artifact.get("len")?.as_usize()?;
        let kinds = artifact.get("kinds")?.as_str()?;
        let addrs = artifact.get("addrs")?.as_array()?;
        if kinds.len() != len || addrs.len() != len {
            return None;
        }
        let mut trace = Trace::with_capacity(len);
        for (kind, addr) in kinds.chars().zip(addrs) {
            let addr = addr.as_u64()?;
            trace.push(match kind {
                'f' => Access::fetch(addr),
                'r' => Access::read(addr),
                'w' => Access::write(addr),
                _ => return None,
            });
        }
        Some(trace)
    }
}

/// A per-cache TAC stage over a line stream.
#[derive(Debug, Clone)]
pub struct TacStage {
    /// Which cache's stream this analyses ([`StageKind::TacIl1`] or
    /// [`StageKind::TacDl1`]).
    pub stage: StageKind,
    /// The fully-instantiated TAC configuration (geometry + seed).
    pub cfg: TacConfig,
    /// Line size used to project the trace onto this cache's lines.
    pub line_size: u64,
}

impl<'i> AnalysisStage<'i> for TacStage {
    type Input = &'i [LineId];
    type Output = TacAnalysis;

    fn kind(&self) -> StageKind {
        self.stage
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(
            upstream,
            &format!("|{}|{}|{:?}", self.stage.name(), self.line_size, self.cfg),
        )
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        Ok(analyze_lines(input, &self.cfg))
    }

    fn encode(&self, output: &Self::Output) -> Json {
        output.to_json()
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        tac_from_json(artifact)
    }
}

/// Output of [`ConvergeStage`]: the convergence verdict plus the collected
/// sample (the campaign stage resumes from this prefix).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergeOutput {
    /// Runs collected when the procedure stopped (`R_pub` / `R_orig`).
    pub runs: usize,
    /// Whether convergence was reached within the configured cap.
    pub converged: bool,
    /// `(runs, pWCET@p_check)` after each step.
    pub history: Vec<(usize, f64)>,
    /// The execution times collected, in run-index order.
    pub sample: Vec<u64>,
}

/// The MBPTA convergence stage.
#[derive(Debug, Clone, Copy)]
pub struct ConvergeStage<'c> {
    /// The simulated platform.
    pub platform: &'c PlatformConfig,
    /// Convergence procedure settings.
    pub convergence: &'c ConvergenceConfig,
    /// Master seed of the campaign's run-seed stream.
    pub campaign_seed: u64,
}

impl<'i, 'c> AnalysisStage<'i> for ConvergeStage<'c> {
    type Input = &'i Trace;
    type Output = ConvergeOutput;

    fn kind(&self) -> StageKind {
        StageKind::Converge
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(
            upstream,
            &format!(
                "|converge|{:?}|{:?}|{}",
                self.platform, self.convergence, self.campaign_seed
            ),
        )
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        let mut collected: Vec<u64> = Vec::new();
        let outcome = converge(
            |count| {
                let out = campaign_slice(
                    self.platform,
                    input,
                    collected.len(),
                    count,
                    self.campaign_seed,
                );
                collected.extend_from_slice(&out);
                out
            },
            self.convergence,
        )?;
        Ok(ConvergeOutput {
            runs: outcome.runs,
            converged: outcome.converged,
            history: outcome.history,
            sample: collected,
        })
    }

    fn encode(&self, output: &Self::Output) -> Json {
        Json::Obj(vec![
            ("runs".to_string(), Json::UInt(output.runs as u64)),
            ("converged".to_string(), Json::Bool(output.converged)),
            (
                "history".to_string(),
                Json::Arr(
                    output
                        .history
                        .iter()
                        .map(|&(r, q)| Json::Arr(vec![Json::UInt(r as u64), Json::Num(q)]))
                        .collect(),
                ),
            ),
            (
                "sample".to_string(),
                Json::Arr(output.sample.iter().map(|&v| Json::UInt(v)).collect()),
            ),
        ])
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        let runs = artifact.get("runs")?.as_usize()?;
        let converged = artifact.get("converged")?.as_bool()?;
        let history = artifact
            .get("history")?
            .as_array()?
            .iter()
            .map(|pair| {
                let pair = pair.as_array()?;
                Some((pair.first()?.as_usize()?, pair.get(1)?.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        let sample = artifact
            .get("sample")?
            .as_array()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<_>>>()?;
        if sample.len() != runs {
            return None;
        }
        Some(ConvergeOutput {
            runs,
            converged,
            history,
            sample,
        })
    }
}

/// Input of [`CampaignStage`]: the trace to replay, the convergence-stage
/// prefix to reuse, and the resolved campaign length.
#[derive(Debug, Clone, Copy)]
pub struct CampaignInput<'i> {
    /// The trace every run replays.
    pub trace: &'i Trace,
    /// The convergence stage's sample — runs `0..prefix.len()` of the same
    /// seed stream, reused instead of re-simulated.
    pub prefix: &'i [u64],
    /// Total campaign length (see [`campaign_runs_for`]).
    pub runs: usize,
}

/// Intra-stage checkpointing of a running campaign: where to stream
/// completed sample chunks so an interrupted campaign resumes from its
/// last checkpoint instead of the convergence boundary.
///
/// Purely a durability policy — the sample is bit-identical with or
/// without it, at any interval — so none of these fields enter the stage
/// digest.
#[derive(Clone, Copy)]
pub struct CampaignCheckpoint<'c> {
    /// The store receiving sample chunks (and consulted for a resumable
    /// prefix before simulating anything).
    pub store: &'c dyn StageStore,
    /// The campaign stage's content digest — the log's address.
    pub digest: u64,
    /// Checkpoint every this many runs; `0` checkpoints only when the
    /// campaign completes.
    pub interval: usize,
    /// Whether to *read* the log for a resumable prefix. Forced stages
    /// set this `false` — force means re-simulate, not rehydrate — while
    /// still streaming their checkpoints, so the log ends complete and
    /// the completion marker they save stays honorable by later runs.
    pub resume: bool,
}

impl std::fmt::Debug for CampaignCheckpoint<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignCheckpoint")
            .field("digest", &format_args!("{:016x}", self.digest))
            .field("interval", &self.interval)
            .finish_non_exhaustive()
    }
}

/// Output of [`CampaignStage`]: the full sample plus how much of it was
/// restored from the checkpoint log rather than simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutput {
    /// The campaign's execution times, in run-index order.
    pub sample: Vec<u64>,
    /// Leading runs restored from the checkpoint sample log (`0` when the
    /// campaign started from the convergence boundary).
    pub resumed_runs: usize,
}

/// The measurement-campaign stage. Restart-safe at two granularities:
/// runs are seeded by absolute index, so the stage resumes from the
/// convergence boundary (the cached converge sample is the prefix) and —
/// when a [`CampaignCheckpoint`] is attached — from the last checkpointed
/// chunk of a previously interrupted campaign. Either way the final
/// sample is bit-identical to a one-shot campaign.
///
/// The stage's JSON artifact is a completion marker (`runs` + `checksum`)
/// — the sample itself lives in the store's chunk log, appended one
/// interval at a time and never rewritten whole.
#[derive(Debug, Clone, Copy)]
pub struct CampaignStage<'c> {
    /// The simulated platform.
    pub platform: &'c PlatformConfig,
    /// Master seed of the campaign's run-seed stream.
    pub campaign_seed: u64,
    /// The configured campaign cap (part of the digest; the resolved run
    /// count is derived data).
    pub max_campaign_runs: usize,
    /// Intra-campaign parallelism (never affects results).
    pub parallelism: Parallelism,
    /// Intra-stage checkpointing (never affects results); `None` keeps the
    /// whole campaign in memory until the stage completes.
    pub checkpoint: Option<CampaignCheckpoint<'c>>,
}

/// Streams grid-aligned sample chunks into a checkpoint log as simulation
/// produces them. Chunk frames cover `[k·interval, (k+1)·interval)` in
/// absolute run-index space (the final frame ends at the campaign length),
/// so the log's layout is identical whether the campaign ran once or was
/// interrupted and resumed at any point.
struct CheckpointWriter<'c> {
    checkpoint: Option<CampaignCheckpoint<'c>>,
    /// Resolved campaign length.
    runs: usize,
    /// Absolute index of the first run in `pending`.
    start: usize,
    /// Runs not yet durable in the log.
    pending: Vec<u64>,
    /// First append failure (appends stop; simulation continues).
    error: Option<std::io::Error>,
}

impl<'c> CheckpointWriter<'c> {
    fn new(
        checkpoint: Option<CampaignCheckpoint<'c>>,
        runs: usize,
        start: usize,
        backlog: &[u64],
    ) -> Self {
        let mut w = Self {
            checkpoint,
            runs,
            start,
            // Without a checkpoint the writer is inert — don't copy (and
            // hold) the whole convergence prefix for nothing.
            pending: if checkpoint.is_some() {
                backlog.to_vec()
            } else {
                Vec::new()
            },
            error: None,
        };
        w.flush();
        w
    }

    fn push(&mut self, chunk: &[u64]) {
        if self.checkpoint.is_some() && self.error.is_none() {
            self.pending.extend_from_slice(chunk);
            self.flush();
        }
    }

    fn flush(&mut self) {
        let Some(cp) = self.checkpoint else { return };
        while self.error.is_none() && self.start < self.runs {
            // Framing and simulation share one grid definition — that is
            // what makes resumed logs byte-identical.
            let end = mbcr_cpu::next_chunk_boundary(self.start, cp.interval, self.runs);
            let len = end - self.start;
            if self.pending.len() < len {
                break; // incomplete grid cell; wait for more runs
            }
            match cp
                .store
                .append_samples(cp.digest, self.start, self.runs, &self.pending[..len])
            {
                Ok(()) => {
                    self.pending.drain(..len);
                    self.start = end;
                }
                Err(e) => self.error = Some(e),
            }
        }
    }
}

impl<'i, 'c> AnalysisStage<'i> for CampaignStage<'c> {
    type Input = CampaignInput<'i>;
    type Output = CampaignOutput;

    fn kind(&self) -> StageKind {
        StageKind::Campaign
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(
            upstream,
            &format!(
                "|campaign|{}|{}|{:?}",
                self.max_campaign_runs, self.campaign_seed, self.platform
            ),
        )
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        let runs = input.runs;
        let take = input.prefix.len().min(runs);
        let mut sample: Vec<u64> = Vec::with_capacity(runs);
        let mut resumed_runs = 0;
        // Durable-prefix resume: the checkpoint log wins when it reaches
        // beyond the convergence boundary (its content is digest-addressed
        // — the same deterministic seed stream — but cross-check the
        // overlap against the converge sample anyway and fall back to
        // re-simulation on any mismatch).
        let mut durable = 0;
        if let Some(cp) = self.checkpoint.filter(|cp| !cp.resume) {
            // A forced run never reads the log — but it must not append
            // *over* one either (appends covered by existing content are
            // no-ops, so a divergent log would survive under the fresh
            // marker). Discard it and rewrite from scratch: --force is
            // the repair tool of last resort.
            cp.store
                .reset_samples(cp.digest)
                .map_err(|e| AnalyzeError::Store(format!("campaign checkpoint reset: {e}")))?;
        }
        if let Some(cp) = self.checkpoint.filter(|cp| cp.resume) {
            if let Some(logged) = cp.store.load_samples(cp.digest) {
                let n = logged.len().min(runs);
                let overlap = n.min(take);
                if logged[..overlap] != input.prefix[..overlap] {
                    // Divergent content under this digest (corruption
                    // that slipped past the CRC, or a foreign log).
                    // Appends would skip the already-"durable" bad
                    // prefix, so discard the log wholesale and let the
                    // re-simulation rewrite it from scratch.
                    cp.store.reset_samples(cp.digest).map_err(|e| {
                        AnalyzeError::Store(format!("campaign checkpoint reset: {e}"))
                    })?;
                } else if n > take {
                    sample.extend_from_slice(&logged[..n]);
                    resumed_runs = n;
                    durable = n;
                }
            }
        }
        if sample.is_empty() {
            sample.extend_from_slice(&input.prefix[..take]);
        }
        let mut writer = CheckpointWriter::new(self.checkpoint, runs, durable, &sample[durable..]);
        if writer.error.is_none() && sample.len() < runs {
            let interval = self.checkpoint.map_or(0, |c| c.interval);
            let tail = campaign_slice_chunked(
                self.platform,
                input.trace,
                sample.len(),
                runs - sample.len(),
                self.campaign_seed,
                &self.parallelism,
                interval,
                // An append failure aborts the simulation right away — a
                // paper-scale campaign must not burn hours producing a
                // result the error forces us to discard anyway.
                |_, chunk| {
                    writer.push(chunk);
                    writer.error.is_none()
                },
            );
            sample.extend_from_slice(&tail);
        }
        if let Some(e) = writer.error {
            return Err(AnalyzeError::Store(format!("campaign checkpoint: {e}")));
        }
        Ok(CampaignOutput {
            sample,
            resumed_runs,
        })
    }

    fn encode(&self, output: &Self::Output) -> Json {
        Json::Obj(vec![
            ("runs".to_string(), Json::UInt(output.sample.len() as u64)),
            (
                "checksum".to_string(),
                Json::UInt(sample_checksum(&output.sample)),
            ),
        ])
    }

    fn decode(&self, _artifact: &Json) -> Option<Self::Output> {
        // The artifact is a completion marker; the sample lives in the
        // store's chunk log, which the session loads and validates.
        None
    }
}

/// FNV-1a over the little-endian bytes of a sample — the integrity check
/// a campaign completion marker carries for its chunk log.
#[must_use]
pub fn sample_checksum(sample: &[u64]) -> u64 {
    sample.iter().fold(FNV_OFFSET, |h, &v| {
        mbcr_json::fnv1a_bytes(h, &v.to_le_bytes())
    })
}

/// Rehydrates a completed campaign from its completion-marker payload
/// (the `data` member of the stage artifact) plus the store's chunk log:
/// the log must cover the marker's run count and match its checksum — a
/// torn, short or divergent log is never a cache hit, and the caller then
/// re-runs the stage, which itself resumes from whatever valid log prefix
/// exists.
///
/// This is the *only* definition of what a campaign cache hit is: both
/// [`AnalysisSession`] and the engine scheduler call it, so the two can
/// never disagree.
#[must_use]
pub fn campaign_marker_sample(
    data: &Json,
    store: &dyn StageStore,
    digest: u64,
) -> Option<Vec<u64>> {
    let runs = data.get("runs")?.as_usize()?;
    let checksum = data.get("checksum")?.as_u64()?;
    let mut logged = store.load_samples(digest)?;
    if logged.len() < runs {
        return None;
    }
    logged.truncate(runs);
    (sample_checksum(&logged) == checksum).then_some(logged)
}

/// Cross-stage numbers the fit stage carries into the final report (and
/// into its artifact, so a scheduler can synthesize a result summary from
/// the fit artifact alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitMeta {
    /// Convergence-stage run count (`R_pub` / `R_orig`).
    pub converge_runs: usize,
    /// Whether convergence was reached.
    pub converged: bool,
    /// Length of the replayed trace.
    pub trace_len: usize,
    /// `R_tac = max(IL1, DL1)` (pub_tac pipeline only).
    pub r_tac: Option<u64>,
    /// `R_pub+tac = max(R_pub, R_tac)` (pub_tac pipeline only).
    pub r_pub_tac: Option<u64>,
    /// Executed campaign length (pub_tac pipeline only).
    pub campaign_runs: Option<usize>,
    /// Whether the campaign was truncated by the cap.
    pub campaign_capped: Option<bool>,
    /// pWCET at the reporting exceedance from the `R_pub`-run sample.
    pub pwcet_pub: Option<f64>,
}

/// Input of [`FitStage`]: the final sample plus the cross-stage numbers.
#[derive(Debug, Clone, Copy)]
pub struct FitInput<'i> {
    /// The sample to fit (campaign sample, or the convergence sample for
    /// the original pipeline).
    pub sample: &'i [u64],
    /// Cross-stage numbers forwarded into the output.
    pub meta: FitMeta,
}

/// Output of [`FitStage`].
#[derive(Debug, Clone)]
pub struct FitOutput {
    /// The fitted pWCET curve.
    pub pwcet: Pwcet,
    /// i.i.d. evidence over the sample.
    pub iid: IidReport,
    /// pWCET at the configured reporting exceedance.
    pub pwcet_at_exceedance: f64,
    /// Cross-stage numbers, forwarded.
    pub meta: FitMeta,
}

/// The pWCET-fit stage.
#[derive(Debug, Clone, Copy)]
pub struct FitStage<'c> {
    /// Convergence settings (fit method, tail, dither).
    pub convergence: &'c ConvergenceConfig,
    /// Reporting exceedance probability.
    pub exceedance: f64,
}

impl<'i, 'c> AnalysisStage<'i> for FitStage<'c> {
    type Input = FitInput<'i>;
    type Output = FitOutput;

    fn kind(&self) -> StageKind {
        StageKind::Fit
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(
            upstream,
            &format!(
                "|fit|{:?}|{:?}|{:?}|{}",
                self.convergence.method,
                self.convergence.tail,
                self.convergence.dither,
                self.exceedance
            ),
        )
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        let pwcet = Pwcet::fit(
            input.sample,
            self.convergence.method,
            &self.convergence.tail,
            self.convergence.dither,
        )?;
        let float_sample: Vec<f64> = input.sample.iter().map(|&v| v as f64).collect();
        let iid = IidReport::evaluate(&float_sample);
        let pwcet_at_exceedance = pwcet.quantile(self.exceedance);
        Ok(FitOutput {
            pwcet,
            iid,
            pwcet_at_exceedance,
            meta: input.meta,
        })
    }

    fn encode(&self, output: &Self::Output) -> Json {
        let meta = &output.meta;
        Json::Obj(vec![
            (
                "pwcet_at_exceedance".to_string(),
                Json::Num(output.pwcet_at_exceedance),
            ),
            (
                "converge_runs".to_string(),
                Json::UInt(meta.converge_runs as u64),
            ),
            ("converged".to_string(), Json::Bool(meta.converged)),
            ("trace_len".to_string(), Json::UInt(meta.trace_len as u64)),
            ("r_tac".to_string(), Serialize::to_json(&meta.r_tac)),
            ("r_pub_tac".to_string(), Serialize::to_json(&meta.r_pub_tac)),
            (
                "campaign_runs".to_string(),
                Serialize::to_json(&meta.campaign_runs),
            ),
            (
                "campaign_capped".to_string(),
                Serialize::to_json(&meta.campaign_capped),
            ),
            ("pwcet_pub".to_string(), Serialize::to_json(&meta.pwcet_pub)),
        ])
    }

    fn decode(&self, _artifact: &Json) -> Option<Self::Output> {
        // The full pWCET curve does not round-trip; a refit over the cached
        // campaign sample reproduces it exactly.
        None
    }
}

/// The executed campaign length: the combined PUB + TAC requirement capped
/// at `max_campaign_runs`, but never below the measurements the convergence
/// stage already collected (themselves capped).
///
/// # Examples
///
/// ```
/// use mbcr::stage::campaign_runs_for;
/// assert_eq!(campaign_runs_for(17_000, 300, 200_000), 17_000);
/// assert_eq!(campaign_runs_for(17_000, 300, 800), 800); // capped
/// assert_eq!(campaign_runs_for(250, 300, 200_000), 300); // floor: R_pub
/// ```
#[must_use]
pub fn campaign_runs_for(r_pub_tac: u64, r_pub: usize, max_campaign_runs: usize) -> usize {
    let capped_requirement = usize::try_from(r_pub_tac)
        .unwrap_or(usize::MAX)
        .min(max_campaign_runs);
    let convergence_floor = r_pub.min(max_campaign_runs);
    capped_requirement.max(convergence_floor)
}

/// The per-stage content digests of one analysis, computable without
/// executing anything. Each digest chains over its upstream digest plus
/// the knobs the stage consumes, so a knob change invalidates exactly the
/// downstream stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDigests {
    pipeline: PipelineKind,
    pub_stage: u64,
    trace: u64,
    tac_il1: u64,
    tac_dl1: u64,
    converge: u64,
    campaign: u64,
    fit: u64,
}

impl StageDigests {
    /// Computes every stage digest for one (program, input, config)
    /// analysis.
    #[must_use]
    pub fn compute(
        program: &Program,
        input: &Inputs,
        cfg: &AnalysisConfig,
        pipeline: PipelineKind,
    ) -> Self {
        let program_d = fnv1a(FNV_OFFSET, &format!("{STAGE_SCHEMA}|program|{program:?}"));
        let input_d = fnv1a(FNV_OFFSET, &format!("{STAGE_SCHEMA}|input|{input:?}"));
        let pub_stage = PubStage {
            pub_cfg: &cfg.pub_cfg,
        }
        .digest(program_d);
        let trace_base = match pipeline {
            PipelineKind::Original => program_d,
            PipelineKind::PubTac => pub_stage,
        };
        let trace = TraceStage { pipeline }.digest(fnv1a(trace_base, &format!("|{input_d:016x}")));
        let tac_il1 = tac_stage(cfg, StageKind::TacIl1).digest(trace);
        let tac_dl1 = tac_stage(cfg, StageKind::TacDl1).digest(trace);
        let converge = ConvergeStage {
            platform: &cfg.platform,
            convergence: &cfg.convergence,
            campaign_seed: campaign_seed(cfg),
        }
        .digest(trace);
        let campaign = CampaignStage {
            platform: &cfg.platform,
            campaign_seed: campaign_seed(cfg),
            max_campaign_runs: cfg.max_campaign_runs,
            parallelism: Parallelism::serial(),
            checkpoint: None,
        }
        .digest(fnv1a(converge, &format!("|{tac_il1:016x}|{tac_dl1:016x}")));
        let fit_base = match pipeline {
            PipelineKind::Original => converge,
            PipelineKind::PubTac => campaign,
        };
        let fit = FitStage {
            convergence: &cfg.convergence,
            exceedance: cfg.exceedance,
        }
        .digest(fit_base);
        Self {
            pipeline,
            pub_stage,
            trace,
            tac_il1,
            tac_dl1,
            converge,
            campaign,
            fit,
        }
    }

    /// The digest of `stage`, or `None` when the pipeline lacks it.
    #[must_use]
    pub fn get(&self, stage: StageKind) -> Option<u64> {
        if !self.pipeline.stages().contains(&stage) {
            return None;
        }
        Some(match stage {
            StageKind::Pub => self.pub_stage,
            StageKind::Trace => self.trace,
            StageKind::TacIl1 => self.tac_il1,
            StageKind::TacDl1 => self.tac_dl1,
            StageKind::Converge => self.converge,
            StageKind::Campaign => self.campaign,
            StageKind::Fit => self.fit,
            StageKind::PathCoverage | StageKind::CacheClass => return None,
        })
    }

    /// The pipeline these digests describe.
    #[must_use]
    pub fn pipeline(&self) -> PipelineKind {
        self.pipeline
    }
}

/// Measured-vs-static path coverage of one program over an input set.
///
/// `static_paths` comes from Ball–Larus path numbering
/// ([`mbcr_ir::PathSpace`]); `observed_paths` from grouping the input
/// vectors by traversed path. `covered` certifies that every observed path
/// lies in the static path space — the static analysis is a sound superset
/// of what actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathCoverage {
    /// Static path count (`u128::MAX` when `saturated`).
    pub static_paths: u128,
    /// `true` when the exact static count exceeds 128-bit arithmetic.
    pub saturated: bool,
    /// Distinct paths observed over the input set.
    pub observed_paths: u64,
    /// Every observed path is a member of the static path space.
    pub covered: bool,
}

impl PathCoverage {
    /// `observed / static` as a float, or `None` when the static count
    /// saturates (the fraction would round to 0 and mislead).
    #[must_use]
    pub fn fraction(&self) -> Option<f64> {
        if self.saturated || self.static_paths == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.observed_paths as f64 / self.static_paths as f64)
    }

    /// The JSON shape used in stage artifacts, sweep manifests and
    /// `/v1/metrics` (`static_paths` as a decimal string — it can exceed
    /// `u64`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "static_paths".to_string(),
                Json::Str(self.static_paths.to_string()),
            ),
            ("saturated".to_string(), Json::Bool(self.saturated)),
            (
                "observed_paths".to_string(),
                Json::UInt(self.observed_paths),
            ),
            ("covered".to_string(), Json::Bool(self.covered)),
            (
                "fraction".to_string(),
                self.fraction().map_or(Json::Null, Json::Num),
            ),
        ])
    }

    /// Inverse of [`PathCoverage::to_json`].
    #[must_use]
    pub fn from_json(v: &Json) -> Option<PathCoverage> {
        Some(PathCoverage {
            static_paths: v.get("static_paths")?.as_str()?.parse().ok()?,
            saturated: v.get("saturated")?.as_bool()?,
            observed_paths: v.get("observed_paths")?.as_u64()?,
            covered: v.get("covered")?.as_bool()?,
        })
    }
}

/// Input of [`PathCoverageStage`]: a program and the input vectors whose
/// paths are measured against the static path space.
#[derive(Debug, Clone, Copy)]
pub struct PathCoverageInput<'i> {
    /// The program (normally the *original* — coverage is a property of
    /// the source path structure).
    pub program: &'i Program,
    /// The input vectors to group by path.
    pub inputs: &'i [Inputs],
}

/// The path-coverage side stage: static Ball–Larus path count vs paths
/// observed over an input set, digest-keyed like every pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathCoverageStage;

impl<'i> AnalysisStage<'i> for PathCoverageStage {
    type Input = PathCoverageInput<'i>;
    type Output = PathCoverage;

    fn kind(&self) -> StageKind {
        StageKind::PathCoverage
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(upstream, "|path_coverage|v1")
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        let space = PathSpace::of(input.program);
        let groups = group_inputs_by_path(input.program, input.inputs)?;
        let covered = groups.iter().all(|(record, _)| space.contains(record));
        Ok(PathCoverage {
            static_paths: space.num_paths(),
            saturated: space.is_saturated(),
            observed_paths: groups.len() as u64,
            covered,
        })
    }

    fn encode(&self, output: &Self::Output) -> Json {
        output.to_json()
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        PathCoverage::from_json(artifact)
    }
}

/// The content digest keying a program + input set's coverage artifact.
#[must_use]
pub fn path_coverage_digest(program: &Program, inputs: &[Inputs]) -> u64 {
    let base = fnv1a(
        FNV_OFFSET,
        &format!("{STAGE_SCHEMA}|program|{program:?}|inputs|{inputs:?}"),
    );
    PathCoverageStage.digest(base)
}

/// Computes (or loads) the path coverage of `program` over `inputs`,
/// persisting the artifact under [`path_coverage_digest`] when a store is
/// given — the digest-keyed entry point sweep drivers use.
///
/// # Errors
///
/// Interpreter failures, or a store write failure.
pub fn path_coverage(
    program: &Program,
    inputs: &[Inputs],
    store: Option<&dyn StageStore>,
) -> Result<PathCoverage, AnalyzeError> {
    let stage = PathCoverageStage;
    let digest = path_coverage_digest(program, inputs);
    if let Some(store) = store {
        if let Some(doc) = store.load_stage(digest) {
            if let Some(out) = stage_artifact_data(&doc, StageKind::PathCoverage, digest)
                .and_then(|d| stage.decode(d))
            {
                return Ok(out);
            }
        }
    }
    let out = stage.run(PathCoverageInput { program, inputs })?;
    if let Some(store) = store {
        let doc = Json::Obj(vec![
            ("schema".to_string(), STAGE_SCHEMA.into()),
            ("stage".to_string(), StageKind::PathCoverage.name().into()),
            ("digest".to_string(), Json::UInt(digest)),
            ("data".to_string(), stage.encode(&out)),
        ]);
        store
            .save_stage(digest, &doc)
            .map_err(|e| AnalyzeError::Store(format!("path_coverage: {e}")))?;
    }
    Ok(out)
}

/// The JSON shape of a classification [`Rollup`] used in stage artifacts,
/// sweep manifests and `/v1/metrics` — per-cache site counts by class.
#[must_use]
pub fn rollup_to_json(rollup: &Rollup) -> Json {
    Json::Obj(vec![
        ("il1".to_string(), rollup_side_to_json(&rollup.il1)),
        ("dl1".to_string(), rollup_side_to_json(&rollup.dl1)),
    ])
}

/// Inverse of [`rollup_to_json`].
#[must_use]
pub fn rollup_from_json(v: &Json) -> Option<Rollup> {
    Some(Rollup {
        il1: rollup_side_from_json(v.get("il1")?)?,
        dl1: rollup_side_from_json(v.get("dl1")?)?,
    })
}

fn rollup_side_to_json(side: &RollupSide) -> Json {
    Json::Obj(vec![
        ("sites".to_string(), Json::UInt(side.sites as u64)),
        ("always_hit".to_string(), Json::UInt(side.always_hit as u64)),
        (
            "always_miss".to_string(),
            Json::UInt(side.always_miss as u64),
        ),
        ("first_miss".to_string(), Json::UInt(side.first_miss as u64)),
        (
            "not_classified".to_string(),
            Json::UInt(side.not_classified as u64),
        ),
    ])
}

fn rollup_side_from_json(v: &Json) -> Option<RollupSide> {
    Some(RollupSide {
        sites: v.get("sites")?.as_usize()?,
        always_hit: v.get("always_hit")?.as_usize()?,
        always_miss: v.get("always_miss")?.as_usize()?,
        first_miss: v.get("first_miss")?.as_usize()?,
        not_classified: v.get("not_classified")?.as_usize()?,
    })
}

/// Input of [`CacheClassStage`]: a program and the L1 geometry pair its
/// access sites are classified against.
#[derive(Debug, Clone, Copy)]
pub struct CacheClassInput<'i> {
    /// The program (normally the *original* — classification is a property
    /// of the source access structure, like path coverage).
    pub program: &'i Program,
    /// Instruction-cache geometry.
    pub il1: CacheGeometry,
    /// Data-cache geometry.
    pub dl1: CacheGeometry,
}

/// The cache-classification side stage: the abstract-interpretation
/// must/may/persistence rollup of one program against one geometry pair
/// ([`mbcr_ir::classify`]), digest-keyed like every pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheClassStage;

impl<'i> AnalysisStage<'i> for CacheClassStage {
    type Input = CacheClassInput<'i>;
    type Output = Rollup;

    fn kind(&self) -> StageKind {
        StageKind::CacheClass
    }

    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(upstream, "|cache_class|v1")
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, AnalyzeError> {
        Ok(classify(input.program, input.il1, input.dl1).rollup)
    }

    fn encode(&self, output: &Self::Output) -> Json {
        rollup_to_json(output)
    }

    fn decode(&self, artifact: &Json) -> Option<Self::Output> {
        rollup_from_json(artifact)
    }
}

/// The content digest keying a program + geometry pair's classification
/// artifact. [`CacheGeometry`]'s `Display` spells out size, ways, line
/// size and set count, so any geometry change re-keys the artifact.
#[must_use]
pub fn cache_class_digest(program: &Program, il1: CacheGeometry, dl1: CacheGeometry) -> u64 {
    let base = fnv1a(
        FNV_OFFSET,
        &format!("{STAGE_SCHEMA}|program|{program:?}|il1|{il1}|dl1|{dl1}"),
    );
    CacheClassStage.digest(base)
}

/// Computes (or loads) the hit/miss classification rollup of `program`
/// under the `il1`/`dl1` geometries, persisting the artifact under
/// [`cache_class_digest`] when a store is given — the digest-keyed entry
/// point sweep drivers and the metrics scrape use.
///
/// # Errors
///
/// A store write failure (the analysis itself is total).
pub fn cache_class(
    program: &Program,
    il1: CacheGeometry,
    dl1: CacheGeometry,
    store: Option<&dyn StageStore>,
) -> Result<Rollup, AnalyzeError> {
    let stage = CacheClassStage;
    let digest = cache_class_digest(program, il1, dl1);
    if let Some(store) = store {
        if let Some(doc) = store.load_stage(digest) {
            if let Some(out) = stage_artifact_data(&doc, StageKind::CacheClass, digest)
                .and_then(|d| stage.decode(d))
            {
                return Ok(out);
            }
        }
    }
    let out = stage.run(CacheClassInput { program, il1, dl1 })?;
    if let Some(store) = store {
        let doc = Json::Obj(vec![
            ("schema".to_string(), STAGE_SCHEMA.into()),
            ("stage".to_string(), StageKind::CacheClass.name().into()),
            ("digest".to_string(), Json::UInt(digest)),
            ("data".to_string(), stage.encode(&out)),
        ]);
        store
            .save_stage(digest, &doc)
            .map_err(|e| AnalyzeError::Store(format!("cache_class: {e}")))?;
    }
    Ok(out)
}

/// Extracts the payload of a stored stage artifact after validating its
/// schema, stage name and digest — a torn or foreign file is never a hit.
#[must_use]
pub fn stage_artifact_data(doc: &Json, stage: StageKind, digest: u64) -> Option<&Json> {
    if doc.get("schema")?.as_str()? != STAGE_SCHEMA {
        return None;
    }
    if doc.get("stage")?.as_str()? != stage.name() {
        return None;
    }
    if doc.get("digest")?.as_u64()? != digest {
        return None;
    }
    doc.get("data")
}

fn campaign_seed(cfg: &AnalysisConfig) -> u64 {
    derive_seed(cfg.seed, 0xCA)
}

fn tac_stage(cfg: &AnalysisConfig, stage: StageKind) -> TacStage {
    let (geometry, salt) = match stage {
        StageKind::TacIl1 => (&cfg.platform.il1, 1),
        StageKind::TacDl1 => (&cfg.platform.dl1, 2),
        other => unreachable!("{} is not a TAC stage", other.name()),
    };
    TacStage {
        stage,
        cfg: cfg.tac.for_cache(geometry, derive_seed(cfg.seed, salt)),
        line_size: geometry.line_size(),
    }
}

fn pub_report_from_json(v: &Json) -> Option<PubReport> {
    let constructs = v
        .get("constructs")?
        .as_array()?
        .iter()
        .map(|c| {
            Some(ConstructReport {
                construct_id: u32::try_from(c.get("construct_id")?.as_u64()?).ok()?,
                then_inserted: c.get("then_inserted")?.as_usize()?,
                else_inserted: c.get("else_inserted")?.as_usize()?,
                inserted_instrs: c.get("inserted_instrs")?.as_u64()?,
                inserted_data_refs: c.get("inserted_data_refs")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(PubReport {
        constructs,
        loops_padded: v.get("loops_padded")?.as_usize()?,
        widened_touches: v.get("widened_touches")?.as_usize()?,
    })
}

fn tac_from_json(v: &Json) -> Option<TacAnalysis> {
    let relevant_groups = v
        .get("relevant_groups")?
        .as_array()?
        .iter()
        .map(|g| {
            Some(ConflictGroup {
                lines: g
                    .get("lines")?
                    .as_array()?
                    .iter()
                    .map(|l| l.as_u64().map(LineId))
                    .collect::<Option<Vec<_>>>()?,
                prob: g.get("prob")?.as_f64()?,
                extra_misses: g.get("extra_misses")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let classes = v
        .get("classes")?
        .as_array()?
        .iter()
        .map(|c| {
            Some(ImpactClass {
                impact: c.get("impact")?.as_f64()?,
                prob: c.get("prob")?.as_f64()?,
                group_count: c.get("group_count")?.as_usize()?,
                runs: c.get("runs")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(TacAnalysis {
        unique_lines: v.get("unique_lines")?.as_usize()?,
        groups_evaluated: v.get("groups_evaluated")?.as_usize()?,
        relevant_groups,
        classes,
        runs_required: v.get("runs_required")?.as_u64()?,
    })
}

/// Which cached artifacts a session refuses to load (see
/// [`AnalysisSession::with_force`] / [`AnalysisSession::with_force_stage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForceScope {
    /// Load every valid cached artifact (the default).
    None,
    /// Ignore all cached artifacts; recompute everything.
    All,
    /// Ignore only one stage's cached artifact; upstream stages still
    /// load.
    Only(StageKind),
}

/// Drives the stages of one analysis: memoizes outputs, loads/persists
/// stage artifacts through an optional [`StageStore`], and assembles the
/// classic result structs — bit-identical to the monolithic entry points.
pub struct AnalysisSession<'a> {
    program: &'a Program,
    input: &'a Inputs,
    cfg: &'a AnalysisConfig,
    pipeline: PipelineKind,
    store: Option<&'a dyn StageStore>,
    force: ForceScope,
    digests: StageDigests,
    pub_result: Option<PubResult>,
    pub_report: Option<PubReport>,
    trace: Option<Trace>,
    tac_il1: Option<TacAnalysis>,
    tac_dl1: Option<TacAnalysis>,
    converge: Option<ConvergeOutput>,
    campaign: Option<Vec<u64>>,
    campaign_resumed: Option<usize>,
    fit: Option<FitOutput>,
    statuses: Vec<(StageKind, StageStatus)>,
}

impl<'a> AnalysisSession<'a> {
    fn new(
        program: &'a Program,
        input: &'a Inputs,
        cfg: &'a AnalysisConfig,
        pipeline: PipelineKind,
    ) -> Self {
        Self {
            program,
            input,
            cfg,
            pipeline,
            store: None,
            force: ForceScope::None,
            digests: StageDigests::compute(program, input, cfg, pipeline),
            pub_result: None,
            pub_report: None,
            trace: None,
            tac_il1: None,
            tac_dl1: None,
            converge: None,
            campaign: None,
            campaign_resumed: None,
            fit: None,
            statuses: Vec::new(),
        }
    }

    /// A session for the paper's full PUB + TAC + MBPTA pipeline.
    #[must_use]
    pub fn pub_tac(program: &'a Program, input: &'a Inputs, cfg: &'a AnalysisConfig) -> Self {
        Self::new(program, input, cfg, PipelineKind::PubTac)
    }

    /// A session for the plain-MBPTA baseline on the original program.
    #[must_use]
    pub fn original(program: &'a Program, input: &'a Inputs, cfg: &'a AnalysisConfig) -> Self {
        Self::new(program, input, cfg, PipelineKind::Original)
    }

    /// Attaches a stage store: computed stages persist their artifacts,
    /// and stages whose artifact is already present load instead of
    /// recomputing.
    #[must_use]
    pub fn with_store(mut self, store: &'a dyn StageStore) -> Self {
        self.store = Some(store);
        self
    }

    /// When set, cached artifacts are ignored (every stage recomputes and
    /// overwrites its artifact) — the standalone `--force` semantics.
    #[must_use]
    pub fn with_force(mut self, force: bool) -> Self {
        self.force = if force {
            ForceScope::All
        } else {
            ForceScope::None
        };
        self
    }

    /// Ignores the cached artifact of `stage` only: that one stage
    /// recomputes and overwrites its artifact while upstream stages still
    /// load from the store. This is what a stage-granular scheduler wants
    /// under `--force` — its DAG already guarantees every upstream node
    /// re-executed first, so re-deriving the whole chain inside each
    /// node's session would multiply the expensive stages.
    #[must_use]
    pub fn with_force_stage(mut self, stage: StageKind) -> Self {
        self.force = ForceScope::Only(stage);
        self
    }

    /// Which pipeline this session runs.
    #[must_use]
    pub fn pipeline(&self) -> PipelineKind {
        self.pipeline
    }

    /// The session's stage digests.
    #[must_use]
    pub fn digests(&self) -> &StageDigests {
        &self.digests
    }

    /// The digest of `stage`, when the pipeline has it.
    #[must_use]
    pub fn digest(&self, stage: StageKind) -> Option<u64> {
        self.digests.get(stage)
    }

    /// How `stage` was satisfied, if the session has touched it.
    #[must_use]
    pub fn status(&self, stage: StageKind) -> Option<StageStatus> {
        self.statuses
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, status)| status)
    }

    /// Every stage touched so far, in completion order.
    #[must_use]
    pub fn statuses(&self) -> &[(StageKind, StageStatus)] {
        &self.statuses
    }

    /// Ensures `stage` (and its upstream stages, transitively) is
    /// available, loading from the store where possible.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`].
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not part of the session's pipeline.
    pub fn advance(&mut self, stage: StageKind) -> Result<(), AnalyzeError> {
        assert!(
            self.pipeline.stages().contains(&stage),
            "stage '{}' is not part of the '{}' pipeline",
            stage.name(),
            self.pipeline.name()
        );
        match stage {
            StageKind::Pub => self.ensure_pub(),
            StageKind::Trace => self.ensure_trace(),
            StageKind::TacIl1 | StageKind::TacDl1 => self.ensure_tac(stage),
            StageKind::Converge => self.ensure_converge(),
            StageKind::Campaign => self.ensure_campaign(),
            StageKind::Fit => self.ensure_fit(),
            // Guarded by the assert above: the side stages belong to no
            // per-analysis pipeline.
            StageKind::PathCoverage => unreachable!("path_coverage is not a session stage"),
            StageKind::CacheClass => unreachable!("cache_class is not a session stage"),
        }
    }

    /// The replayed trace's length, once the trace stage has run.
    #[must_use]
    pub fn trace_len(&self) -> Option<usize> {
        self.trace.as_ref().map(Trace::len)
    }

    /// A TAC analysis, once its stage has run.
    #[must_use]
    pub fn tac_analysis(&self, stage: StageKind) -> Option<&TacAnalysis> {
        match stage {
            StageKind::TacIl1 => self.tac_il1.as_ref(),
            StageKind::TacDl1 => self.tac_dl1.as_ref(),
            _ => None,
        }
    }

    /// The convergence output, once its stage has run.
    #[must_use]
    pub fn converge_output(&self) -> Option<&ConvergeOutput> {
        self.converge.as_ref()
    }

    /// The campaign sample, once its stage has run.
    #[must_use]
    pub fn campaign_sample(&self) -> Option<&[u64]> {
        self.campaign.as_deref()
    }

    /// How many leading campaign runs were restored from an intra-stage
    /// checkpoint log instead of simulated — `Some` only when this session
    /// *computed* the campaign stage (a fully cached campaign has no
    /// resume notion).
    #[must_use]
    pub fn campaign_resumed_runs(&self) -> Option<usize> {
        self.campaign_resumed
    }

    /// The fit output, once its stage has run.
    #[must_use]
    pub fn fit_output(&self) -> Option<&FitOutput> {
        self.fit.as_ref()
    }

    /// The PUB report, once its stage has run.
    #[must_use]
    pub fn pub_report(&self) -> Option<&PubReport> {
        self.pub_report.as_ref()
    }

    /// Runs the original-program pipeline to completion.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`].
    ///
    /// # Panics
    ///
    /// Panics if the session was constructed for the pub_tac pipeline.
    pub fn finish_original(mut self) -> Result<OriginalAnalysis, AnalyzeError> {
        assert_eq!(
            self.pipeline,
            PipelineKind::Original,
            "finish_original needs an original-pipeline session"
        );
        self.ensure_fit()?;
        let fit = self.fit.take().expect("fit ensured");
        Ok(OriginalAnalysis {
            r_orig: fit.meta.converge_runs,
            converged: fit.meta.converged,
            pwcet_at_exceedance: fit.pwcet_at_exceedance,
            pwcet: fit.pwcet,
            iid: fit.iid,
            trace_len: fit.meta.trace_len,
        })
    }

    /// Runs the PUB + TAC pipeline to completion.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`].
    ///
    /// # Panics
    ///
    /// Panics if the session was constructed for the original pipeline.
    pub fn finish_pub_tac(mut self) -> Result<PubTacAnalysis, AnalyzeError> {
        assert_eq!(
            self.pipeline,
            PipelineKind::PubTac,
            "finish_pub_tac needs a pub_tac-pipeline session"
        );
        self.ensure_fit()?;
        self.ensure_pub()?;
        let fit = self.fit.take().expect("fit ensured");
        let meta = fit.meta;
        Ok(PubTacAnalysis {
            pub_report: self.pub_report.take().expect("pub ensured"),
            r_pub: meta.converge_runs,
            tac_il1: self.tac_il1.take().expect("tac ensured"),
            tac_dl1: self.tac_dl1.take().expect("tac ensured"),
            r_tac: meta.r_tac.expect("pub_tac meta"),
            r_pub_tac: meta.r_pub_tac.expect("pub_tac meta"),
            campaign_runs: meta.campaign_runs.expect("pub_tac meta"),
            campaign_capped: meta.campaign_capped.expect("pub_tac meta"),
            pwcet_pub: meta.pwcet_pub.expect("pub_tac meta"),
            pwcet_pub_tac: fit.pwcet_at_exceedance,
            pwcet: fit.pwcet,
            iid: fit.iid,
            sample: self.campaign.take().expect("campaign ensured"),
            trace_len: meta.trace_len,
        })
    }

    fn record(&mut self, stage: StageKind, status: StageStatus) {
        if !self.statuses.iter().any(|(s, _)| *s == stage) {
            self.statuses.push((stage, status));
        }
    }

    fn is_forced(&self, stage: StageKind) -> bool {
        match self.force {
            ForceScope::None => false,
            ForceScope::All => true,
            ForceScope::Only(s) => s == stage,
        }
    }

    fn load_artifact(&self, stage: StageKind) -> Option<Json> {
        if self.is_forced(stage) {
            return None;
        }
        let store = self.store?;
        let digest = self.digests.get(stage)?;
        let doc = store.load_stage(digest)?;
        stage_artifact_data(&doc, stage, digest).cloned()
    }

    fn save_artifact(&mut self, stage: StageKind, data: Json) -> Result<(), AnalyzeError> {
        let Some(store) = self.store else {
            return Ok(());
        };
        let Some(digest) = self.digests.get(stage) else {
            return Ok(());
        };
        let doc = Json::Obj(vec![
            ("schema".to_string(), STAGE_SCHEMA.into()),
            ("stage".to_string(), stage.name().into()),
            ("digest".to_string(), Json::UInt(digest)),
            ("data".to_string(), data),
        ]);
        store
            .save_stage(digest, &doc)
            .map_err(|e| AnalyzeError::Store(format!("{}: {e}", stage.name())))
    }

    /// The pubbed program, deriving it on demand (cheap, deterministic —
    /// never persisted).
    fn pubbed_program(&mut self) -> Result<&Program, AnalyzeError> {
        if self.pub_result.is_none() {
            self.pub_result = Some(pub_transform(self.program, &self.cfg.pub_cfg)?);
        }
        Ok(&self.pub_result.as_ref().expect("just set").program)
    }

    fn ensure_pub(&mut self) -> Result<(), AnalyzeError> {
        if self.pub_report.is_some() {
            return Ok(());
        }
        let cfg = self.cfg;
        let stage = PubStage {
            pub_cfg: &cfg.pub_cfg,
        };
        if let Some(data) = self.load_artifact(StageKind::Pub) {
            if let Some(report) = stage.decode(&data) {
                self.pub_report = Some(report);
                self.record(StageKind::Pub, StageStatus::Cached);
                return Ok(());
            }
        }
        let report = match &self.pub_result {
            Some(r) => r.report.clone(),
            None => {
                self.pubbed_program()?;
                self.pub_result.as_ref().expect("just set").report.clone()
            }
        };
        self.save_artifact(StageKind::Pub, stage.encode(&report))?;
        self.record(StageKind::Pub, StageStatus::Computed);
        self.pub_report = Some(report);
        Ok(())
    }

    fn ensure_trace(&mut self) -> Result<(), AnalyzeError> {
        if self.trace.is_some() {
            return Ok(());
        }
        let stage = TraceStage {
            pipeline: self.pipeline,
        };
        if let Some(data) = self.load_artifact(StageKind::Trace) {
            if let Some(trace) = stage.decode(&data) {
                self.trace = Some(trace);
                self.record(StageKind::Trace, StageStatus::Cached);
                return Ok(());
            }
        }
        let input = self.input;
        let trace = match self.pipeline {
            PipelineKind::Original => stage.run(TraceInput {
                program: self.program,
                inputs: input,
            })?,
            PipelineKind::PubTac => {
                self.ensure_pub()?;
                let program = self.pubbed_program()?;
                stage.run(TraceInput {
                    program,
                    inputs: input,
                })?
            }
        };
        self.save_artifact(StageKind::Trace, stage.encode(&trace))?;
        self.record(StageKind::Trace, StageStatus::Computed);
        self.trace = Some(trace);
        Ok(())
    }

    fn ensure_tac(&mut self, stage_kind: StageKind) -> Result<(), AnalyzeError> {
        let present = match stage_kind {
            StageKind::TacIl1 => self.tac_il1.is_some(),
            StageKind::TacDl1 => self.tac_dl1.is_some(),
            other => unreachable!("{} is not a TAC stage", other.name()),
        };
        if present {
            return Ok(());
        }
        let stage = tac_stage(self.cfg, stage_kind);
        let analysis = if let Some(decoded) = self
            .load_artifact(stage_kind)
            .and_then(|data| stage.decode(&data))
        {
            self.record(stage_kind, StageStatus::Cached);
            decoded
        } else {
            self.ensure_trace()?;
            let trace = self.trace.as_ref().expect("trace ensured");
            let lines = match stage_kind {
                StageKind::TacIl1 => trace.instr_lines(stage.line_size),
                _ => trace.data_lines(stage.line_size),
            };
            let analysis = stage.run(&lines)?;
            self.save_artifact(stage_kind, stage.encode(&analysis))?;
            self.record(stage_kind, StageStatus::Computed);
            analysis
        };
        match stage_kind {
            StageKind::TacIl1 => self.tac_il1 = Some(analysis),
            _ => self.tac_dl1 = Some(analysis),
        }
        Ok(())
    }

    fn ensure_converge(&mut self) -> Result<(), AnalyzeError> {
        if self.converge.is_some() {
            return Ok(());
        }
        let cfg = self.cfg;
        let stage = ConvergeStage {
            platform: &cfg.platform,
            convergence: &cfg.convergence,
            campaign_seed: campaign_seed(cfg),
        };
        if let Some(data) = self.load_artifact(StageKind::Converge) {
            if let Some(output) = stage.decode(&data) {
                self.converge = Some(output);
                self.record(StageKind::Converge, StageStatus::Cached);
                return Ok(());
            }
        }
        self.ensure_trace()?;
        let output = stage.run(self.trace.as_ref().expect("trace ensured"))?;
        self.save_artifact(StageKind::Converge, stage.encode(&output))?;
        self.record(StageKind::Converge, StageStatus::Computed);
        self.converge = Some(output);
        Ok(())
    }

    fn ensure_campaign(&mut self) -> Result<(), AnalyzeError> {
        if self.campaign.is_some() {
            return Ok(());
        }
        let cfg = self.cfg;
        if let Some(data) = self.load_artifact(StageKind::Campaign) {
            let sample = self
                .store
                .zip(self.digests.get(StageKind::Campaign))
                .and_then(|(store, digest)| campaign_marker_sample(&data, store, digest));
            if let Some(sample) = sample {
                self.campaign = Some(sample);
                self.record(StageKind::Campaign, StageStatus::Cached);
                return Ok(());
            }
        }
        let checkpoint = match (self.store, self.digests.get(StageKind::Campaign)) {
            (Some(store), Some(digest)) => Some(CampaignCheckpoint {
                store,
                digest,
                interval: cfg.checkpoint_interval,
                // Force means re-simulate, not rehydrate — but the fresh
                // run still streams its checkpoints, so the log backs the
                // completion marker it saves.
                resume: !self.is_forced(StageKind::Campaign),
            }),
            _ => None,
        };
        let stage = CampaignStage {
            platform: &cfg.platform,
            campaign_seed: campaign_seed(cfg),
            max_campaign_runs: cfg.max_campaign_runs,
            parallelism: Parallelism::with_threads(cfg.threads).batch_width(cfg.batch_width),
            checkpoint,
        };
        self.ensure_tac(StageKind::TacIl1)?;
        self.ensure_tac(StageKind::TacDl1)?;
        self.ensure_converge()?;
        // Cached TAC/converge stages do not pull the trace in; the
        // campaign tail replays it, so ensure it explicitly.
        self.ensure_trace()?;
        let r_tac = self.r_tac().expect("tac ensured");
        let converge = self.converge.as_ref().expect("converge ensured");
        let r_pub = converge.runs;
        let runs = campaign_runs_for(r_tac.max(r_pub as u64), r_pub, cfg.max_campaign_runs);
        let trace = self.trace.as_ref().expect("trace ensured");
        let output = stage.run(CampaignInput {
            trace,
            prefix: &converge.sample,
            runs,
        })?;
        self.save_artifact(StageKind::Campaign, stage.encode(&output))?;
        self.record(StageKind::Campaign, StageStatus::Computed);
        self.campaign_resumed = Some(output.resumed_runs);
        self.campaign = Some(output.sample);
        Ok(())
    }

    /// `R_tac = max(IL1, DL1)`, once both TAC stages have run.
    #[must_use]
    pub fn r_tac(&self) -> Option<u64> {
        Some(
            self.tac_il1
                .as_ref()?
                .runs_required
                .max(self.tac_dl1.as_ref()?.runs_required),
        )
    }

    fn ensure_fit(&mut self) -> Result<(), AnalyzeError> {
        if self.fit.is_some() {
            return Ok(());
        }
        // The fit does not rehydrate from its artifact (see FitStage); a
        // present artifact still marks the stage cached for schedulers.
        let cached = self.load_artifact(StageKind::Fit).is_some();
        let cfg = self.cfg;
        let meta = match self.pipeline {
            PipelineKind::Original => {
                self.ensure_converge()?;
                self.ensure_trace()?;
                let converge = self.converge.as_ref().expect("converge ensured");
                FitMeta {
                    converge_runs: converge.runs,
                    converged: converge.converged,
                    trace_len: self.trace.as_ref().expect("trace ensured").len(),
                    r_tac: None,
                    r_pub_tac: None,
                    campaign_runs: None,
                    campaign_capped: None,
                    pwcet_pub: None,
                }
            }
            PipelineKind::PubTac => {
                self.ensure_campaign()?;
                self.ensure_tac(StageKind::TacIl1)?;
                self.ensure_tac(StageKind::TacDl1)?;
                self.ensure_converge()?;
                self.ensure_trace()?;
                let converge = self.converge.as_ref().expect("converge ensured");
                let r_pub = converge.runs;
                let r_tac = self.r_tac().expect("tac ensured");
                let r_pub_tac = r_tac.max(r_pub as u64);
                let campaign_runs = self.campaign.as_ref().expect("campaign ensured").len();
                // The R_pub-run estimate (the paper's "PUB" column): refit
                // over the convergence sample — identical to the final fit
                // the convergence procedure performed.
                let pub_fit = Pwcet::fit(
                    &converge.sample,
                    cfg.convergence.method,
                    &cfg.convergence.tail,
                    cfg.convergence.dither,
                )?;
                FitMeta {
                    converge_runs: r_pub,
                    converged: converge.converged,
                    trace_len: self.trace.as_ref().expect("trace ensured").len(),
                    r_tac: Some(r_tac),
                    r_pub_tac: Some(r_pub_tac),
                    campaign_runs: Some(campaign_runs),
                    campaign_capped: Some((campaign_runs as u64) < r_pub_tac),
                    pwcet_pub: Some(pub_fit.quantile(cfg.exceedance)),
                }
            }
        };
        let stage = FitStage {
            convergence: &cfg.convergence,
            exceedance: cfg.exceedance,
        };
        let sample = match self.pipeline {
            PipelineKind::Original => &self.converge.as_ref().expect("converge ensured").sample,
            PipelineKind::PubTac => self.campaign.as_ref().expect("campaign ensured"),
        };
        let output = stage.run(FitInput { sample, meta })?;
        if cached {
            self.record(StageKind::Fit, StageStatus::Cached);
        } else {
            let encoded = stage.encode(&output);
            self.save_artifact(StageKind::Fit, encoded)?;
            self.record(StageKind::Fit, StageStatus::Computed);
        }
        self.fit = Some(output);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{Expr, ProgramBuilder, Stmt};

    fn demo_program() -> (Program, mbcr_ir::Var) {
        let mut b = ProgramBuilder::new("stage-demo");
        let big = b.array("big", 256);
        let x = b.var("x");
        let acc = b.var("acc");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(32),
            32,
            vec![Stmt::Assign(
                acc,
                Expr::var(acc).add(Expr::load(big, Expr::var(i).mul(Expr::c(8)))),
            )],
        ));
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(
                acc,
                Expr::var(acc).add(Expr::load(big, Expr::c(7))),
            )],
            vec![Stmt::Assign(acc, Expr::var(acc).sub(Expr::c(1)))],
        ));
        (b.build().unwrap(), x)
    }

    fn quick_cfg(seed: u64) -> AnalysisConfig {
        AnalysisConfig::builder()
            .seed(seed)
            .quick()
            .threads(2)
            .build()
    }

    #[test]
    fn campaign_runs_for_matches_the_legacy_clamp() {
        // Uncapped: the combined requirement wins.
        assert_eq!(campaign_runs_for(17_000, 300, 200_000), 17_000);
        // Cap below the requirement but above R_pub.
        assert_eq!(campaign_runs_for(17_000, 300, 800), 800);
        // Cap below R_pub: the campaign still stops at the cap.
        assert_eq!(campaign_runs_for(17_000, 300, 200), 200);
        // Requirement below R_pub (TAC asked for less): floor at R_pub.
        assert_eq!(campaign_runs_for(250, 300, 200_000), 300);
        // A requirement beyond usize (u64::MAX on 32-bit targets; the
        // unwrap_or path) still clamps to the cap.
        assert_eq!(campaign_runs_for(u64::MAX, 300, 800), 800);
        // Degenerate zero cap.
        assert_eq!(campaign_runs_for(0, 0, 0), 0);
    }

    #[test]
    fn digests_are_stable_and_stage_sensitive() {
        let (p, _) = demo_program();
        let cfg = quick_cfg(1);
        let input = Inputs::new();
        let a = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        let b = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        assert_eq!(a, b, "digests must be deterministic");
        let all: Vec<u64> = PipelineKind::PubTac
            .stages()
            .iter()
            .map(|&s| a.get(s).unwrap())
            .collect();
        let distinct: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "stage digests must differ");
    }

    #[test]
    fn max_campaign_runs_invalidates_only_campaign_and_fit() {
        let (p, _) = demo_program();
        let input = Inputs::new();
        let base = quick_cfg(1);
        let recapped = AnalysisConfig {
            max_campaign_runs: base.max_campaign_runs + 1,
            ..base.clone()
        };
        let a = StageDigests::compute(&p, &input, &base, PipelineKind::PubTac);
        let b = StageDigests::compute(&p, &input, &recapped, PipelineKind::PubTac);
        for stage in [
            StageKind::Pub,
            StageKind::Trace,
            StageKind::TacIl1,
            StageKind::TacDl1,
            StageKind::Converge,
        ] {
            assert_eq!(a.get(stage), b.get(stage), "{} must survive", stage.name());
        }
        assert_ne!(a.get(StageKind::Campaign), b.get(StageKind::Campaign));
        assert_ne!(a.get(StageKind::Fit), b.get(StageKind::Fit));
    }

    #[test]
    fn seed_change_preserves_pub_and_trace_only() {
        let (p, _) = demo_program();
        let input = Inputs::new();
        let a = StageDigests::compute(&p, &input, &quick_cfg(1), PipelineKind::PubTac);
        let b = StageDigests::compute(&p, &input, &quick_cfg(2), PipelineKind::PubTac);
        assert_eq!(a.get(StageKind::Pub), b.get(StageKind::Pub));
        assert_eq!(a.get(StageKind::Trace), b.get(StageKind::Trace));
        for stage in [
            StageKind::TacIl1,
            StageKind::TacDl1,
            StageKind::Converge,
            StageKind::Campaign,
            StageKind::Fit,
        ] {
            assert_ne!(a.get(stage), b.get(stage), "{} must reseed", stage.name());
        }
    }

    #[test]
    fn original_pipeline_has_no_pub_or_campaign_digest() {
        let (p, _) = demo_program();
        let cfg = quick_cfg(1);
        let d = StageDigests::compute(&p, &Inputs::new(), &cfg, PipelineKind::Original);
        assert!(d.get(StageKind::Pub).is_none());
        assert!(d.get(StageKind::TacIl1).is_none());
        assert!(d.get(StageKind::Campaign).is_none());
        assert!(d.get(StageKind::Trace).is_some());
        assert!(d.get(StageKind::Fit).is_some());
    }

    #[test]
    fn trace_artifact_roundtrips() {
        let stage = TraceStage {
            pipeline: PipelineKind::PubTac,
        };
        let trace: Trace = [
            Access::fetch(0x40),
            Access::read(0x8000),
            Access::write(0x80),
        ]
        .into_iter()
        .collect();
        let decoded = stage.decode(&stage.encode(&trace)).expect("roundtrip");
        assert_eq!(decoded, trace);
        assert!(stage.decode(&Json::Obj(vec![])).is_none(), "torn artifact");
    }

    #[test]
    fn session_statuses_track_cold_and_warm_runs() {
        let (p, x) = demo_program();
        let cfg = quick_cfg(99);
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();

        let mut cold = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&store);
        cold.advance(StageKind::Fit).unwrap();
        for &(_, status) in cold.statuses() {
            assert_eq!(status, StageStatus::Computed);
        }
        assert_eq!(store.len(), 7, "one artifact per pub_tac stage");

        let mut warm = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&store);
        warm.advance(StageKind::Fit).unwrap();
        for stage in [
            StageKind::Trace,
            StageKind::TacIl1,
            StageKind::TacDl1,
            StageKind::Converge,
            StageKind::Campaign,
            StageKind::Fit,
        ] {
            assert_eq!(
                warm.status(stage),
                Some(StageStatus::Cached),
                "{} must load from the store",
                stage.name()
            );
        }
    }

    /// Clones a store's JSON artifacts (not its sample logs) through the
    /// public trait — the shape an interrupted process leaves behind when
    /// its log is torn or partial.
    fn clone_artifacts(from: &MemoryStageStore, digests: &StageDigests) -> MemoryStageStore {
        let to = MemoryStageStore::default();
        for &stage in PipelineKind::PubTac.stages() {
            let digest = digests.get(stage).unwrap();
            if let Some(doc) = from.load_stage(digest) {
                to.save_stage(digest, &doc).unwrap();
            }
        }
        to
    }

    #[test]
    fn campaign_stage_checkpoints_stream_to_the_log_and_resume_mid_campaign() {
        let platform = PlatformConfig::paper_default();
        let trace: Trace = (0..48).map(|i| Access::read(i * 32)).collect();
        let seed = 7;
        let runs = 500;
        let prefix = campaign_slice(&platform, &trace, 0, 120, seed);
        let reference = mbcr_cpu::campaign(&platform, &trace, runs, seed);
        fn stage_at<'c>(
            platform: &'c PlatformConfig,
            store: &'c dyn StageStore,
            seed: u64,
            runs: usize,
            interval: usize,
        ) -> CampaignStage<'c> {
            CampaignStage {
                platform,
                campaign_seed: seed,
                max_campaign_runs: runs,
                parallelism: Parallelism::serial(),
                checkpoint: Some(CampaignCheckpoint {
                    store,
                    digest: 0xD1,
                    interval,
                    resume: true,
                }),
            }
        }

        // Cold: the whole sample streams into the log, chunk by chunk.
        let store = MemoryStageStore::default();
        let cold = stage_at(&platform, &store, seed, runs, 64)
            .run(CampaignInput {
                trace: &trace,
                prefix: &prefix,
                runs,
            })
            .unwrap();
        assert_eq!(
            cold.sample, reference,
            "checkpointing never affects results"
        );
        assert_eq!(cold.resumed_runs, 0);
        assert_eq!(store.load_samples(0xD1).unwrap(), reference);

        // Interrupted after 5 checkpoints (320 runs, past the convergence
        // prefix): the resumed stage re-simulates only runs 320..500.
        for (partial_runs, expect_resumed) in [(320, 320), (64, 0)] {
            let partial = MemoryStageStore::default();
            partial
                .append_samples(0xD1, 0, runs, &reference[..partial_runs])
                .unwrap();
            let resumed = stage_at(&platform, &partial, seed, runs, 64)
                .run(CampaignInput {
                    trace: &trace,
                    prefix: &prefix,
                    runs,
                })
                .unwrap();
            assert_eq!(resumed.sample, reference, "resume must be bit-identical");
            assert_eq!(
                resumed.resumed_runs, expect_resumed,
                "a log shorter than the convergence prefix resumes from the \
                 prefix instead"
            );
            assert_eq!(
                partial.load_samples(0xD1).unwrap(),
                reference,
                "the log is completed by appends, never rewritten"
            );
        }
    }

    #[test]
    fn session_campaign_log_matches_the_sample_and_partial_markers_recompute() {
        let (p, x) = demo_program();
        let cfg = AnalysisConfig::builder()
            .seed(99)
            .quick()
            .threads(2)
            .checkpoint_interval(64)
            .build();
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();
        let cold = AnalysisSession::pub_tac(&p, &input, &cfg)
            .with_store(&store)
            .finish_pub_tac()
            .unwrap();
        let digests = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        let digest = digests.get(StageKind::Campaign).unwrap();
        let logged = store.load_samples(digest).expect("campaign log written");
        assert_eq!(logged, cold.sample, "the log is the sample");

        // A junk completion marker over a complete log: recomputed, and
        // the recomputation costs no simulation (the log covers it all).
        let partial = clone_artifacts(&store, &digests);
        partial.save_stage(digest, &Json::Null).unwrap();
        partial
            .append_samples(digest, 0, cold.sample.len(), &logged)
            .unwrap();
        let mut resumed = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&partial);
        resumed.advance(StageKind::Campaign).unwrap();
        assert_eq!(
            resumed.status(StageKind::Campaign),
            Some(StageStatus::Computed),
            "a junk marker is never a cache hit"
        );
        assert_eq!(resumed.campaign_sample(), Some(cold.sample.as_slice()));
    }

    #[test]
    fn campaign_artifact_is_a_completion_marker_not_the_sample() {
        let (p, x) = demo_program();
        let cfg = quick_cfg(42);
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();
        let mut session = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&store);
        session.advance(StageKind::Campaign).unwrap();
        let sample = session.campaign_sample().unwrap().to_vec();
        let digests = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        let doc = store
            .load_stage(digests.get(StageKind::Campaign).unwrap())
            .unwrap();
        let data = stage_artifact_data(
            &doc,
            StageKind::Campaign,
            digests.get(StageKind::Campaign).unwrap(),
        )
        .unwrap();
        assert_eq!(data.get("runs").unwrap().as_usize(), Some(sample.len()));
        assert_eq!(
            data.get("checksum").unwrap().as_u64(),
            Some(sample_checksum(&sample))
        );
        assert!(
            data.get("sample").is_none(),
            "the sample lives in the chunk log, not the JSON artifact"
        );
    }

    #[test]
    fn short_log_under_a_completion_marker_is_not_a_cache_hit() {
        let (p, x) = demo_program();
        let cfg = quick_cfg(5);
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();
        let cold = AnalysisSession::pub_tac(&p, &input, &cfg)
            .with_store(&store)
            .finish_pub_tac()
            .unwrap();
        let digests = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        let digest = digests.get(StageKind::Campaign).unwrap();

        // Keep every JSON artifact (including the campaign completion
        // marker) but hand the session a log that stops short of it.
        let torn = clone_artifacts(&store, &digests);
        torn.append_samples(
            digest,
            0,
            cold.sample.len(),
            &cold.sample[..cold.sample.len() - 1],
        )
        .unwrap();
        let mut warm = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&torn);
        warm.advance(StageKind::Campaign).unwrap();
        assert_eq!(
            warm.status(StageKind::Campaign),
            Some(StageStatus::Computed),
            "a short log must force re-execution of the tail"
        );
        assert_eq!(warm.campaign_sample(), Some(cold.sample.as_slice()));
    }

    #[test]
    fn forced_campaign_still_streams_its_checkpoints() {
        let (p, x) = demo_program();
        let cfg = quick_cfg(31);
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();
        let cold = AnalysisSession::pub_tac(&p, &input, &cfg)
            .with_store(&store)
            .finish_pub_tac()
            .unwrap();
        let digests = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        let digest = digests.get(StageKind::Campaign).unwrap();
        store.reset_samples(digest).unwrap();

        // Force re-executes without rehydrating — but must still stream
        // the log, or the completion marker it saves would be orphaned
        // and every later warm run a permanent cache miss.
        let mut forced = AnalysisSession::pub_tac(&p, &input, &cfg)
            .with_store(&store)
            .with_force_stage(StageKind::Campaign);
        forced.advance(StageKind::Campaign).unwrap();
        assert_eq!(forced.campaign_resumed_runs(), Some(0), "no rehydration");
        assert_eq!(
            store.load_samples(digest).unwrap(),
            cold.sample,
            "the forced run must regrow the log"
        );
        let mut warm = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&store);
        warm.advance(StageKind::Campaign).unwrap();
        assert_eq!(
            warm.status(StageKind::Campaign),
            Some(StageStatus::Cached),
            "the marker saved by a forced run must stay honorable"
        );
    }

    #[test]
    fn sample_checksum_is_order_and_value_sensitive() {
        assert_eq!(sample_checksum(&[]), sample_checksum(&[]));
        assert_eq!(sample_checksum(&[1, 2, 3]), sample_checksum(&[1, 2, 3]));
        assert_ne!(sample_checksum(&[1, 2, 3]), sample_checksum(&[3, 2, 1]));
        assert_ne!(sample_checksum(&[1, 2, 3]), sample_checksum(&[1, 2]));
        assert_ne!(sample_checksum(&[0]), sample_checksum(&[]));
    }

    #[test]
    fn corrupt_stage_artifact_is_recomputed_not_trusted() {
        let (p, x) = demo_program();
        let cfg = quick_cfg(5);
        let input = Inputs::new().with_var(x, 1);
        let store = MemoryStageStore::default();
        let digests = StageDigests::compute(&p, &input, &cfg, PipelineKind::PubTac);
        // Poison the converge slot with a torn/foreign document.
        store
            .save_stage(
                digests.get(StageKind::Converge).unwrap(),
                &mbcr_json::parse(r#"{"schema": "other/9"}"#).unwrap(),
            )
            .unwrap();
        let mut session = AnalysisSession::pub_tac(&p, &input, &cfg).with_store(&store);
        session.advance(StageKind::Converge).unwrap();
        assert_eq!(
            session.status(StageKind::Converge),
            Some(StageStatus::Computed),
            "a torn artifact must not be a cache hit"
        );
    }

    #[test]
    fn path_coverage_counts_and_roundtrips() {
        let (p, x) = demo_program();
        let inputs = vec![
            Inputs::new().with_var(x, 1),
            Inputs::new().with_var(x, -1),
            Inputs::new().with_var(x, 2),
        ];
        let cov = path_coverage(&p, &inputs, None).unwrap();
        assert!(cov.covered);
        assert_eq!(cov.observed_paths, 2);
        assert!(!cov.saturated);
        assert_eq!(
            PathCoverage::from_json(&cov.to_json()),
            Some(cov),
            "artifact must round-trip"
        );
        // A digest-keyed store caches the artifact.
        let store = MemoryStageStore::default();
        let first = path_coverage(&p, &inputs, Some(&store)).unwrap();
        assert!(store
            .load_stage(path_coverage_digest(&p, &inputs))
            .is_some());
        let second = path_coverage(&p, &inputs, Some(&store)).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn cache_class_rollup_roundtrips_and_caches() {
        let (p, _) = demo_program();
        let g = CacheGeometry::paper_l1();
        let rollup = cache_class(&p, g, g, None).unwrap();
        assert!(rollup.il1.sites > 0, "the demo program fetches code");
        assert!(rollup.dl1.sites > 0, "the demo program loads data");
        assert_eq!(
            rollup.il1.always_hit
                + rollup.il1.always_miss
                + rollup.il1.first_miss
                + rollup.il1.not_classified,
            rollup.il1.sites,
            "classes partition the il1 sites"
        );
        assert_eq!(
            rollup_from_json(&rollup_to_json(&rollup)),
            Some(rollup),
            "artifact must round-trip"
        );
        // A digest-keyed store caches the artifact; a different geometry
        // re-keys it.
        let store = MemoryStageStore::default();
        let first = cache_class(&p, g, g, Some(&store)).unwrap();
        assert!(store.load_stage(cache_class_digest(&p, g, g)).is_some());
        let second = cache_class(&p, g, g, Some(&store)).unwrap();
        assert_eq!(first, second);
        let small = CacheGeometry::new(64, 2, 32).unwrap();
        assert_ne!(
            cache_class_digest(&p, g, g),
            cache_class_digest(&p, small, small)
        );
    }
}
