//! End-to-end exit-code contract of `mbcr lint` and `mbcr paths`: clean
//! benchmarks exit zero, findings and unknown names exit nonzero, and the
//! printed diagnostics carry the stable codes.

use std::process::Command;

fn mbcr(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mbcr"))
        .args(args)
        .output()
        .expect("mbcr binary runs")
}

#[test]
fn lint_all_passes_clean_on_the_shipped_suite() {
    let out = mbcr(&["lint", "--all"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for bench in ["bs", "cnt", "fir", "janne", "crc", "edn", "insertsort"] {
        assert!(
            stdout.contains(&format!("{bench}: ok")),
            "missing {bench} in:\n{stdout}"
        );
    }
}

#[test]
fn lint_unknown_benchmark_exits_nonzero() {
    let out = mbcr(&["lint", "no-such-bench"]);
    assert!(!out.status.success());
}

#[test]
fn lint_without_targets_exits_nonzero() {
    let out = mbcr(&["lint"]);
    assert!(!out.status.success());
}

#[test]
fn paths_reports_the_bs_path_space() {
    let out = mbcr(&["paths", "bs", "--limit", "121"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("121 static paths"), "got:\n{stdout}");
    assert!(stdout.contains("8 distinct path(s)"), "got:\n{stdout}");
    assert!(stdout.contains("enumeration (121 paths)"), "got:\n{stdout}");
}

#[test]
fn paths_handles_saturated_spaces() {
    let out = mbcr(&["paths", "janne"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("> 2^128 (saturated)"), "got:\n{stdout}");
    assert!(stdout.contains("coverage n/a"), "got:\n{stdout}");
}
