//! The job-scheduling state machine shared by every executor.
//!
//! [`JobScheduler`] owns the claim/complete/requeue bookkeeping of one job
//! DAG: which jobs are blocked, ready, leased to a worker, or done. It is
//! deliberately lock-free *state* — no threads, no sockets, no clocks —
//! so the in-process work pool ([`crate::execute_dag`]) and the
//! `mbcr-shard` coordinator drive the exact same transition rules instead
//! of each keeping a private copy of them:
//!
//! * the pool leases jobs to its worker threads and never loses one, so it
//!   only ever claims and completes;
//! * the coordinator additionally revokes leases
//!   ([`JobScheduler::requeue_worker`]) when a worker dies mid-job — the
//!   job returns to the ready queue for the next claimer, and a late
//!   completion from a presumed-dead worker is absorbed idempotently
//!   (first completion wins).
//!
//! Jobs unblock their dependents on *completion*, success or failure
//! alike: a failed stage's dependents still run (and fail or recompute in
//! their own session), which is the engine's long-standing cascade
//! semantics.
//!
//! # Telemetry
//!
//! When `mbcr-obs` collection is on, the scheduler counts claims,
//! completions and requeues, and records how long each job sat in the
//! ready queue before being leased (`mbcr_queue_wait_seconds`). This is a
//! **pure side channel**: the timestamps feed histograms only and never
//! influence a transition, so the "no clocks" design statement above
//! still holds for every scheduling decision.

use std::collections::VecDeque;

/// Where one job is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Waiting on unfinished dependencies.
    Blocked,
    /// All dependencies done; queued for a claimer.
    Ready,
    /// All dependencies done, but withheld from claimers by an external
    /// policy ([`JobScheduler::hold`]) — how a multi-sweep service defers
    /// a job whose content digest another sweep is already executing.
    Held,
    /// Claimed by worker `id` and not yet completed.
    Leased(u64),
    /// Terminally finished (executed, cached or failed — the scheduler
    /// does not distinguish: all three unblock dependents).
    Done,
}

/// The claim/complete/requeue state machine over one dependency graph.
///
/// # Examples
///
/// ```
/// use mbcr_engine::JobScheduler;
///
/// // 0 -> 1 -> 2
/// let mut s = JobScheduler::new(&[vec![], vec![0], vec![1]]);
/// assert_eq!(s.claim(7), Some(0));
/// assert_eq!(s.claim(8), None, "1 and 2 are still blocked");
/// s.complete(0);
/// assert_eq!(s.claim(8), Some(1));
/// // Worker 8 dies: its lease returns to the queue.
/// assert_eq!(s.requeue_worker(8), vec![1]);
/// assert_eq!(s.claim(7), Some(1));
/// s.complete(1);
/// let last = s.claim(7).unwrap();
/// s.complete(last);
/// assert!(s.finished());
/// ```
#[derive(Debug, Clone)]
pub struct JobScheduler {
    dependents: Vec<Vec<usize>>,
    /// Unfinished-dependency counts, parallel to `state`.
    pending: Vec<usize>,
    state: Vec<NodeState>,
    /// Ready-queue of job indices. May hold stale entries for jobs that
    /// were completed while requeued; `claim` skips them lazily.
    ready: VecDeque<usize>,
    /// External hold flags, parallel to `state`: a flagged job parks in
    /// [`NodeState::Held`] instead of [`NodeState::Ready`] when its
    /// dependencies drain, until [`JobScheduler::release`]d.
    held: Vec<bool>,
    remaining: usize,
    /// Telemetry side channel, parallel to `state`: when each job last
    /// entered the ready queue (`mbcr_obs::now_ns`, 0 = never stamped).
    /// Written only while collection is on; never read by a transition.
    ready_at: Vec<u64>,
}

impl JobScheduler {
    /// Builds the scheduler for a graph where `deps[i]` lists the jobs
    /// that must complete before job `i` may be claimed.
    ///
    /// # Panics
    ///
    /// Panics on malformed graphs: out-of-range or self dependencies, or
    /// a dependency cycle — a scheduler over such a graph could never
    /// drain, so the bug is reported at construction.
    #[must_use]
    pub fn new(deps: &[Vec<usize>]) -> Self {
        let n = deps.len();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending = vec![0usize; n];
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                assert!(d < n, "job {i} depends on out-of-range job {d}");
                assert!(d != i, "job {i} depends on itself");
                dependents[d].push(i);
                pending[i] += 1;
            }
        }
        // Kahn pre-check: a cycle would leave the queue spinning forever,
        // so reject it before any work is claimed.
        {
            let mut indegree = pending.clone();
            let mut reachable: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
            let mut seen = 0usize;
            while let Some(i) = reachable.pop_front() {
                seen += 1;
                for &dependent in &dependents[i] {
                    indegree[dependent] -= 1;
                    if indegree[dependent] == 0 {
                        reachable.push_back(dependent);
                    }
                }
            }
            assert!(
                seen == n,
                "dependency cycle: only {seen} of {n} jobs are reachable"
            );
        }
        let mut state = vec![NodeState::Blocked; n];
        let ready: VecDeque<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        for &i in &ready {
            state[i] = NodeState::Ready;
        }
        let mut scheduler = Self {
            dependents,
            pending,
            state,
            ready,
            held: vec![false; n],
            remaining: n,
            ready_at: vec![0; n],
        };
        if mbcr_obs::enabled() {
            let now = mbcr_obs::now_ns();
            for &job in &scheduler.ready {
                scheduler.ready_at[job] = now;
            }
        }
        scheduler
    }

    /// Telemetry: stamps when `job` entered the ready queue.
    fn note_ready(&mut self, job: usize) {
        if mbcr_obs::enabled() {
            self.ready_at[job] = mbcr_obs::now_ns();
        }
    }

    /// Telemetry: counts a successful claim and records `job`'s
    /// ready-queue wait.
    fn note_claimed(&mut self, job: usize) {
        if !mbcr_obs::enabled() {
            return;
        }
        mbcr_obs::count("mbcr_sched_claims_total", &[], 1);
        if self.ready_at[job] != 0 {
            let wait = mbcr_obs::now_ns().saturating_sub(self.ready_at[job]);
            mbcr_obs::observe("mbcr_queue_wait_seconds", &[], wait);
        }
    }

    /// Number of jobs in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the graph has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Jobs not yet completed (leased jobs count as remaining).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether every job has completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.remaining == 0
    }

    /// Leases the oldest ready job to `worker`, or `None` when nothing is
    /// ready (blocked, all leased, or finished).
    pub fn claim(&mut self, worker: u64) -> Option<usize> {
        while let Some(job) = self.ready.pop_front() {
            // Skip stale queue entries: a requeued job may have been
            // completed by its original (presumed-dead) worker since.
            if self.state[job] == NodeState::Ready {
                self.state[job] = NodeState::Leased(worker);
                self.note_claimed(job);
                return Some(job);
            }
        }
        None
    }

    /// Leases the ready job `worker` has the strongest affinity for:
    /// the queued job maximizing `score`, ties broken towards the oldest
    /// (so a constant score degenerates to [`JobScheduler::claim`]).
    /// Used by placement-aware drivers to prefer jobs whose upstream
    /// artifacts a worker already holds. `None` when nothing is ready.
    pub fn claim_preferred(&mut self, worker: u64, score: impl Fn(usize) -> u64) -> Option<usize> {
        // Purge stale entries first (completed or held while queued) so
        // repeated preference scans stay linear in live work.
        let state = &self.state;
        self.ready.retain(|&job| state[job] == NodeState::Ready);
        let mut best: Option<(u64, usize)> = None;
        for (pos, &job) in self.ready.iter().enumerate() {
            let s = score(job);
            if best.is_none_or(|(top, _)| s > top) {
                best = Some((s, pos));
            }
        }
        let (_, pos) = best?;
        let job = self.ready.remove(pos).expect("position is in range");
        self.state[job] = NodeState::Leased(worker);
        self.note_claimed(job);
        Some(job)
    }

    /// Jobs currently claimable (ready and queued, not held or leased).
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s == NodeState::Ready)
            .count()
    }

    /// Jobs currently leased out.
    #[must_use]
    pub fn leased_count(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, NodeState::Leased(_)))
            .count()
    }

    /// Marks `job` terminally complete, releasing its lease and
    /// unblocking dependents; returns how many became ready. Idempotent:
    /// completing an already-done job (a duplicate report from a
    /// presumed-dead worker) is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range or still blocked — completing work
    /// that was never runnable is a driver bug, not a race.
    pub fn complete(&mut self, job: usize) -> usize {
        match self.state[job] {
            NodeState::Done => return 0,
            NodeState::Blocked => panic!("job {job} completed while still blocked"),
            NodeState::Ready | NodeState::Held | NodeState::Leased(_) => {}
        }
        self.state[job] = NodeState::Done;
        self.remaining -= 1;
        mbcr_obs::count("mbcr_sched_completions_total", &[], 1);
        let mut unblocked = 0usize;
        for at in 0..self.dependents[job].len() {
            let dependent = self.dependents[job][at];
            self.pending[dependent] -= 1;
            if self.pending[dependent] == 0 {
                if self.held[dependent] {
                    self.state[dependent] = NodeState::Held;
                } else {
                    self.state[dependent] = NodeState::Ready;
                    self.ready.push_back(dependent);
                    self.note_ready(dependent);
                }
                unblocked += 1;
            }
        }
        unblocked
    }

    /// Withholds `job` from claimers even once its dependencies drain —
    /// it parks in a held state until [`JobScheduler::release`]. Used by
    /// the multi-sweep service to defer a job whose content digest an
    /// earlier sweep is already executing: when the owner completes, the
    /// released job cache-probes the shared store instead of recomputing.
    /// No-op on completed or leased jobs (too late to withhold).
    pub fn hold(&mut self, job: usize) {
        match self.state[job] {
            NodeState::Done | NodeState::Leased(_) => {}
            NodeState::Blocked | NodeState::Held => self.held[job] = true,
            NodeState::Ready => {
                self.held[job] = true;
                // Any ready-queue entry goes stale; `claim` skips it.
                self.state[job] = NodeState::Held;
            }
        }
    }

    /// Clears a hold: a parked job returns to the back of the ready
    /// queue; a still-blocked one will queue normally when its
    /// dependencies drain. No-op on jobs never held.
    pub fn release(&mut self, job: usize) {
        self.held[job] = false;
        if self.state[job] == NodeState::Held {
            self.state[job] = NodeState::Ready;
            self.ready.push_back(job);
            self.note_ready(job);
        }
    }

    /// Returns a leased job to the front of the ready queue (the claimer
    /// died or gave it back). No-op unless the job is currently leased.
    pub fn requeue(&mut self, job: usize) {
        if let NodeState::Leased(_) = self.state[job] {
            self.state[job] = NodeState::Ready;
            self.ready.push_front(job);
            self.note_ready(job);
            mbcr_obs::count("mbcr_sched_requeues_total", &[], 1);
        }
    }

    /// Revokes every lease held by `worker` (it died or was declared
    /// dead), returning the requeued jobs in index order.
    pub fn requeue_worker(&mut self, worker: u64) -> Vec<usize> {
        let held: Vec<usize> = (0..self.state.len())
            .filter(|&i| self.state[i] == NodeState::Leased(worker))
            .collect();
        // Front-pushed in reverse so the queue front ends up in index
        // order — requeued work runs before fresh work, oldest first.
        for &job in held.iter().rev() {
            self.requeue(job);
        }
        held
    }

    /// Whether `job` still waits on unfinished dependencies. Completing
    /// a blocked job panics, so drivers fed by untrusted peers (the shard
    /// coordinator) check this first and drop the peer instead.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn is_blocked(&self, job: usize) -> bool {
        self.state[job] == NodeState::Blocked
    }

    /// The jobs currently leased, with their holders, in index order.
    #[must_use]
    pub fn leased(&self) -> Vec<(usize, u64)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                NodeState::Leased(w) => Some((i, *w)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_a_chain_in_topological_order() {
        let mut s = JobScheduler::new(&[vec![1], vec![], vec![0]]); // 1 -> 0 -> 2
        let mut order = Vec::new();
        while let Some(job) = s.claim(0) {
            order.push(job);
            s.complete(job);
        }
        assert_eq!(order, vec![1, 0, 2]);
        assert!(s.finished());
    }

    #[test]
    fn claim_returns_none_while_everything_runnable_is_leased() {
        let mut s = JobScheduler::new(&[vec![], vec![0]]);
        assert_eq!(s.claim(1), Some(0));
        assert_eq!(s.claim(2), None, "job 1 still blocked on the lease");
        assert!(!s.finished());
        assert_eq!(s.complete(0), 1);
        assert_eq!(s.claim(2), Some(1));
    }

    #[test]
    fn dead_worker_leases_requeue_and_rerun() {
        let mut s = JobScheduler::new(&[vec![], vec![], vec![0, 1]]);
        assert_eq!(s.claim(7), Some(0));
        assert_eq!(s.claim(7), Some(1));
        assert_eq!(s.leased(), vec![(0, 7), (1, 7)]);
        // Worker 7 dies holding both.
        assert_eq!(s.requeue_worker(7), vec![0, 1]);
        assert!(s.leased().is_empty());
        // A new worker picks them back up; job 2 unblocks as usual.
        assert_eq!(s.claim(8), Some(0));
        s.complete(0);
        assert_eq!(s.claim(8), Some(1));
        s.complete(1);
        assert_eq!(s.claim(8), Some(2));
        s.complete(2);
        assert!(s.finished());
    }

    #[test]
    fn late_completion_from_a_presumed_dead_worker_is_absorbed() {
        let mut s = JobScheduler::new(&[vec![], vec![0]]);
        assert_eq!(s.claim(7), Some(0));
        s.requeue_worker(7); // declared dead...
        s.complete(0); // ...but its report still arrives first
        assert_eq!(s.remaining(), 1);
        // The stale ready-queue entry must not hand the job out again.
        assert_eq!(s.claim(8), Some(1), "only the dependent is claimable");
        assert_eq!(s.complete(0), 0, "duplicate completion is a no-op");
        s.complete(1);
        assert!(s.finished());
    }

    #[test]
    fn requeue_is_a_noop_for_unleased_jobs() {
        let mut s = JobScheduler::new(&[vec![], vec![0]]);
        s.requeue(0); // ready, not leased
        assert_eq!(s.claim(1), Some(0));
        s.complete(0);
        s.requeue(0); // done
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.claim(1), Some(1));
    }

    #[test]
    fn held_jobs_skip_the_ready_queue_until_released() {
        // 0 -> 2, 1 free; 2 held before its dependency drains.
        let mut s = JobScheduler::new(&[vec![], vec![], vec![0]]);
        s.hold(2);
        assert_eq!(s.claim(1), Some(0));
        s.complete(0);
        // 2's dependencies are drained, but it parks instead of queueing.
        assert_eq!(s.claim(1), Some(1));
        s.complete(1);
        assert_eq!(s.claim(1), None, "held job must not be claimable");
        assert!(!s.finished());
        s.release(2);
        assert_eq!(s.claim(1), Some(2));
        s.complete(2);
        assert!(s.finished());
    }

    #[test]
    fn holding_a_ready_job_parks_it_and_stale_queue_entries_are_skipped() {
        let mut s = JobScheduler::new(&[vec![], vec![]]);
        s.hold(0); // already ready: parked, its queue entry goes stale
        assert_eq!(s.claim(1), Some(1), "only the unheld job is claimable");
        assert_eq!(s.claim(1), None);
        s.release(0);
        assert_eq!(s.claim(1), Some(0));
        // Completing a held job directly (e.g. a cancel path) is legal.
        let mut t = JobScheduler::new(&[vec![]]);
        t.hold(0);
        t.complete(0);
        assert!(t.finished());
        // hold/release on done jobs are no-ops.
        t.hold(0);
        t.release(0);
        assert!(t.finished());
    }

    #[test]
    fn claim_preferred_picks_the_highest_score_and_breaks_ties_oldest_first() {
        let mut s = JobScheduler::new(&[vec![], vec![], vec![]]);
        assert_eq!(s.ready_count(), 3);
        // Highest score wins regardless of queue age...
        assert_eq!(s.claim_preferred(7, |job| job as u64), Some(2));
        assert_eq!(s.leased_count(), 1);
        // ...and a constant score degenerates to oldest-first.
        assert_eq!(s.claim_preferred(7, |_| 0), Some(0));
        assert_eq!(s.claim_preferred(7, |_| 0), Some(1));
        assert_eq!(s.claim_preferred(7, |_| 0), None);
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.leased_count(), 3);
    }

    #[test]
    fn claim_preferred_skips_stale_and_held_entries() {
        let mut s = JobScheduler::new(&[vec![], vec![], vec![]]);
        s.hold(2); // would otherwise score highest
        assert_eq!(s.claim_preferred(1, |job| job as u64), Some(1));
        // A requeued-then-completed job leaves a stale queue entry.
        assert_eq!(s.claim(1), Some(0));
        s.requeue(0);
        s.complete(0);
        assert_eq!(s.claim_preferred(1, |job| job as u64), None);
        s.release(2);
        assert_eq!(s.claim_preferred(1, |job| job as u64), Some(2));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn rejects_out_of_range_dependency() {
        let _ = JobScheduler::new(&[vec![5]]);
    }

    #[test]
    #[should_panic(expected = "depends on itself")]
    fn rejects_self_dependency() {
        let _ = JobScheduler::new(&[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn rejects_cycles() {
        let _ = JobScheduler::new(&[vec![1], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "completed while still blocked")]
    fn rejects_completing_blocked_jobs() {
        let mut s = JobScheduler::new(&[vec![], vec![0]]);
        s.complete(1);
    }
}
