//! # mbcr-engine — batch analysis engine for PUB + TAC + MBPTA campaigns
//!
//! The paper's evaluation (Tables 1–2, Figures 2–5) is a *batch*: many
//! benchmarks × inputs × cache geometries × seeds, each cell running the
//! one-shot pipeline from [`mbcr`]. This crate turns that batch into a
//! first-class, resumable system:
//!
//! * [`SweepSpec`] — a declarative, JSON-round-trippable campaign
//!   description;
//! * [`expand`] — spec → stage-granular job DAG ([`JobGraph`]): one node
//!   per pipeline stage (`mbcr::stage`), deduplicated by content digest,
//!   with real data dependencies — campaign nodes wait on their converge
//!   and TAC nodes, multipath Corollary 2 combinations on their cell's
//!   per-input fit nodes. Long campaigns therefore overlap TAC discovery
//!   of later cells;
//! * [`execute_dag`] — a work-stealing thread pool executing the DAG;
//! * [`ArtifactStore`] — a content-addressed run directory (manifest,
//!   per-job JSON, sample CSVs, Table 2 CSV, per-stage artifacts). Stage
//!   digests hash exactly the knobs each stage consumes, so a warm re-run
//!   resumes mid-analysis: after a `max_campaign_runs` change only the
//!   campaign and fit stages re-execute;
//! * [`run_sweep`] — the end-to-end driver, with per-analysis seeds
//!   derived deterministically via [`mbcr_rng::derive_seed`] so results
//!   are bit-identical at any thread count or scheduling order.
//!
//! The `mbcr` binary in this crate exposes it all on the command line
//! (`analyze`, `sweep`, `report`, `list-benchmarks`).
//!
//! # Examples
//!
//! ```no_run
//! use mbcr_engine::{run_sweep, ArtifactStore, Registry, RunOptions, SweepSpec};
//!
//! let spec = SweepSpec::new("demo").benchmarks(["bs", "cnt"]);
//! let store = ArtifactStore::open("mbcr-runs/demo")?;
//! let outcome = run_sweep(&spec, &Registry::malardalen(), &store, &RunOptions::default())?;
//! println!("{} executed, {} cached", outcome.executed, outcome.skipped);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

mod job;
mod pool;
mod registry;
mod sched;
mod service;
mod spec;
mod store;
mod sweep;

pub use job::{JobGraph, JobKind, JobSpec, JobSummary, SCHEMA};
pub use mbcr::stage::{StageKind, StageStatus, StageStore};
pub use pool::{execute_dag, execute_dag_prioritized};
pub use registry::Registry;
pub use sched::JobScheduler;
pub use service::{
    campaign_progress_for, RegistryMetrics, ServiceClaim, SubmitOptions, SweepMetrics,
    SweepRegistry, SweepSnapshot, SweepState, SweepStatus,
};
pub use spec::{AnalysisKind, AnalysisKnobs, GeometrySpec, InputSelection, SweepSpec};
pub use store::{
    ArtifactStore, CampaignProgress, MergeStats, SampleLog, SampleLogContents, Table2Row,
};
pub use sweep::{
    aggregate_rows, execute_combine, execute_stage, expand, finalize_sweep, render_rows, run_sweep,
    JobRecord, JobStatus, RunOptions, StageOutcome, SweepOutcome, SweepPlan,
};

/// Any failure of the batch engine.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem failure in the artifact store.
    Io(std::io::Error),
    /// A spec, manifest or artifact did not parse as JSON.
    Parse(mbcr_json::ParseError),
    /// The spec is malformed (bad geometry, empty dimension, …).
    Spec(String),
    /// A benchmark name did not resolve against the registry.
    UnknownBenchmark(String),
    /// An input-vector name did not resolve against its benchmark.
    UnknownInput {
        /// The benchmark searched.
        benchmark: String,
        /// The missing vector name.
        input: String,
    },
    /// The underlying analysis failed for one job.
    Analysis(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "artifact store I/O failed: {e}"),
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Spec(message) => write!(f, "invalid sweep spec: {message}"),
            EngineError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark '{name}' (see `mbcr list-benchmarks`)")
            }
            EngineError::UnknownInput { benchmark, input } => {
                write!(f, "benchmark '{benchmark}' has no input vector '{input}'")
            }
            EngineError::Analysis(message) => write!(f, "analysis failed: {message}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            EngineError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<mbcr_json::ParseError> for EngineError {
    fn from(e: mbcr_json::ParseError) -> Self {
        EngineError::Parse(e)
    }
}
