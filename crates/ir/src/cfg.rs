//! Explicit control-flow graph, lowered from the structured AST.
//!
//! The IR's statement tree is fully structured (no `goto`), so the classic
//! CFG analyses could be read off syntactically — but the static-analysis
//! layer deliberately goes through an explicit basic-block graph: the
//! dominator/natural-loop machinery in [`crate::analysis`] then *validates*
//! the structural assumptions (every loop is natural and single-headed,
//! every block reachable) instead of assuming them, and the Ball-Larus path
//! numbering in [`crate::blpath`] is defined over this graph.
//!
//! Lowering mirrors [`crate::layout_program`]:
//!
//! * straight-line statements accumulate into the current block
//!   (instruction counts use [`Stmt::own_instr_count`]);
//! * an `if` terminates the block with a [`Terminator::Branch`] (the
//!   condition's instructions belong to that block, like the layouter's
//!   header span) and introduces then/else chains plus a join block;
//! * a loop gets a dedicated header block holding the per-check
//!   instructions, terminated by [`Terminator::LoopHead`]; the body chain
//!   jumps back to the header (the one back edge of the loop);
//! * conditionals and loops receive the same pre-order construct ids the
//!   layouter assigns, so CFG nodes, [`crate::PathRecord`] decisions and
//!   layout spans all share one numbering.

use std::fmt;

use crate::program::Program;
use crate::stmt::Stmt;

/// Index of a basic block in its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional fall-through.
    Jump(BlockId),
    /// Two-way conditional branch (an `if` header).
    Branch {
        /// Pre-order construct id (shared with [`crate::layout_program`]).
        construct: u32,
        /// Successor when the condition is non-zero.
        then_to: BlockId,
        /// Successor when the condition is zero.
        else_to: BlockId,
    },
    /// Loop header check (a `while`/`for` header). The edge back into this
    /// block from the body's last block is the loop's back edge.
    LoopHead {
        /// Pre-order construct id.
        construct: u32,
        /// Successor when the loop runs another iteration.
        body: BlockId,
        /// Successor when the loop exits.
        exit: BlockId,
    },
    /// Program exit.
    Return,
}

impl Terminator {
    /// Successors in decision order (taken/body first).
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch {
                then_to, else_to, ..
            } => vec![then_to, else_to],
            Terminator::LoopHead { body, exit, .. } => vec![body, exit],
            Terminator::Return => vec![],
        }
    }
}

/// One basic block: a run of straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line instruction count accumulated in this block (loop
    /// headers carry their per-check instructions; see module docs).
    pub instrs: u32,
    /// How control leaves the block.
    pub term: Terminator,
}

/// The control-flow graph of a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<Block>,
    entry: BlockId,
    exit: BlockId,
    construct_count: u32,
}

impl Cfg {
    /// Lowers a program's statement tree to its control-flow graph.
    #[must_use]
    pub fn of(program: &Program) -> Cfg {
        let mut lw = Lowerer {
            blocks: Vec::new(),
            next_construct: 0,
        };
        let entry = lw.new_block();
        let out = lw.lower_seq(program.body(), entry);
        lw.blocks[out.idx()].term = Terminator::Return;
        Cfg {
            blocks: lw.blocks,
            entry,
            exit: out,
            construct_count: lw.next_construct,
        }
    }

    /// The basic blocks, indexed by [`BlockId`].
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the graph has no blocks (never produced by
    /// [`Cfg::of`], which always emits an entry block).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The exit block (terminated by [`Terminator::Return`]).
    #[must_use]
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Number of conditionals and loops (= assigned construct ids), equal
    /// to [`crate::Layout::construct_count`] for the same program.
    #[must_use]
    pub fn construct_count(&self) -> u32 {
        self.construct_count
    }

    /// Successors of `b` in decision order.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.blocks[b.idx()].term.successors()
    }

    /// Predecessor lists for every block.
    #[must_use]
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.idx()].push(BlockId(i as u32));
            }
        }
        preds
    }
}

struct Lowerer {
    blocks: Vec<Block>,
    next_construct: u32,
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            instrs: 0,
            term: Terminator::Return,
        });
        id
    }

    fn take_construct(&mut self) -> u32 {
        let id = self.next_construct;
        self.next_construct += 1;
        id
    }

    /// Lowers a statement sequence starting in `cur`; returns the
    /// (unterminated) block control flows out of.
    fn lower_seq(&mut self, stmts: &[Stmt], mut cur: BlockId) -> BlockId {
        for s in stmts {
            match s {
                Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {
                    self.blocks[cur.idx()].instrs += s.own_instr_count();
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let construct = self.take_construct();
                    self.blocks[cur.idx()].instrs += s.own_instr_count();
                    let then_to = self.new_block();
                    let then_out = self.lower_seq(then_branch, then_to);
                    let else_to = self.new_block();
                    let else_out = self.lower_seq(else_branch, else_to);
                    self.blocks[cur.idx()].term = Terminator::Branch {
                        construct,
                        then_to,
                        else_to,
                    };
                    let join = self.new_block();
                    self.blocks[then_out.idx()].term = Terminator::Jump(join);
                    self.blocks[else_out.idx()].term = Terminator::Jump(join);
                    cur = join;
                }
                Stmt::While { body, .. } => {
                    let construct = self.take_construct();
                    let header = self.new_block();
                    self.blocks[header.idx()].instrs = s.own_instr_count();
                    self.blocks[cur.idx()].term = Terminator::Jump(header);
                    let body_entry = self.new_block();
                    let body_out = self.lower_seq(body, body_entry);
                    // Back edge.
                    self.blocks[body_out.idx()].term = Terminator::Jump(header);
                    let exit = self.new_block();
                    self.blocks[header.idx()].term = Terminator::LoopHead {
                        construct,
                        body: body_entry,
                        exit,
                    };
                    cur = exit;
                }
                Stmt::For { body, .. } => {
                    let construct = self.take_construct();
                    // Bounds evaluation belongs to the preceding block,
                    // like the layouter's `init` span.
                    self.blocks[cur.idx()].instrs += s.own_instr_count();
                    let header = self.new_block();
                    // Per-iteration compare/increment, like the `iter` span.
                    self.blocks[header.idx()].instrs = 2;
                    self.blocks[cur.idx()].term = Terminator::Jump(header);
                    let body_entry = self.new_block();
                    let body_out = self.lower_seq(body, body_entry);
                    self.blocks[body_out.idx()].term = Terminator::Jump(header);
                    let exit = self.new_block();
                    self.blocks[header.idx()].term = Terminator::LoopHead {
                        construct,
                        body: body_entry,
                        exit,
                    };
                    cur = exit;
                }
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::layout::layout_program;
    use crate::program::ProgramBuilder;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, c(1)));
        b.push(Stmt::Assign(x, Expr::var(x).add(c(1))));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.entry(), cfg.exit());
        assert_eq!(cfg.blocks()[0].term, Terminator::Return);
        assert_eq!(cfg.blocks()[0].instrs, 2 + 3);
        assert_eq!(cfg.construct_count(), 0);
    }

    #[test]
    fn if_produces_diamond() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(x, c(1))],
            vec![Stmt::Assign(x, c(2))],
        ));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        // entry, then, else, join.
        assert_eq!(cfg.len(), 4);
        let Terminator::Branch {
            construct,
            then_to,
            else_to,
        } = cfg.blocks()[cfg.entry().idx()].term
        else {
            panic!("branch terminator expected");
        };
        assert_eq!(construct, 0);
        assert_eq!(cfg.succs(then_to), vec![cfg.exit()]);
        assert_eq!(cfg.succs(else_to), vec![cfg.exit()]);
        let preds = cfg.preds();
        assert_eq!(preds[cfg.exit().idx()].len(), 2);
    }

    #[test]
    fn while_produces_back_edge() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(3)),
            3,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        // entry, header, body, exit.
        assert_eq!(cfg.len(), 4);
        let header = match cfg.blocks()[cfg.entry().idx()].term {
            Terminator::Jump(h) => h,
            ref t => panic!("jump to header expected, got {t:?}"),
        };
        let Terminator::LoopHead {
            construct,
            body,
            exit,
        } = cfg.blocks()[header.idx()].term
        else {
            panic!("loop head expected");
        };
        assert_eq!(construct, 0);
        assert_eq!(exit, cfg.exit());
        assert_eq!(cfg.succs(body), vec![header], "body jumps back to header");
    }

    #[test]
    fn construct_ids_match_layout_preorder() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(x).lt(c(2)),
            2,
            vec![Stmt::if_(
                Expr::var(x).gt(c(0)),
                vec![Stmt::for_(i, c(0), c(2), 2, vec![Stmt::Nop { count: 1 }])],
                vec![],
            )],
        ));
        b.push(Stmt::if_(Expr::var(x).gt(c(1)), vec![], vec![]));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        let layout = layout_program(&p);
        assert_eq!(cfg.construct_count(), layout.construct_count);
        // Collect CFG construct ids in block order; they must be exactly
        // 0..construct_count (pre-order assignment).
        let mut ids: Vec<u32> =
            cfg.blocks()
                .iter()
                .filter_map(|blk| match blk.term {
                    Terminator::Branch { construct, .. }
                    | Terminator::LoopHead { construct, .. } => Some(construct),
                    _ => None,
                })
                .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..layout.construct_count).collect::<Vec<_>>());
    }

    #[test]
    fn for_init_stays_in_predecessor_block() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let x = b.var("x");
        b.push(Stmt::Assign(x, c(1)));
        b.push(Stmt::for_(i, c(0), c(4), 4, vec![Stmt::Nop { count: 1 }]));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        // x=1 (2 instrs) + for init (li+li+set = 3 instrs) share the entry.
        assert_eq!(cfg.blocks()[cfg.entry().idx()].instrs, 5);
        let header = cfg.succs(cfg.entry())[0];
        assert_eq!(cfg.blocks()[header.idx()].instrs, 2);
    }
}
