//! # mbcr — Measurement-Based Cache Representativeness on Multipath Programs
//!
//! A library implementation of Milutinovic, Abella, Mezzetti & Cazorla,
//! *"Measurement-Based Cache Representativeness on Multipath Programs"*
//! (DAC 2018): the first method achieving **full path coverage** and
//! **cache-layout representativeness** simultaneously in measurement-based
//! probabilistic timing analysis (MBPTA).
//!
//! The pipeline (paper Figure 3):
//!
//! ```text
//! P_orig ──PUB──▶ P_pub ──execute(input v_j)──▶ address sequence M_pub^j
//!                                                      │
//!                                              TAC ────┴──▶ R_pub+tac
//!                                                      │
//!                    R randomized measurement runs ◀───┘
//!                                │
//!                            MBPTA (EVT) ──▶ pWCET upper-bounding *all*
//!                                            paths under *all* relevant
//!                                            cache layouts
//! ```
//!
//! * [`analyze_original`] — the baseline: plain MBPTA on one path of the
//!   original program;
//! * [`analyze_pub_tac`] — the paper's contribution: PUB + TAC + MBPTA on a
//!   pubbed path;
//! * [`analyze_multipath`] — several pubbed paths combined per Corollary 2
//!   (the per-exceedance minimum, trading analysis cost for tightness).
//!
//! All three are thin wrappers over the **stage graph** in [`stage`]: the
//! pipeline decomposed into typed, digest-keyed, resumable stages
//! (PUB → trace → TAC per cache → convergence → campaign → fit) driven by
//! [`stage::AnalysisSession`]. Batch drivers schedule and cache at stage
//! granularity; the wrappers and the staged path are bit-identical.
//!
//! The substrate crates are re-exported under [`prelude`] and as modules:
//! the time-randomized cache simulator (`mbcr-cache`), the in-order CPU
//! timing model (`mbcr-cpu`), the program IR (`mbcr-ir`), PUB (`mbcr-pub`),
//! TAC (`mbcr-tac`) and the EVT statistics (`mbcr-evt`).
//!
//! # Examples
//!
//! ```
//! use mbcr::prelude::*;
//! use mbcr_ir::{Expr, ProgramBuilder, Stmt};
//!
//! // A toy two-path program…
//! let mut b = ProgramBuilder::new("toy");
//! let table = b.array("table", 64);
//! let (x, y, i) = (b.var("x"), b.var("y"), b.var("i"));
//! b.push(Stmt::for_(i, Expr::c(0), Expr::c(16), 16, vec![
//!     Stmt::Assign(y, Expr::var(y).add(Expr::load(table, Expr::var(i).mul(Expr::c(4))))),
//! ]));
//! b.push(Stmt::if_(
//!     Expr::var(x).gt(Expr::c(0)),
//!     vec![Stmt::Assign(y, Expr::load(table, Expr::c(0)))],
//!     vec![],
//! ));
//! let program = b.build()?;
//!
//! // …analysed with the full PUB + TAC + MBPTA pipeline.
//! let cfg = AnalysisConfig::builder().seed(1).quick().build();
//! let analysis = analyze_pub_tac(&program, &Inputs::new().with_var(x, 1), &cfg).unwrap();
//! assert!(analysis.pwcet_pub_tac >= analysis.sample.iter().copied().max().unwrap() as f64 * 0.9);
//! # Ok::<(), mbcr_ir::ProgramError>(())
//! ```

mod config;
mod error;
mod pipeline;
mod report;
pub mod stage;

pub use config::{AnalysisConfig, AnalysisConfigBuilder, TacTuning};
pub use error::AnalyzeError;
pub use pipeline::{
    analyze_multipath, analyze_original, analyze_pub_tac, MultipathAnalysis, OriginalAnalysis,
    PubTacAnalysis,
};
pub use report::{render_curve, render_report};
pub use stage::{
    campaign_runs_for, AnalysisSession, AnalysisStage, PipelineKind, StageDigests, StageKind,
    StageStatus, StageStore,
};

/// One-stop imports for the typical analysis session.
pub mod prelude {
    pub use crate::{
        analyze_multipath, analyze_original, analyze_pub_tac, AnalysisConfig, AnalyzeError,
        MultipathAnalysis, OriginalAnalysis, PubTacAnalysis, TacTuning,
    };
    pub use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
    pub use mbcr_cpu::{
        campaign, campaign_parallel, campaign_with, LatencyConfig, Parallelism, Platform,
        PlatformConfig,
    };
    pub use mbcr_evt::{ConvergenceConfig, Dither, Eccdf, FitMethod, Pwcet, TailConfig};
    pub use mbcr_ir::{execute, Expr, Inputs, Program, ProgramBuilder, Stmt};
    pub use mbcr_pub::{pub_transform, PubConfig};
    pub use mbcr_tac::{analyze_lines as tac_analyze_lines, TacConfig};
}
