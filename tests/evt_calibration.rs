//! Calibration of the MBPTA statistics against the simulated platform:
//! does the fitted pWCET actually upper-bound what very long campaigns
//! observe, without being absurdly pessimistic?

use mbcr::prelude::*;
use mbcr_cpu::campaign_parallel;
use mbcr_ir::execute;
use mbcr_pub::pub_transform;

fn fit(sample: &[u64]) -> Pwcet {
    Pwcet::fit(
        sample,
        FitMethod::ExpTailCv,
        &TailConfig::default(),
        Dither::Uniform { seed: 3 },
    )
    .expect("fit")
}

/// The central calibration: fit on a TAC-sized prefix, validate against a
/// 10x longer campaign. The pWCET at the long campaign's resolution must
/// cover its empirical quantiles.
#[test]
fn fitted_pwcet_covers_long_run_quantiles() {
    let platform = PlatformConfig::paper_default();
    let b = mbcr_malardalen::bs::benchmark();
    let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
    let trace = execute(&pubbed.program, &b.default_input)
        .expect("run")
        .trace;

    let long = campaign_parallel(&platform, &trace, 120_000, 0xCAFE, 4);
    let pwcet = fit(&long[..20_000]);
    let reference = Eccdf::from_u64(&long);

    for p in [1e-2, 1e-3, 1e-4, 3e-5] {
        let bound = pwcet.quantile(p);
        let observed = reference.quantile(p);
        assert!(
            bound >= observed * 0.98,
            "p={p}: bound {bound:.0} vs observed {observed:.0}"
        );
        assert!(
            bound <= observed * 3.0,
            "p={p}: bound {bound:.0} is absurdly pessimistic vs {observed:.0}"
        );
    }
}

/// Exceedance coverage: the modelled exceedance probability of the observed
/// maximum must not be wildly optimistic (no "this can't happen" verdicts
/// about things that did happen).
#[test]
fn observed_extremes_are_not_ruled_out() {
    let platform = PlatformConfig::paper_default();
    let b = mbcr_malardalen::janne::benchmark();
    let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
    let trace = execute(&pubbed.program, &b.default_input)
        .expect("run")
        .trace;

    let sample = campaign_parallel(&platform, &trace, 50_000, 0xBEEF, 4);
    let pwcet = fit(&sample[..10_000]);
    let max = *sample.iter().max().expect("non-empty") as f64;
    // The max of 50k draws sits around the 1/50k quantile; a sound model
    // must give it an exceedance probability not far below that.
    let modelled = pwcet.exceedance(max);
    assert!(
        modelled > 1e-9,
        "modelled exceedance {modelled:e} for an event observed in 50k runs"
    );
}

/// The i.i.d. tests accept genuine platform campaigns across benchmarks.
#[test]
fn platform_campaigns_are_iid() {
    let platform = PlatformConfig::paper_default();
    for name in ["bs", "cnt", "matmult"] {
        let b = mbcr_malardalen::by_name(name).expect("bench");
        let trace = execute(&b.program, &b.default_input).expect("run").trace;
        let sample = campaign_parallel(&platform, &trace, 3_000, 0xD0, 4);
        let float: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        let report = mbcr_evt::IidReport::evaluate(&float);
        assert!(
            report.passed(0.001),
            "{name}: ks={:.4} lb={:.4} runs={:.4}",
            report.ks.p_value,
            report.ljung_box.p_value,
            report.runs.p_value
        );
    }
}

/// The paper's central motivation, as a statistical test: pWCET estimates
/// from *convergence-sized* campaigns are seed-unstable on conflictive
/// workloads (the campaign may or may not catch the rare damaging layouts),
/// while estimates from *TAC-sized* campaigns are reproducible across
/// seeds.
#[test]
fn tac_sized_campaigns_stabilize_the_estimate() {
    let platform = PlatformConfig::paper_default();
    let b = mbcr_malardalen::cnt::benchmark();
    let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
    let trace = execute(&pubbed.program, &b.default_input)
        .expect("run")
        .trace;

    // TAC requirement for this trace (cnt: ~9k runs, see Table 2).
    let tac = mbcr_tac::analyze_lines(&trace.instr_lines(32), &mbcr_tac::TacConfig::paper_l1());
    let r_tac = usize::try_from(tac.runs_required)
        .unwrap_or(usize::MAX)
        .clamp(2_000, 40_000);

    let estimate = |seed: u64, runs: usize| {
        let sample = campaign_parallel(&platform, &trace, runs, seed, 4);
        fit(&sample).quantile(1e-6)
    };

    let seeds = [111u64, 222, 333, 444];
    let spread = |runs: usize| {
        let qs: Vec<f64> = seeds.iter().map(|&s| estimate(s, runs)).collect();
        let lo = qs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = qs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / hi
    };

    let small = spread(700); // convergence-scale campaign
    let large = spread(r_tac); // TAC-scale campaign
    assert!(
        large <= small,
        "TAC-sized campaigns must not be less stable: small-spread {small:.2}, \
         large-spread {large:.2}"
    );
    assert!(
        large < 0.40,
        "TAC-sized campaigns should agree across seeds: spread {large:.2}"
    );
}
