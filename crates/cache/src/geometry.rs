//! Cache geometry: size, associativity, line size.

use std::fmt;

/// Error constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A parameter was zero.
    Zero(&'static str),
    /// `size / (ways * line_size)` is not a positive power of two.
    InvalidSetCount {
        /// The computed (possibly fractional) set count numerator.
        size: u64,
        /// ways * line_size.
        way_bytes: u64,
    },
    /// A parameter is not a power of two.
    NotPowerOfTwo(&'static str, u64),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Zero(what) => write!(f, "{what} must be positive"),
            GeometryError::InvalidSetCount { size, way_bytes } => write!(
                f,
                "cache size {size} is not a power-of-two multiple of ways*line_size = {way_bytes}"
            ),
            GeometryError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} ({v}) must be a power of two")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Geometry of a set-associative cache.
///
/// The paper's L1 caches are 4 KB, 2-way, 32 B lines → 64 sets
/// ([`CacheGeometry::paper_l1`]); its Section 3.1 worked examples use
/// S = 8 sets and W = 4 ways ([`CacheGeometry::paper_example`]).
///
/// # Examples
///
/// ```
/// use mbcr_cache::CacheGeometry;
/// let g = CacheGeometry::paper_l1();
/// assert_eq!((g.sets(), g.ways(), g.line_size()), (64, 2, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
    line_size: u64,
    sets: u64,
}

impl CacheGeometry {
    /// Creates a geometry after validating that all parameters are positive
    /// powers of two and that the set count is integral.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if a parameter is zero or not a power of
    /// two, or if `size_bytes` is not `sets * ways * line_size` for a
    /// power-of-two `sets`.
    pub fn new(size_bytes: u64, ways: u32, line_size: u64) -> Result<Self, GeometryError> {
        if size_bytes == 0 {
            return Err(GeometryError::Zero("size_bytes"));
        }
        if ways == 0 {
            return Err(GeometryError::Zero("ways"));
        }
        if line_size == 0 {
            return Err(GeometryError::Zero("line_size"));
        }
        if !line_size.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("line_size", line_size));
        }
        let way_bytes = u64::from(ways) * line_size;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(GeometryError::InvalidSetCount {
                size: size_bytes,
                way_bytes,
            });
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("sets", sets));
        }
        Ok(Self {
            size_bytes,
            ways,
            line_size,
            sets,
        })
    }

    /// The L1 geometry of the paper's evaluation platform: 4 KB, 2-way,
    /// 32 B lines (64 sets).
    #[must_use]
    pub fn paper_l1() -> Self {
        Self::new(4096, 2, 32).expect("paper L1 geometry is valid")
    }

    /// The geometry of the paper's Section 3.1 worked examples: S = 8 sets,
    /// W = 4 ways (line size 32 B → 1 KB).
    #[must_use]
    pub fn paper_example() -> Self {
        Self::new(8 * 4 * 32, 4, 32).expect("paper example geometry is valid")
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Total number of lines the cache can hold.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.sets * u64::from(self.ways)
    }

    /// The memory-line id a byte address belongs to (`addr / line_size`).
    ///
    /// This is the same quantization [`mbcr_trace::Address::line`] applies;
    /// exposed here so static analyses share one definition of the
    /// address → line → set pipeline with the simulator.
    #[must_use]
    pub fn line_of_addr(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// The set index `line` maps to under deterministic modulo placement
    /// (`line mod sets`; the set count is a power of two, so this is a
    /// mask). Random placement replaces this with a seeded hash — see
    /// [`crate::PlacementPolicy::set_of`].
    #[must_use]
    pub fn set_of_line(&self, line: u64) -> u64 {
        line & (self.sets - 1)
    }

    /// The tag of `line`: the bits above the set index, i.e. what a
    /// modulo-placed cache stores to distinguish co-mapped lines.
    #[must_use]
    pub fn tag_of_line(&self, line: u64) -> u64 {
        line >> self.sets.trailing_zeros()
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        Self::paper_l1()
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B {}-way {}B/line ({} sets)",
            self.size_bytes, self.ways, self.line_size, self.sets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.sets(), 64);
        assert_eq!(l1.lines(), 128);
        let ex = CacheGeometry::paper_example();
        assert_eq!((ex.sets(), ex.ways()), (8, 4));
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(matches!(
            CacheGeometry::new(0, 2, 32),
            Err(GeometryError::Zero(_))
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 0, 32),
            Err(GeometryError::Zero(_))
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 2, 0),
            Err(GeometryError::Zero(_))
        ));
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheGeometry::new(4096, 2, 24).is_err());
        assert!(CacheGeometry::new(4096 + 64, 2, 32).is_err()); // 65 sets
        assert!(CacheGeometry::new(96, 2, 32).is_err()); // fractional set count
                                                         // Odd associativity is fine as long as the set count is a power of 2.
        assert!(CacheGeometry::new(3 * 64, 3, 32).is_ok());
    }

    #[test]
    fn one_set_cache_is_valid() {
        let g = CacheGeometry::new(64, 2, 32).unwrap();
        assert_eq!(g.sets(), 1);
    }

    #[test]
    fn line_set_tag_math() {
        let g = CacheGeometry::paper_l1(); // 64 sets, 32 B lines
        assert_eq!(g.line_of_addr(0), 0);
        assert_eq!(g.line_of_addr(31), 0);
        assert_eq!(g.line_of_addr(32), 1);
        assert_eq!(g.set_of_line(0), 0);
        assert_eq!(g.set_of_line(65), 1, "wraps modulo 64 sets");
        assert_eq!(g.tag_of_line(65), 1);
        // line = tag * sets + set reassembles.
        for line in [0u64, 1, 63, 64, 1000, 123_456] {
            assert_eq!(g.tag_of_line(line) * g.sets() + g.set_of_line(line), line);
        }
    }

    #[test]
    fn display_is_informative() {
        let s = CacheGeometry::paper_l1().to_string();
        assert!(s.contains("4096") && s.contains("2-way") && s.contains("64 sets"));
    }

    #[test]
    fn error_display() {
        let e = CacheGeometry::new(0, 2, 32).unwrap_err();
        assert!(e.to_string().contains("size_bytes"));
        let e = CacheGeometry::new(4096, 2, 24).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }
}
