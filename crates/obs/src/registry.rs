//! The global metric registry: named histograms and counters, each
//! optionally carrying a small set of `key=value` labels, with Prometheus
//! text exposition and JSON rollups.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use mbcr_json::Json;

use crate::hist::{Counter, Histogram, HistogramSnapshot, BUCKETS};

/// A metric series key: name plus sorted labels. Labels must be **low
/// cardinality** (route patterns, stage kinds — never job keys or seeds).
type Series = (String, Vec<(String, String)>);

fn series(name: &str, labels: &[(&str, &str)]) -> Series {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

/// Snapshot of one series, either a histogram or a counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    Histogram(HistogramSnapshot),
    Counter(u64),
}

/// Snapshot of a whole registry, keyed by series.
pub type RegistrySnapshot = BTreeMap<Series, MetricSnapshot>;

/// Merges two registry snapshots series-by-series. Like
/// [`HistogramSnapshot::merge`] this is commutative and associative, so
/// rollups from several processes can be folded in any order. A series
/// that is a histogram on one side and a counter on the other keeps the
/// left-hand variant (it indicates a naming bug upstream).
#[must_use]
pub fn merge_snapshots(mut left: RegistrySnapshot, right: &RegistrySnapshot) -> RegistrySnapshot {
    for (key, theirs) in right {
        match (left.get_mut(key), theirs) {
            (Some(MetricSnapshot::Histogram(mine)), MetricSnapshot::Histogram(h)) => {
                mine.merge(h);
            }
            (Some(MetricSnapshot::Counter(mine)), MetricSnapshot::Counter(c)) => {
                *mine = mine.saturating_add(*c);
            }
            (Some(_), _) => {}
            (None, theirs) => {
                left.insert(key.clone(), theirs.clone());
            }
        }
    }
    left
}

/// A collection of named metrics. Most code uses the process-wide
/// [`global`] instance; tests construct their own.
#[derive(Debug, Default)]
pub struct Registry {
    hists: Mutex<BTreeMap<Series, Arc<Histogram>>>,
    counters: Mutex<BTreeMap<Series, Arc<Counter>>>,
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `name` + `labels`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut hists = self.hists.lock().expect("registry poisoned");
        Arc::clone(
            hists
                .entry(series(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The counter for `name` + `labels`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("registry poisoned");
        Arc::clone(
            counters
                .entry(series(name, labels))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// A point-in-time copy of every series.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut out = RegistrySnapshot::new();
        for (key, h) in self.hists.lock().expect("registry poisoned").iter() {
            out.insert(key.clone(), MetricSnapshot::Histogram(h.snapshot()));
        }
        for (key, c) in self.counters.lock().expect("registry poisoned").iter() {
            out.insert(key.clone(), MetricSnapshot::Counter(c.get()));
        }
        out
    }

    /// Drops every series. Test-only affordance; concurrent holders of an
    /// `Arc<Histogram>` keep recording into the detached instance.
    pub fn reset(&self) {
        self.hists.lock().expect("registry poisoned").clear();
        self.counters.lock().expect("registry poisoned").clear();
    }

    /// Prometheus text exposition (version 0.0.4). Metrics named
    /// `*_seconds` are recorded in nanoseconds and scaled here; histograms
    /// emit cumulative `_bucket{le=…}` series for non-empty buckets plus
    /// `+Inf`, `_sum`, and `_count`.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let snapshot = self.snapshot();
        prometheus_exposition(&snapshot)
    }

    /// JSON rollup of every series: histograms as
    /// `{count,sum,min,max,p50,p95,p99}`, counters as bare integers.
    /// Duration metrics stay in nanoseconds (the names say `_seconds` for
    /// the Prometheus side; JSON consumers get exact integers).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let snapshot = self.snapshot();
        let mut members = Vec::new();
        for ((name, labels), metric) in &snapshot {
            let key = if labels.is_empty() {
                name.clone()
            } else {
                let rendered: Vec<String> =
                    labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{name}{{{}}}", rendered.join(","))
            };
            members.push((key, metric_json(metric)));
        }
        Json::Obj(members)
    }
}

fn metric_json(metric: &MetricSnapshot) -> Json {
    match metric {
        MetricSnapshot::Counter(v) => Json::UInt(*v),
        MetricSnapshot::Histogram(h) => Json::Obj(vec![
            ("count".into(), Json::UInt(h.count())),
            ("sum".into(), Json::UInt(h.sum())),
            ("min".into(), Json::UInt(h.min())),
            ("max".into(), Json::UInt(h.max())),
            ("p50".into(), Json::UInt(h.quantile(0.50))),
            ("p95".into(), Json::UInt(h.quantile(0.95))),
            ("p99".into(), Json::UInt(h.quantile(0.99))),
        ]),
    }
}

/// Scale factor applied at exposition: `*_seconds` metrics hold
/// nanoseconds internally.
fn exposition_scale(name: &str) -> f64 {
    if name.ends_with("_seconds") {
        1e-9
    } else {
        1.0
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prometheus_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prometheus_escape(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::cast_precision_loss)]
fn prometheus_exposition(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for ((name, labels), metric) in snapshot {
        if last_name != Some(name.as_str()) {
            let kind = match metric {
                MetricSnapshot::Histogram(_) => "histogram",
                MetricSnapshot::Counter(_) => "counter",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_name = Some(name.as_str());
        }
        match metric {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("{name}{} {v}\n", label_block(labels, None)));
            }
            MetricSnapshot::Histogram(h) => {
                let scale = exposition_scale(name);
                let mut cumulative = 0u64;
                for (index, &n) in h.buckets().iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    // The last bucket's bound is +Inf below, not 2^64.
                    if index == BUCKETS - 1 {
                        continue;
                    }
                    let le = HistogramSnapshot::bucket_upper(index) as f64 * scale;
                    let le = format!("{le}");
                    out.push_str(&format!(
                        "{name}_bucket{} {cumulative}\n",
                        label_block(labels, Some(("le", &le)))
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    label_block(labels, Some(("le", "+Inf"))),
                    h.count()
                ));
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    label_block(labels, None),
                    h.sum() as f64 * scale
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    label_block(labels, None),
                    h.count()
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_stable_across_label_order() {
        let r = Registry::new();
        let a = r.counter("mbcr_x_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter("mbcr_x_total", &[("b", "2"), ("a", "1")]);
        a.add(1);
        b.add(1);
        assert_eq!(a.get(), 2, "label order must not split the series");
    }

    #[test]
    fn prometheus_exposition_has_histogram_invariants() {
        let r = Registry::new();
        let h = r.histogram("mbcr_demo_seconds", &[("route", "/v1/metrics")]);
        h.record(1_000_000); // 1ms
        h.record(2_000_000);
        h.record(0);
        r.counter("mbcr_demo_total", &[]).add(7);
        let text = r.prometheus();
        assert!(text.contains("# TYPE mbcr_demo_seconds histogram"));
        assert!(text.contains("# TYPE mbcr_demo_total counter"));
        assert!(text.contains("mbcr_demo_total 7"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("mbcr_demo_seconds_count{route=\"/v1/metrics\"} 3"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "cumulative bucket counts must not drop");
            last = count;
        }
    }

    #[test]
    fn registry_merge_is_associative() {
        let mk = |hist_values: &[u64], counter: u64| {
            let r = Registry::new();
            for &v in hist_values {
                r.histogram("mbcr_m_seconds", &[]).record(v);
            }
            r.counter("mbcr_m_total", &[]).add(counter);
            r.snapshot()
        };
        let a = mk(&[1, 2, 3], 5);
        let b = mk(&[10, 20], 7);
        let c = mk(&[100], 11);
        let left = merge_snapshots(merge_snapshots(a.clone(), &b), &c);
        let right = merge_snapshots(a, &merge_snapshots(b.clone(), &c));
        assert_eq!(left, right);
        match &left[&("mbcr_m_total".to_string(), Vec::new())] {
            MetricSnapshot::Counter(v) => assert_eq!(*v, 23),
            MetricSnapshot::Histogram(_) => panic!("counter series became a histogram"),
        }
        match &left[&("mbcr_m_seconds".to_string(), Vec::new())] {
            MetricSnapshot::Histogram(h) => assert_eq!(h.count(), 6),
            MetricSnapshot::Counter(_) => panic!("histogram series became a counter"),
        }
    }

    #[test]
    fn json_rollup_reports_quantiles() {
        let r = Registry::new();
        for v in [8u64, 8, 8, 8, 1000] {
            r.histogram("mbcr_j_seconds", &[]).record(v);
        }
        let json = r.to_json();
        let h = json.get("mbcr_j_seconds").expect("series present");
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(5.0));
        assert_eq!(h.get("p50").and_then(Json::as_f64), Some(15.0));
    }
}
