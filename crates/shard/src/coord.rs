//! The sweep coordinator: serves ready stage jobs over TCP, streams
//! campaign checkpoints into its store, merges completed artifacts, and
//! finalizes a manifest byte-identical to a single-process sweep.
//!
//! One coordinator owns one [`SweepPlan`] and one [`ArtifactStore`]. It
//! drives the same [`JobScheduler`] state machine as the in-process pool:
//! ready jobs are leased to connected workers, cached jobs are skipped
//! (the shared [`SweepPlan::cached_summary`] policy), combine nodes run
//! inline (they are a `min` over numbers already in hand), and everything
//! else ships as a [`WireJob`] carrying the upstream stage artifacts the
//! worker's session will need — plus, for campaign work, the chunk-log
//! prefix already durable here, so a re-leased job *adopts* a dead
//! worker's in-flight campaign instead of restarting it.
//!
//! Worker death is detected two ways: a closed connection requeues the
//! worker's leases immediately, and a lease TTL ([`CoordSettings::
//! lease_ttl`]) catches hung-but-connected workers. Duplicate results
//! from a presumed-dead worker are absorbed: artifacts are
//! content-addressed (idempotent to re-save) and the scheduler's first
//! completion wins.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mbcr::stage::StageKind;
use mbcr_engine::{
    execute_combine, finalize_sweep, ArtifactStore, EngineError, JobKind, JobRecord, JobScheduler,
    JobStatus, JobSummary, Registry, RunOptions, StageStore, SweepOutcome, SweepPlan, SweepSpec,
};
use mbcr_json::Json;

use crate::lease::LeaseTable;
use crate::protocol::{self, JobResult, Message, Received, SamplePrefix, WireJob};

/// Coordinator knobs orthogonal to the spec.
#[derive(Debug, Clone, Copy)]
pub struct CoordSettings {
    /// Execution options shared with single-process sweeps (thread count
    /// is ignored — parallelism is the worker fleet).
    pub run: RunOptions,
    /// Declare a silent worker dead (and requeue its leases) after this
    /// long. Connection loss is detected immediately regardless.
    pub lease_ttl: Duration,
}

impl Default for CoordSettings {
    fn default() -> Self {
        Self {
            run: RunOptions::default(),
            lease_ttl: Duration::from_secs(30),
        }
    }
}

struct State {
    sched: JobScheduler,
    records: Vec<Option<JobRecord>>,
    /// Completed summaries, readable by combine nodes.
    summaries: Vec<Option<JobSummary>>,
    leases: LeaseTable,
    /// Whether any worker ever connected (a coordinator may legitimately
    /// start before its fleet).
    ever_connected: bool,
    /// Last instant at which at least one worker was live (or work was
    /// still possible without one).
    last_live: Instant,
}

struct Coord<'a> {
    spec: &'a SweepSpec,
    registry: &'a Registry,
    store: &'a ArtifactStore,
    settings: CoordSettings,
    plan: SweepPlan,
    state: Mutex<State>,
    /// Set when the accept loop exits (success or error): handlers wind
    /// down instead of serving.
    shutdown: AtomicBool,
}

/// Runs a sweep by serving its jobs to TCP workers until every node
/// completes, then finalizes the manifest and Table 2 exactly like
/// [`mbcr_engine::run_sweep`] — byte-identical outputs are the contract.
///
/// The listener should already be bound; workers may connect at any time,
/// including after a sweep is underway (elastic fleets) or after earlier
/// workers died (their leases requeue).
///
/// # Errors
///
/// Planning and store I/O errors, a listener failure, or every worker
/// disconnecting with work still pending (after a grace of the lease
/// TTL). Analysis failures do not fail the sweep; they mark jobs failed,
/// as in a single-process run.
pub fn serve(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
) -> Result<SweepOutcome, EngineError> {
    let start = Instant::now();
    let plan = SweepPlan::new(spec, registry, &settings.run)?;
    let sched = JobScheduler::new(&plan.graph.deps);
    let n = plan.len();
    let coord = Coord {
        spec,
        registry,
        store,
        settings: *settings,
        plan,
        state: Mutex::new(State {
            sched,
            records: vec![None; n],
            summaries: vec![None; n],
            leases: LeaseTable::new(settings.lease_ttl),
            ever_connected: false,
            last_live: Instant::now(),
        }),
        shutdown: AtomicBool::new(false),
    };

    listener.set_nonblocking(true)?;
    let served: Result<(), EngineError> = std::thread::scope(|scope| {
        let mut next_worker = 0u64;
        let result = loop {
            if coord.finished() {
                break Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    next_worker += 1;
                    let worker = next_worker;
                    let coord = &coord;
                    scope.spawn(move || handle_connection(coord, stream, worker));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => break Err(EngineError::Io(e)),
            }
            let now = Instant::now();
            coord.reap_expired(now);
            if let Some(stall) = coord.stalled(now) {
                break Err(stall);
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        // Handlers notice the flag within one read timeout and deliver a
        // final Shutdown to their worker; the scope then joins them.
        coord.shutdown.store(true, Ordering::Release);
        result
    });
    served?;

    let state = coord.state.into_inner().expect("state poisoned");
    let records: Vec<JobRecord> = state
        .records
        .into_iter()
        .map(|r| r.expect("finished sweeps have a record per job"))
        .collect();
    finalize_sweep(spec, records, store, start.elapsed())
}

impl Coord<'_> {
    fn finished(&self) -> bool {
        self.state.lock().expect("state poisoned").sched.finished()
    }

    fn winding_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn register(&self, worker: u64) {
        let mut state = self.state.lock().expect("state poisoned");
        state.ever_connected = true;
        state.leases.touch(worker, Instant::now());
    }

    fn touch(&self, worker: u64) {
        let mut state = self.state.lock().expect("state poisoned");
        state.leases.touch(worker, Instant::now());
    }

    /// A worker's connection ended: evict it and requeue its leases.
    fn drop_worker(&self, worker: u64) {
        let mut state = self.state.lock().expect("state poisoned");
        state.leases.remove(worker);
        let requeued = state.sched.requeue_worker(worker);
        if !requeued.is_empty() {
            eprintln!(
                "coordinator: worker {worker} lost with {} leased job(s); requeued",
                requeued.len()
            );
        }
    }

    /// Requeues the leases of workers whose TTL lapsed (hung process,
    /// partitioned host — connection loss is handled by `drop_worker`).
    fn reap_expired(&self, now: Instant) {
        let mut state = self.state.lock().expect("state poisoned");
        for worker in state.leases.expired(now) {
            let requeued = state.sched.requeue_worker(worker);
            eprintln!(
                "coordinator: worker {worker} lease expired with {} job(s); requeued",
                requeued.len()
            );
        }
    }

    /// An error once every worker is gone and stayed gone for a lease TTL
    /// with work still pending — better than hanging a self-hosted sweep
    /// forever.
    fn stalled(&self, now: Instant) -> Option<EngineError> {
        let mut state = self.state.lock().expect("state poisoned");
        if state.sched.finished() || !state.ever_connected || state.leases.live() > 0 {
            state.last_live = now;
            return None;
        }
        let grace = self.settings.lease_ttl.max(Duration::from_secs(5));
        if now.duration_since(state.last_live) <= grace {
            return None;
        }
        Some(EngineError::Analysis(format!(
            "all workers disconnected with {} job(s) unfinished",
            state.sched.remaining()
        )))
    }

    /// Records a job's terminal state and completes it in the scheduler.
    /// Guarded against double recording: if a lease-TTL race let another
    /// worker finish the job first, the existing record wins and this
    /// call only releases the (stale) lease.
    fn record(
        &self,
        state: &mut State,
        job: usize,
        status: JobStatus,
        error: Option<String>,
        summary: Option<JobSummary>,
    ) {
        if state.records[job].is_some() {
            state.sched.complete(job);
            return;
        }
        state.records[job] = Some(JobRecord {
            key: self.plan.keys[job].clone(),
            label: self.plan.graph.jobs[job].label(),
            status,
            error,
            summary: summary.clone(),
        });
        state.summaries[job] = summary;
        state.sched.complete(job);
    }

    fn record_locked(
        &self,
        job: usize,
        status: JobStatus,
        error: Option<String>,
        summary: Option<JobSummary>,
    ) {
        let mut state = self.state.lock().expect("state poisoned");
        self.record(&mut state, job, status, error, summary);
    }

    /// Answers one job request: skips cached nodes, runs combine nodes
    /// inline, and ships the first stage node that actually needs a
    /// worker. `Wait` when everything runnable is leased elsewhere,
    /// `Shutdown` when the sweep is over.
    ///
    /// Only the lease transition itself holds the state lock — cache
    /// probes, combine writes and wire-job assembly all do store I/O and
    /// must not stall every other worker's request (a paper-scale fit
    /// job ships a multi-megabyte chunk log). That is safe because the
    /// claimed node is leased to this worker: nobody else touches it
    /// until it is recorded or the lease is revoked.
    fn claim(&self, worker: u64) -> Message {
        loop {
            let job = {
                let mut state = self.state.lock().expect("state poisoned");
                if state.sched.finished() || self.winding_down() {
                    return Message::Shutdown;
                }
                match state.sched.claim(worker) {
                    Some(job) => job,
                    None => return Message::Wait,
                }
            };
            if !self.settings.run.force {
                if let Some(summary) = self.plan.cached_summary(job, self.store) {
                    self.record_locked(job, JobStatus::Skipped, None, Some(summary));
                    continue;
                }
            }
            match &self.plan.graph.jobs[job].kind {
                JobKind::MultipathCombine => {
                    let deps: Vec<Option<JobSummary>> = {
                        let state = self.state.lock().expect("state poisoned");
                        self.plan.graph.deps[job]
                            .iter()
                            .map(|&dep| state.summaries[dep].clone())
                            .collect()
                    };
                    let outcome =
                        execute_combine(&self.plan.graph.jobs[job], &self.plan.keys[job], &deps)
                            .and_then(|(summary, result)| {
                                self.store.write_job(
                                    &self.plan.keys[job],
                                    &summary,
                                    result,
                                    None,
                                )?;
                                Ok(summary)
                            });
                    match outcome {
                        Ok(summary) => {
                            self.record_locked(job, JobStatus::Executed, None, Some(summary));
                        }
                        Err(e) => {
                            self.record_locked(job, JobStatus::Failed, Some(e.to_string()), None);
                        }
                    }
                }
                JobKind::Stage { .. } => match self.build_wire_job(job) {
                    Ok(wire) => return Message::Job(Box::new(wire)),
                    Err(e) => {
                        self.record_locked(job, JobStatus::Failed, Some(e.to_string()), None);
                    }
                },
            }
        }
    }

    /// Assembles the shipment for one stage job: every upstream stage
    /// artifact present in the store (the worker's session loads them
    /// instead of recomputing), plus the campaign chunk-log prefix when
    /// the job is at or past the campaign stage — the adoption path for
    /// re-leased in-flight campaigns, and the cached sample for fit jobs.
    fn build_wire_job(&self, job: usize) -> Result<WireJob, EngineError> {
        let spec = self.plan.graph.jobs[job].clone();
        let target = spec.kind.stage().expect("stage node");
        let digests = self
            .plan
            .stage_digests(job, self.registry)?
            .expect("stage node");
        let stages = digests.pipeline().stages();
        let at = stages
            .iter()
            .position(|&s| s == target)
            .expect("target in pipeline");
        let mut artifacts = Vec::new();
        for &stage in &stages[..at] {
            if let Some(doc) = digests.get(stage).and_then(|d| self.store.load_stage(d)) {
                artifacts.push(doc);
            }
        }
        let mut prefix = None;
        if let Some(digest) = digests.get(StageKind::Campaign) {
            let campaign_at = stages
                .iter()
                .position(|&s| s == StageKind::Campaign)
                .expect("campaign digest implies a campaign stage");
            if self.settings.run.force && target == StageKind::Campaign {
                // Force means re-simulate from scratch: discard the log so
                // the fresh run rewrites it (the single-process repair
                // semantics), and ship no prefix.
                self.store.reset_samples(digest)?;
            } else if at >= campaign_at {
                prefix = StageStore::load_samples(self.store, digest)
                    .filter(|samples| !samples.is_empty())
                    .map(|samples| SamplePrefix { digest, samples });
            }
        }
        Ok(WireJob {
            job,
            key: self.plan.keys[job].clone(),
            spec,
            artifacts,
            prefix,
        })
    }

    /// Streams a worker's campaign checkpoint chunk into the store's
    /// chunk log. Append failures are logged, not fatal: a gap (a reset
    /// raced a zombie writer) only costs the marker its cache-hit, which
    /// the validation layer already handles.
    fn chunk(&self, digest: u64, start: usize, total: usize, samples: &[u64]) {
        if let Err(e) = self.store.append_samples(digest, start, total, samples) {
            eprintln!("coordinator: chunk append for {digest:016x} failed: {e}");
        }
    }

    fn reset_log(&self, digest: u64) {
        if let Err(e) = self.store.reset_samples(digest) {
            eprintln!("coordinator: log reset for {digest:016x} failed: {e}");
        }
    }

    /// Merges a worker's finished job: persist its stage artifacts
    /// (content-addressed — racing duplicates are harmless) and fit
    /// payload, then complete the node. Returns `false` when the result
    /// is malformed (out-of-range node) and the peer should be dropped.
    fn complete_remote(&self, result: JobResult) -> bool {
        if result.job >= self.plan.len() {
            return false;
        }
        let mut error = result.error;
        let mut summary = result.summary;
        for doc in &result.stage_docs {
            let Some(digest) = doc.get("digest").and_then(Json::as_u64) else {
                continue; // not a stage envelope; ignore
            };
            if let Err(e) = self.store.save_stage(digest, doc) {
                error = Some(format!("persisting stage artifact {digest:016x}: {e}"));
                summary = None;
                break;
            }
        }
        if error.is_none() {
            if let (Some(s), Some((doc, sample))) = (&summary, &result.fit) {
                if let Err(e) = self.store.write_job(
                    &self.plan.keys[result.job],
                    s,
                    doc.clone(),
                    sample.as_deref(),
                ) {
                    error = Some(format!("persisting job artifact: {e}"));
                    summary = None;
                }
            }
        }
        let mut state = self.state.lock().expect("state poisoned");
        if state.records[result.job].is_some() {
            return true; // duplicate from a presumed-dead worker
        }
        if state.sched.is_blocked(result.job) {
            return false; // a result for a job never handed out: drop peer
        }
        let status = if error.is_none() {
            JobStatus::Executed
        } else {
            JobStatus::Failed
        };
        self.record(&mut state, result.job, status, error, summary);
        true
    }
}

fn handle_connection(coord: &Coord<'_>, mut stream: TcpStream, worker: u64) {
    let _ = stream.set_nodelay(true);
    // The read timeout only bounds how often this handler checks the
    // wind-down flag; `receive_or_idle` guarantees a timeout landing
    // inside a frame resumes the read instead of tearing it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Handshake: a peer speaking another schema is refused — loudly, so
    // a misconfigured fleet fails instead of idling — and a connection
    // that never says hello is dropped after ~20 s.
    let mut idle_ticks = 0usize;
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(Message::Hello { schema })) => {
                if schema == protocol::wire_schema() {
                    break;
                }
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: format!(
                            "schema mismatch: worker speaks '{schema}', coordinator '{}'",
                            protocol::wire_schema()
                        ),
                    },
                );
                return;
            }
            Ok(Received::Idle) => {
                idle_ticks += 1;
                if idle_ticks > 40 || coord.winding_down() {
                    return;
                }
            }
            Ok(Received::Message(_)) => {
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: "handshake must start with hello".to_string(),
                    },
                );
                return;
            }
            Ok(Received::Closed) | Err(_) => return,
        }
    }
    coord.register(worker);
    let welcome = Message::Welcome {
        schema: protocol::wire_schema(),
        spec: coord.spec.to_json(),
        checkpoint_interval: coord.settings.run.checkpoint_interval,
    };
    if protocol::send(&mut stream, &welcome).is_err() {
        coord.drop_worker(worker);
        return;
    }
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(message)) => {
                coord.touch(worker);
                match message {
                    Message::Request => {
                        let response = coord.claim(worker);
                        let shutdown = matches!(response, Message::Shutdown);
                        if protocol::send(&mut stream, &response).is_err() || shutdown {
                            break;
                        }
                    }
                    Message::Chunk {
                        digest,
                        start,
                        total,
                        samples,
                    } => coord.chunk(digest, start, total, &samples),
                    Message::ResetLog { digest } => coord.reset_log(digest),
                    Message::Heartbeat => {}
                    Message::Done(result) => {
                        if !coord.complete_remote(*result) {
                            break;
                        }
                    }
                    other => {
                        eprintln!(
                            "coordinator: worker {worker} sent unexpected {:?} frame; dropping",
                            other.to_json().get("type")
                        );
                        break;
                    }
                }
            }
            Ok(Received::Idle) => {
                if coord.winding_down() {
                    // Idle worker after the sweep ended (or aborted):
                    // release it and wind the handler down.
                    let _ = protocol::send(&mut stream, &Message::Shutdown);
                    break;
                }
            }
            Ok(Received::Closed) => break,
            Err(e) => {
                eprintln!("coordinator: worker {worker} connection failed: {e}");
                break;
            }
        }
    }
    coord.drop_worker(worker);
}
