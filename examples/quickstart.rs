//! Quickstart: run a batch pWCET campaign — benchmarks × cache geometries
//! — through the sweep engine, and read the paper-style Table 2 summary.
//!
//! Run with `cargo run --release --example quickstart`.

use mbcr_engine::render_rows;
use mbcr_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A declarative campaign: two Mälardalen benchmarks, the paper's L1
    // plus a half-sized variant, every analysis of the paper's pipeline
    // (original baseline, PUB+TAC, multipath combination). `SweepSpec`
    // round-trips through JSON, so this could just as well live in a file
    // passed to `mbcr sweep --spec`.
    let spec = SweepSpec::new("quickstart")
        .benchmarks(["bs", "cnt"])
        .inputs(InputSelection::All)
        .geometries([GeometrySpec::paper_l1(), GeometrySpec::parse("2048:2:32")?])
        .seeds([42]);
    println!("campaign spec:\n{}\n", spec.to_json().to_pretty());

    // The engine expands the spec into a job DAG (multipath combinations
    // depend on their per-path jobs), executes it on a work-stealing pool,
    // and persists every result under a content-addressed run directory.
    let store = ArtifactStore::open(std::env::temp_dir().join("mbcr-quickstart"))?;
    let registry = Registry::malardalen();
    let outcome = run_sweep(&spec, &registry, &store, &RunOptions::default())?;

    println!("{}", render_rows(&outcome.rows));
    println!(
        "{} jobs executed, {} served from cache, in {:.1}s",
        outcome.executed,
        outcome.skipped,
        outcome.elapsed.as_secs_f64(),
    );
    println!("artifacts: {}", store.root().display());

    // Re-running the identical spec touches nothing: every job key is
    // already present in the artifact store.
    let rerun = run_sweep(&spec, &registry, &store, &RunOptions::default())?;
    assert_eq!(rerun.executed, 0);
    println!(
        "re-run: {} jobs skipped (warm artifact store)",
        rerun.skipped
    );
    Ok(())
}
