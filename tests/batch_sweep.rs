//! Layout batching is a pure throughput knob: `--batch-width` must never
//! change a single artifact byte.
//!
//! * a sweep at any batch width produces a store byte-identical to the
//!   width-1 (classic one-layout-at-a-time) sweep — chunk log, job sample
//!   logs and the rendered Table 2;
//! * that equivalence survives a mid-campaign kill: a batched sweep torn
//!   inside its final chunk frame and resumed at a *different* batch
//!   width still reconstructs the serial store exactly.

use std::fs;
use std::path::PathBuf;

use mbcr::stage::StageKind;
use mbcr_engine::{
    expand, run_sweep, AnalysisKind, ArtifactStore, JobStatus, Registry, RunOptions,
    StageStore as _, SweepSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-batch-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> SweepSpec {
    SweepSpec::new("batch-e2e")
        .benchmarks(["bs"])
        .seeds([23])
        .analyses([AnalysisKind::PubTac])
}

fn opts(batch_width: usize) -> RunOptions {
    RunOptions {
        threads: 2,
        force: false,
        checkpoint_interval: Some(256),
        batch_width: Some(batch_width),
        ..RunOptions::default()
    }
}

fn campaign_digest(spec: &SweepSpec, registry: &Registry) -> u64 {
    let graph = expand(spec, registry).expect("expand");
    graph
        .jobs
        .iter()
        .enumerate()
        .find(|(_, j)| j.kind.stage() == Some(StageKind::Campaign))
        .and_then(|(i, _)| graph.digests[i])
        .expect("campaign digest")
}

/// Byte-compares every sample-bearing artifact of two completed stores.
fn assert_stores_identical(a: &ArtifactStore, b: &ArtifactStore, what: &str) {
    let registry = Registry::malardalen();
    let digest = campaign_digest(&spec(), &registry);
    assert_eq!(
        fs::read(a.stage_samples_path(digest)).expect("log a"),
        fs::read(b.stage_samples_path(digest)).expect("log b"),
        "{what}: campaign chunk logs must match byte-for-byte"
    );
    assert_eq!(
        fs::read_to_string(a.table2_path()).expect("table2 a"),
        fs::read_to_string(b.table2_path()).expect("table2 b"),
        "{what}: rendered Table 2 must match exactly"
    );
}

/// Sweeping `--batch-width` (1, a non-dividing 7, the default 16) leaves
/// every artifact byte-identical, and a warm re-run at yet another width
/// is a full cache hit — the knob is digest-neutral.
#[test]
fn batch_width_sweep_reproduces_the_serial_store_exactly() {
    let registry = Registry::malardalen();
    let dir_serial = tmp_dir("serial");
    let store_serial = ArtifactStore::open(&dir_serial).expect("open serial store");
    let serial = run_sweep(&spec(), &registry, &store_serial, &opts(1)).expect("serial sweep");
    assert_eq!(serial.failed, 0);

    for width in [7usize, 16] {
        let dir = tmp_dir(&format!("w{width}"));
        let store = ArtifactStore::open(&dir).expect("open batched store");
        let batched = run_sweep(&spec(), &registry, &store, &opts(width)).expect("batched sweep");
        assert_eq!(batched.failed, 0);
        assert_eq!(batched.rows, serial.rows, "W={width}");
        assert_stores_identical(&store_serial, &store, &format!("W={width}"));

        // Digest-neutrality: re-running the same store at another width
        // must be a pure cache hit, not a re-execution.
        let warm = run_sweep(&spec(), &registry, &store, &opts(width * 2)).expect("warm sweep");
        assert!(
            warm.records.iter().all(|r| r.status == JobStatus::Skipped),
            "W={width}: a batch-width change alone must never invalidate the cache"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&dir_serial);
}

/// The kill story under batching: tear the chunk log of a batched sweep
/// inside its final frame, drop everything a killed process would not
/// have written, resume at a different batch width — and still get the
/// width-1 store back byte-for-byte.
#[test]
fn killed_batched_sweep_resumes_to_the_serial_store() {
    let registry = Registry::malardalen();
    let dir_serial = tmp_dir("kill-serial");
    let store_serial = ArtifactStore::open(&dir_serial).expect("open serial store");
    let serial = run_sweep(&spec(), &registry, &store_serial, &opts(1)).expect("serial sweep");
    assert_eq!(serial.failed, 0);

    let dir = tmp_dir("kill-batched");
    let store = ArtifactStore::open(&dir).expect("open batched store");
    run_sweep(&spec(), &registry, &store, &opts(16)).expect("to-be-killed sweep");

    let graph = expand(&spec(), &registry).expect("expand");
    let digest_of = |stage: StageKind| {
        graph
            .jobs
            .iter()
            .enumerate()
            .find(|(_, j)| j.kind.stage() == Some(stage))
            .and_then(|(i, _)| graph.digests[i])
            .expect("stage digest")
    };
    let digest = digest_of(StageKind::Campaign);
    let log_path = store.stage_samples_path(digest);
    let pristine = fs::read(&log_path).expect("log bytes");
    let total = store.load_samples(digest).expect("complete log").len();
    fs::write(&log_path, &pristine[..pristine.len() - 7]).expect("tear the final frame");
    let valid = store.load_samples(digest).expect("torn log loads").len();
    assert!(valid < total, "the torn final frame must be discarded");
    fs::remove_file(store.stage_path(digest)).expect("drop completion marker");
    fs::remove_file(store.stage_path(digest_of(StageKind::Fit))).expect("drop fit artifact");
    fs::remove_dir_all(dir.join("jobs")).expect("drop job artifacts");
    fs::remove_file(store.manifest_path()).expect("drop manifest");
    fs::remove_file(store.table2_path()).expect("drop table2");

    // Resume at a different width than the killed run used.
    let resumed = run_sweep(&spec(), &registry, &store, &opts(32)).expect("resumed sweep");
    assert_eq!(resumed.failed, 0);
    let campaign = resumed
        .records
        .iter()
        .find(|r| r.label.starts_with("pub_tac:campaign/"))
        .expect("campaign record");
    assert_eq!(campaign.status, JobStatus::Executed);
    assert_eq!(
        campaign.summary.as_ref().and_then(|s| s.campaign_resumed),
        Some(valid as u64),
        "the valid log prefix seeds the resume"
    );
    assert_eq!(resumed.rows, serial.rows);
    assert_stores_identical(&store_serial, &store, "killed+resumed W=16→32");

    let _ = fs::remove_dir_all(&dir_serial);
    let _ = fs::remove_dir_all(&dir);
}
