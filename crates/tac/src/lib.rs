//! TAC — Time-aware Address Conflict analysis (Milutinovic et al.,
//! Ada-Europe'17), as combined with PUB in the DAC'18 paper.
//!
//! On a random-placement cache, a group of `k > W` lines that the program
//! traverses with long, interleaved reuse distances causes an **abrupt
//! execution-time increase** whenever all of them land in the same set —
//! which happens with probability `(1/S)^(k-1)` per run. EVT can only
//! extrapolate what the measurements contain (paper Section 2), so the
//! measurement campaign must be long enough to *observe* those layouts.
//!
//! TAC answers "how long":
//!
//! 1. **Discover** candidate conflict groups from the address sequence —
//!    hot lines whose accesses interleave (round-robin-like patterns), in
//!    groups of `W + 1` lines (the minimal set-overflow; larger groups imply
//!    their `W + 1` subsets, so minimal groups carry the regime's
//!    probability — this is why the paper's Section 3.1.2 counts the six
//!    5-of-6 groups rather than the single 6-of-6 group).
//! 2. **Estimate impact**: expected extra misses when the group shares one
//!    set, via the focused single-set simulation of
//!    [`mbcr_cache::single_set`].
//! 3. **Cluster** groups of similar impact and aggregate their
//!    probabilities (equally-damaging layouts are interchangeable
//!    observations of the same regime).
//! 4. **Derive runs**: the smallest `R` with
//!    `(1 − P_class)^R < p_target` for every relevant class, i.e.
//!    `R = ⌈ln(p_target) / ln(1 − P_class)⌉` (paper: `p_target = 10⁻⁹`,
//!    "in line with the most stringent fault probabilities allowed for
//!    hardware components").
//!
//! # Examples
//!
//! The paper's Section 3.1.1 worked example — `{ABCDEA}^1000` on S = 8,
//! W = 4 needs more than ~84 873 runs (the paper prints 84 875 from a
//! rounded probability):
//!
//! ```
//! use mbcr_tac::{analyze_symbolic, TacConfig};
//! use mbcr_trace::SymSeq;
//!
//! let seq: SymSeq = "ABCDEA".parse().unwrap();
//! let analysis = analyze_symbolic(&seq.repeat(1000), &TacConfig::paper_example());
//! let r = analysis.runs_required;
//! assert!((84_000..86_000).contains(&r), "runs = {r}");
//! ```

use mbcr_cache::single_set::expected_misses;
use mbcr_rng::derive_seed;
use mbcr_trace::analysis::{line_stats, InterleavingMatrix};
use mbcr_trace::{LineId, SymSeq};

/// Configuration of a TAC analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TacConfig {
    /// Number of cache sets (S).
    pub sets: u64,
    /// Associativity (W).
    pub ways: u32,
    /// Maximum acceptable probability of *missing* a relevant layout in the
    /// campaign (the paper uses 10⁻⁹).
    pub p_target: f64,
    /// Ignore conflict classes whose per-run probability is below this floor
    /// (layouts rarer than the target exceedance are accepted risk).
    pub prob_floor: f64,
    /// A group is relevant if its expected extra misses reach this value.
    pub min_extra_misses: f64,
    /// Impact-clustering tolerance: groups within `impact_tolerance` of a
    /// class's maximum impact (relatively) join the class.
    pub impact_tolerance: f64,
    /// Only the most-accessed lines are considered as group members.
    pub max_hot_lines: usize,
    /// Per-anchor neighbour cap when enumerating groups.
    pub max_neighbors: usize,
    /// Minimum mutual interleaving count for two lines to be considered
    /// conflicting.
    pub min_interleave: u32,
    /// Hard cap on enumerated groups (highest-priority first).
    pub max_groups: usize,
    /// Monte-Carlo repetitions per impact estimate.
    pub mc_reps: u32,
    /// Seed for the impact estimates.
    pub seed: u64,
}

impl TacConfig {
    /// Defaults for a given cache geometry (S, W).
    #[must_use]
    pub fn new(sets: u64, ways: u32) -> Self {
        Self {
            sets,
            ways,
            p_target: 1e-9,
            prob_floor: 1e-12,
            min_extra_misses: 4.0,
            impact_tolerance: 0.5,
            max_hot_lines: 48,
            max_neighbors: 12,
            min_interleave: 2,
            max_groups: 20_000,
            mc_reps: 8,
            seed: 0x7AC,
        }
    }

    /// The paper's Section 3.1 example cache: S = 8 sets, W = 4 ways.
    #[must_use]
    pub fn paper_example() -> Self {
        Self::new(8, 4)
    }

    /// The paper's L1 geometry: 64 sets, 2 ways.
    #[must_use]
    pub fn paper_l1() -> Self {
        Self::new(64, 2)
    }
}

/// A discovered conflict group.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictGroup {
    /// The lines of the group (sorted).
    pub lines: Vec<LineId>,
    /// Per-run probability that all of them map to one set:
    /// `(1/S)^(|lines|-1)`.
    pub prob: f64,
    /// Expected extra misses when co-mapped (beyond cold misses).
    pub extra_misses: f64,
}

/// A cluster of similar-impact conflict groups.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactClass {
    /// Representative (maximum) impact of the class, in extra misses.
    pub impact: f64,
    /// Aggregated per-run probability of observing *some* group of the
    /// class (union bound).
    pub prob: f64,
    /// Number of groups in the class.
    pub group_count: usize,
    /// Runs needed to observe the class with probability ≥ 1 − `p_target`.
    pub runs: u64,
}

/// Result of a TAC analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TacAnalysis {
    /// Distinct lines in the analysed stream.
    pub unique_lines: usize,
    /// Number of candidate groups whose impact was evaluated.
    pub groups_evaluated: usize,
    /// The relevant groups (impact ≥ threshold), sorted by impact
    /// descending.
    pub relevant_groups: Vec<ConflictGroup>,
    /// Impact classes derived from the relevant groups.
    pub classes: Vec<ImpactClass>,
    /// The minimum number of runs TAC requires (0 when no relevant class
    /// exists — the standard MBPTA run count then suffices).
    pub runs_required: u64,
}

/// Computes `R` such that `(1 − p_event)^R < p_target`.
///
/// Returns 0 if `p_event` is not in `(0, 1)` (an impossible or certain event
/// needs no extra runs).
///
/// # Examples
///
/// ```
/// use mbcr_tac::runs_for_probability;
/// // Section 3.1.1: p = (1/8)^4, target 1e-9 -> 84 873 runs.
/// let r = runs_for_probability((1.0f64 / 8.0).powi(4), 1e-9);
/// assert_eq!(r, 84_873);
/// ```
#[must_use]
pub fn runs_for_probability(p_event: f64, p_target: f64) -> u64 {
    if !(0.0..1.0).contains(&p_event) || p_event == 0.0 || p_target <= 0.0 || p_target >= 1.0 {
        return 0;
    }
    let r = p_target.ln() / (1.0 - p_event).ln_1p_safe();
    r.ceil().max(1.0) as u64
}

/// `ln` of values very close to 1 loses precision; ln_1p on the complement
/// keeps the Section 3.1 numbers exact for small probabilities.
trait Ln1pSafe {
    fn ln_1p_safe(self) -> f64;
}

impl Ln1pSafe for f64 {
    fn ln_1p_safe(self) -> f64 {
        // self = 1 - p; ln(self) = ln_1p(-p).
        (self - 1.0).ln_1p()
    }
}

/// Per-run probability that `k` specific lines map into one of `sets` sets:
/// `S · (1/S)^k = (1/S)^(k-1)`.
#[must_use]
pub fn comapping_probability(k: u32, sets: u64) -> f64 {
    if k == 0 || sets == 0 {
        return 0.0;
    }
    (1.0 / sets as f64).powi(k as i32 - 1)
}

/// Runs TAC on a cache-line access stream.
///
/// The stream should be the projection of the program's (pubbed) trace onto
/// the lines of one cache (see `Trace::data_lines` / `Trace::instr_lines`);
/// instruction and data caches are analysed independently.
#[must_use]
pub fn analyze_lines(stream: &[LineId], cfg: &TacConfig) -> TacAnalysis {
    let stats = line_stats(stream);
    let unique_lines = stats.len();
    let group_size = cfg.ways + 1;

    // A set can only overflow if the footprint exceeds the associativity.
    if unique_lines < group_size as usize {
        return TacAnalysis {
            unique_lines,
            groups_evaluated: 0,
            relevant_groups: Vec::new(),
            classes: Vec::new(),
            runs_required: 0,
        };
    }

    // Hot candidates: reused lines, most-accessed first.
    let mut hot: Vec<LineId> = stats
        .iter()
        .filter(|s| s.count >= 2)
        .map(|s| s.line)
        .collect();
    hot.sort_by_key(|l| {
        std::cmp::Reverse(stats.iter().find(|s| s.line == *l).map_or(0, |s| s.count))
    });
    hot.truncate(cfg.max_hot_lines);

    if hot.len() < group_size as usize {
        return TacAnalysis {
            unique_lines,
            groups_evaluated: 0,
            relevant_groups: Vec::new(),
            classes: Vec::new(),
            runs_required: 0,
        };
    }

    // Restrict the stream to hot lines for the interleaving analysis.
    let hot_set: std::collections::HashSet<LineId> = hot.iter().copied().collect();
    let hot_stream: Vec<LineId> = stream
        .iter()
        .copied()
        .filter(|l| hot_set.contains(l))
        .collect();
    let matrix = InterleavingMatrix::build(&hot_stream);

    // Positions per line for substream extraction.
    let mut positions: std::collections::HashMap<LineId, Vec<u32>> =
        std::collections::HashMap::new();
    for (i, &l) in hot_stream.iter().enumerate() {
        positions.entry(l).or_default().push(i as u32);
    }

    let groups = enumerate_groups(&matrix, cfg, group_size);
    let groups_evaluated = groups.len();

    // Evaluate impacts.
    let mut relevant: Vec<ConflictGroup> = Vec::new();
    for (gi, lines) in groups.into_iter().enumerate() {
        let sub = merge_substream(&lines, &positions, &hot_stream);
        let misses = expected_misses(
            &sub,
            &lines,
            cfg.ways,
            cfg.mc_reps,
            derive_seed(cfg.seed, gi as u64),
        );
        let extra = misses - lines.len() as f64;
        if extra >= cfg.min_extra_misses {
            relevant.push(ConflictGroup {
                prob: comapping_probability(lines.len() as u32, cfg.sets),
                lines,
                extra_misses: extra,
            });
        }
    }
    relevant.sort_by(|a, b| b.extra_misses.total_cmp(&a.extra_misses));

    // Cluster into impact classes and derive the run requirement.
    let mut classes: Vec<ImpactClass> = Vec::new();
    let mut i = 0;
    while i < relevant.len() {
        let impact = relevant[i].extra_misses;
        let mut prob = 0.0;
        let mut count = 0;
        while i < relevant.len()
            && relevant[i].extra_misses >= impact * (1.0 - cfg.impact_tolerance)
        {
            prob += relevant[i].prob;
            count += 1;
            i += 1;
        }
        let prob = prob.min(1.0);
        if prob >= cfg.prob_floor {
            classes.push(ImpactClass {
                impact,
                prob,
                group_count: count,
                runs: runs_for_probability(prob, cfg.p_target),
            });
        }
    }
    let runs_required = classes.iter().map(|c| c.runs).max().unwrap_or(0);

    TacAnalysis {
        unique_lines,
        groups_evaluated,
        relevant_groups: relevant,
        classes,
        runs_required,
    }
}

/// Convenience entry point for symbolic sequences (paper notation).
#[must_use]
pub fn analyze_symbolic(seq: &SymSeq, cfg: &TacConfig) -> TacAnalysis {
    analyze_lines(&seq.to_lines(), cfg)
}

/// Enumerates candidate groups of exactly `group_size` mutually interleaved
/// hot lines: for every anchor line, combinations of its strongest
/// neighbours, deduplicated, capped at `cfg.max_groups`.
fn enumerate_groups(
    matrix: &InterleavingMatrix,
    cfg: &TacConfig,
    group_size: u32,
) -> Vec<Vec<LineId>> {
    let n = matrix.lines.len();
    let k = group_size as usize;
    let mut seen: std::collections::HashSet<Vec<LineId>> = std::collections::HashSet::new();
    let mut out: Vec<Vec<LineId>> = Vec::new();

    for anchor in 0..n {
        // Strongest mutually-interleaved neighbours of the anchor.
        let mut neigh: Vec<usize> = (0..n)
            .filter(|&j| j != anchor && matrix.mutual(anchor, j) >= cfg.min_interleave)
            .collect();
        if neigh.len() + 1 < k {
            continue;
        }
        neigh.sort_by_key(|&j| std::cmp::Reverse(matrix.mutual(anchor, j)));
        neigh.truncate(cfg.max_neighbors);

        // All (k-1)-combinations of the neighbours.
        let mut combo = vec![0usize; k - 1];
        combinations(neigh.len(), k - 1, &mut combo, &mut |sel| {
            if out.len() >= cfg.max_groups {
                return;
            }
            let mut lines: Vec<LineId> = sel.iter().map(|&s| matrix.lines[neigh[s]]).collect();
            lines.push(matrix.lines[anchor]);
            lines.sort_unstable();
            if seen.insert(lines.clone()) {
                out.push(lines);
            }
        });
        if out.len() >= cfg.max_groups {
            break;
        }
    }
    out
}

/// Calls `f` with every `k`-combination of `0..n` (indices in `buf`).
fn combinations(n: usize, k: usize, buf: &mut [usize], f: &mut impl FnMut(&[usize])) {
    fn rec(
        start: usize,
        depth: usize,
        n: usize,
        k: usize,
        buf: &mut [usize],
        f: &mut impl FnMut(&[usize]),
    ) {
        if depth == k {
            f(buf);
            return;
        }
        for i in start..n {
            buf[depth] = i;
            rec(i + 1, depth + 1, n, k, buf, f);
        }
    }
    if k == 0 {
        f(&[]);
        return;
    }
    if k <= n {
        rec(0, 0, n, k, buf, f);
    }
}

/// Extracts the subsequence of `stream` restricted to `lines` (sorted) by
/// merging per-line position lists — O(total occurrences · log k) instead of
/// a full stream scan per group.
fn merge_substream(
    lines: &[LineId],
    positions: &std::collections::HashMap<LineId, Vec<u32>>,
    stream: &[LineId],
) -> Vec<LineId> {
    let mut pos: Vec<u32> = lines
        .iter()
        .flat_map(|l| positions.get(l).into_iter().flatten().copied())
        .collect();
    pos.sort_unstable();
    pos.into_iter().map(|p| stream[p as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymSeq {
        s.parse().unwrap()
    }

    #[test]
    fn comapping_probabilities() {
        assert!((comapping_probability(5, 8) - (1.0f64 / 8.0).powi(4)).abs() < 1e-15);
        assert!((comapping_probability(3, 64) - (1.0f64 / 64.0).powi(2)).abs() < 1e-15);
        assert_eq!(comapping_probability(1, 8), 1.0);
        assert_eq!(comapping_probability(0, 8), 0.0);
    }

    #[test]
    fn runs_formula_edge_cases() {
        assert_eq!(runs_for_probability(0.0, 1e-9), 0);
        assert_eq!(runs_for_probability(1.0, 1e-9), 0);
        assert_eq!(runs_for_probability(-0.1, 1e-9), 0);
        assert_eq!(runs_for_probability(0.5, 1e-9), 30);
        // Monotonic: higher probability, fewer runs.
        assert!(runs_for_probability(0.01, 1e-9) > runs_for_probability(0.1, 1e-9));
        // Stricter target, more runs.
        assert!(runs_for_probability(0.01, 1e-12) > runs_for_probability(0.01, 1e-9));
    }

    #[test]
    fn paper_section_311_within_set_capacity_needs_no_runs() {
        // {ABCA}^1000: 3 distinct addresses fit in 4 ways.
        let a = analyze_symbolic(&seq("ABCA").repeat(1000), &TacConfig::paper_example());
        assert_eq!(a.unique_lines, 3);
        assert_eq!(a.runs_required, 0);
    }

    #[test]
    fn paper_section_311_pubbed_needs_84872_runs() {
        // {ABCDEA}^1000: 5 addresses, one group, p = (1/8)^4.
        let a = analyze_symbolic(&seq("ABCDEA").repeat(1000), &TacConfig::paper_example());
        assert_eq!(a.unique_lines, 5);
        assert_eq!(a.relevant_groups.len(), 1);
        assert_eq!(a.classes.len(), 1);
        assert_eq!(a.classes[0].group_count, 1);
        // Paper prints R > 84 875 from the rounded p = 0.000244; the exact
        // probability gives 84 873 (within 0.003%).
        assert_eq!(a.runs_required, 84_873);
        let paper = 84_875.0;
        assert!((a.runs_required as f64 - paper).abs() / paper < 1e-3);
    }

    #[test]
    fn paper_section_312_six_groups_need_14137_runs() {
        // {ABCDEFA}^1000: 6 addresses, six 5-of-6 groups, p = 6 * (1/8)^4.
        let a = analyze_symbolic(&seq("ABCDEFA").repeat(1000), &TacConfig::paper_example());
        assert_eq!(a.unique_lines, 6);
        assert_eq!(a.relevant_groups.len(), 6);
        assert_eq!(
            a.classes.len(),
            1,
            "six equally-damaging groups form one class"
        );
        assert_eq!(a.classes[0].group_count, 6);
        // Paper prints R > 14 138 from p = 0.00146; exact gives 14 137.
        assert_eq!(a.runs_required, 14_137);
        let paper = 14_138.0;
        assert!((a.runs_required as f64 - paper).abs() / paper < 1e-3);
    }

    #[test]
    fn non_interleaved_lines_form_no_groups() {
        // Phase A then phase B: AAAA...BBBB... CCC... no interleavings.
        let mut s = seq("A").repeat(50);
        s.extend_with(&seq("B").repeat(50));
        s.extend_with(&seq("C").repeat(50));
        s.extend_with(&seq("D").repeat(50));
        s.extend_with(&seq("E").repeat(50));
        let a = analyze_symbolic(&s, &TacConfig::paper_example());
        assert_eq!(a.unique_lines, 5);
        assert_eq!(a.groups_evaluated, 0);
        assert_eq!(a.runs_required, 0);
    }

    #[test]
    fn short_interleaving_is_below_impact_threshold() {
        // Only two traversals: co-mapping costs at most a few misses, below
        // the default threshold of 4 extra misses.
        let a = analyze_symbolic(&seq("ABCDEA").repeat(2), &TacConfig::paper_example());
        assert_eq!(a.runs_required, 0);
    }

    #[test]
    fn larger_cache_lowers_probability_and_raises_runs() {
        let small = analyze_symbolic(&seq("ABCA").repeat(500), &TacConfig::paper_l1());
        // 3 lines > 2 ways: one group with p = (1/64)^2.
        assert_eq!(small.relevant_groups.len(), 1);
        let expected = runs_for_probability((1.0f64 / 64.0).powi(2), 1e-9);
        assert_eq!(small.runs_required, expected);
        assert!(
            small.runs_required > 84_000,
            "runs = {}",
            small.runs_required
        );
    }

    #[test]
    fn deterministic_in_seed_and_config() {
        let s = seq("ABCDEA").repeat(200);
        let a = analyze_symbolic(&s, &TacConfig::paper_example());
        let b = analyze_symbolic(&s, &TacConfig::paper_example());
        assert_eq!(a, b);
    }

    #[test]
    fn combinations_enumerates_n_choose_k() {
        let mut count = 0;
        let mut buf = vec![0; 3];
        combinations(6, 3, &mut buf, &mut |_| count += 1);
        assert_eq!(count, 20);
        // k = 0 yields exactly the empty combination.
        let mut count0 = 0;
        combinations(4, 0, &mut [], &mut |_| count0 += 1);
        assert_eq!(count0, 1);
        // k > n yields nothing.
        let mut none = 0;
        let mut buf2 = vec![0; 5];
        combinations(3, 5, &mut buf2, &mut |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn prob_floor_excludes_rare_classes() {
        let mut cfg = TacConfig::paper_example();
        cfg.prob_floor = 1e-3; // above (1/8)^4
        let a = analyze_symbolic(&seq("ABCDEA").repeat(1000), &cfg);
        assert!(a.classes.is_empty());
        assert_eq!(a.runs_required, 0);
    }
}

mbcr_json::impl_serialize_struct!(ConflictGroup {
    lines,
    prob,
    extra_misses
});
mbcr_json::impl_serialize_struct!(ImpactClass {
    impact,
    prob,
    group_count,
    runs
});
mbcr_json::impl_serialize_struct!(TacAnalysis {
    unique_lines,
    groups_evaluated,
    relevant_groups,
    classes,
    runs_required,
});
