//! Mälardalen WCET benchmark models in the mbcr IR.
//!
//! The paper evaluates on the Mälardalen suite (Gustafsson et al., WCET'10)
//! "with default input sets, considering them representative of the worst
//! case for loop bounds". This crate models the eleven benchmarks of the
//! paper's Table 2 / Figure 5 — control structure, data layout and
//! input-dependent paths faithful to the C originals, with array sizes
//! scaled where noted so the full campaign suite runs on a laptop:
//!
//! | module | original | scaling | paths |
//! |--------|----------|---------|-------|
//! | [`bs`] | binary search, 15 entries | unchanged | multipath, 8 max-iteration paths (§3.3) |
//! | [`cnt`] | 10×10 matrix count/sum | unchanged | multipath, worst path = default input |
//! | [`fir`] | FIR filter, 700×35 | 64 samples × 8 taps | multipath (saturation), worst = default |
//! | [`janne`] | janne_complex | unchanged | multipath, worst = default |
//! | [`crc`] | CRC-CCITT over 40 bytes | unchanged | multipath, worst path unknown |
//! | [`edn`] | DSP kernels | 64-element vectors | single path |
//! | [`insertsort`] | 10-element insertion sort | unchanged | single path (reversed default) |
//! | [`jfdc`] | jfdctint 8×8 | unchanged | single path |
//! | [`matmult`] | 20×20 matmul | 8×8 | single path |
//! | [`fdct`] | fdct 8×8 | unchanged | single path |
//! | [`ns`] | 5⁴ nested search | unchanged | single path (full scan) |
//!
//! # Examples
//!
//! ```
//! use mbcr_ir::execute;
//!
//! let bench = mbcr_malardalen::bs::benchmark();
//! let run = execute(&bench.program, &bench.default_input).unwrap();
//! assert!(!run.trace.is_empty());
//! ```

pub mod bs;
pub mod cnt;
pub mod crc;
pub mod edn;
pub mod fdct;
pub mod fir;
pub mod insertsort;
pub mod janne;
pub mod jfdc;
pub mod matmult;
pub mod ns;

use mbcr_ir::{Inputs, Program};

/// A named input vector (the paper's `v1`, `v3`, … notation).
#[derive(Debug, Clone)]
pub struct NamedInput {
    /// Vector name.
    pub name: String,
    /// The concrete input values.
    pub inputs: Inputs,
}

/// Path-structure class of a benchmark, as discussed around the paper's
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// No data-dependent control flow (or none under the default input).
    SinglePath,
    /// Multipath, but the default input triggers the worst-case path.
    MultipathWorstKnown,
    /// Multipath with an unknown worst-case path (`crc`).
    MultipathWorstUnknown,
}

/// A packaged benchmark: program, inputs and classification.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's tables).
    pub name: &'static str,
    /// The program model.
    pub program: Program,
    /// The default input set.
    pub default_input: Inputs,
    /// Exploratory input vectors (first one = default-equivalent).
    pub input_vectors: Vec<NamedInput>,
    /// Path-structure class.
    pub class: BenchClass,
}

/// The full suite, in the paper's Table 2 order.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    vec![
        bs::benchmark(),
        cnt::benchmark(),
        fir::benchmark(),
        janne::benchmark(),
        crc::benchmark(),
        edn::benchmark(),
        insertsort::benchmark(),
        jfdc::benchmark(),
        matmult::benchmark(),
        fdct::benchmark(),
        ns::benchmark(),
    ]
}

/// Looks a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn suite_matches_paper_order() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "bs",
                "cnt",
                "fir",
                "janne",
                "crc",
                "edn",
                "insertsort",
                "jfdc",
                "matmult",
                "fdct",
                "ns"
            ]
        );
    }

    #[test]
    fn every_benchmark_runs_on_every_vector() {
        for b in suite() {
            for v in &b.input_vectors {
                let run = execute(&b.program, &v.inputs);
                assert!(run.is_ok(), "{}:{} failed: {:?}", b.name, v.name, run.err());
                assert!(!run.unwrap().trace.is_empty(), "{}:{}", b.name, v.name);
            }
        }
    }

    #[test]
    fn single_path_benchmarks_have_one_vector_class() {
        use std::collections::HashSet;
        for b in suite()
            .into_iter()
            .filter(|b| b.class == BenchClass::SinglePath)
        {
            // "Single path" is a statement about the *default input* (the
            // paper's classification): insertsort and ns have exploratory
            // vectors that deliberately deviate (sortedness / hit position),
            // so the cross-vector check applies to the rest.
            if b.input_vectors.len() == 1 || b.name == "insertsort" || b.name == "ns" {
                continue;
            }
            let lens: HashSet<usize> = b
                .input_vectors
                .iter()
                .map(|v| execute(&b.program, &v.inputs).unwrap().trace.len())
                .collect();
            assert_eq!(lens.len(), 1, "{} should be single-path", b.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("bs").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn default_inputs_differ_in_footprint() {
        // Sanity: the workloads are genuinely different programs.
        use std::collections::HashSet;
        let lens: HashSet<usize> = suite()
            .iter()
            .map(|b| execute(&b.program, &b.default_input).unwrap().trace.len())
            .collect();
        assert!(
            lens.len() >= 10,
            "benchmarks should have distinct trace lengths"
        );
    }
}
