//! # mbcr-shard — distributed sweep sharding and the sweep service
//!
//! Scales sweeps out at stage boundaries: a **service coordinator**
//! owns any number of concurrently submitted sweeps (the engine's
//! [`mbcr_engine::SweepRegistry`]), serves ready stage jobs to TCP
//! **workers** over a length-prefixed [`mbcr_json`] wire protocol,
//! answers **clients** (submit / status / cancel / follow) on the same
//! listener — and, with `--http`, on a zero-dependency HTTP/1.1 + JSON
//! plane (`mbcr-gateway`) that maps the same four verbs onto
//! `POST/GET/DELETE /v1/sweeps` plus a Server-Sent-Events follow stream
//! and a `/v1/metrics` scrape — streams campaign checkpoints back into its
//! content-addressed store as workers produce them, and merges
//! completed stage artifacts — deduplicated by digest within *and
//! across* sweeps, so two sweeps sharing a pub/trace/tac stage execute
//! it once.
//!
//! The design leans entirely on what the engine already guarantees:
//!
//! * stage digests make every intermediate result location-independent —
//!   a job ships as its spec plus the upstream artifacts, nothing more;
//! * campaign chunk logs make *partial* campaign state shippable — a
//!   coordinator re-leasing a dead worker's campaign hands the next
//!   worker the durable prefix, which adopts the in-flight campaign and
//!   re-simulates at most one `checkpoint_interval`;
//! * the shared [`mbcr_engine::JobScheduler`] state machine and
//!   [`mbcr_engine::finalize_sweep`] make the merged manifest, Table 2
//!   CSV and sample logs byte-identical to a single-process `mbcr sweep`
//!   (test-enforced in `tests/shard_sweep.rs`).
//!
//! The `mbcr` binary in this crate fronts everything:
//!
//! ```text
//! mbcr serve  --listen 127.0.0.1:4870 --out runs/service   # daemon
//! mbcr serve  --listen 127.0.0.1:4870 --http 127.0.0.1:8080 \
//!             --spawn-workers 1..8                  # + HTTP/SSE plane
//! mbcr submit --connect 127.0.0.1:4870 --benchmarks bs --priority 3
//! mbcr report --connect 127.0.0.1:4870 --follow            # live stream
//! mbcr report --connect http://127.0.0.1:8080 --follow --sweep s000-bs
//! mbcr coord  --benchmarks bs --listen 127.0.0.1:4870 --out runs/demo
//! mbcr worker --connect 127.0.0.1:4870 --jobs 4        # on any host
//! mbcr sweep  --benchmarks bs --shards 4               # self-hosted
//! mbcr loadgen --sweeps 6 --followers 8                # load-storm bench
//! ```

mod coord;
mod lease;
pub mod lint;
pub mod protocol;
mod worker;

pub use coord::{serve, serve_daemon, serve_daemon_with, CoordSettings, GatewayOptions};
pub use lease::LeaseTable;
pub use lint::{lint_pair, lint_program};
pub use worker::{run_worker, WorkerOutcome};
