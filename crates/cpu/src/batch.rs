//! One-pass multi-layout campaign simulation.
//!
//! [`BatchPlatform`] pairs two [`BatchCache`]s (IL1 + DL1) so one walk of a
//! resolved trace produces the execution times of `W` independent
//! measurement runs. Run `i` of a campaign is seeded
//! `derive_seed(master_seed, i)` regardless of batching, and each layout in
//! the batch consumes exactly the RNG stream its standalone counterpart
//! would, so the `W`-wide output is bit-identical to the serial stream for
//! every `W` — the repo invariant the campaign drivers rely on.

use mbcr_cache::BatchCache;
use mbcr_rng::derive_seed;

use crate::{LatencyConfig, PlatformConfig, ResolvedTrace};

/// `W` independent measurement runs (IL1 + DL1 layouts) advanced per trace
/// access in one pass.
///
/// # Examples
///
/// ```
/// use mbcr_cpu::{campaign, BatchPlatform, PlatformConfig, ResolvedTrace};
/// use mbcr_rng::derive_seed;
/// use mbcr_trace::{Access, Trace};
///
/// let cfg = PlatformConfig::paper_default();
/// let trace: Trace = [Access::fetch(0x0), Access::read(0x8000)].into_iter().collect();
/// let rt = ResolvedTrace::resolve(&cfg, &trace);
/// let seeds: Vec<u64> = (0..8).map(|i| derive_seed(42, i)).collect();
/// let mut batch = BatchPlatform::new(&cfg, &seeds);
/// assert_eq!(batch.run_resolved(&rt), campaign(&cfg, &trace, 8, 42));
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlatform {
    il1: BatchCache,
    dl1: BatchCache,
    latency: LatencyConfig,
    cycles: Vec<u64>,
    seed_scratch: Vec<u64>,
}

impl BatchPlatform {
    /// Builds a batch of `run_seeds.len()` flushed, reseeded platforms;
    /// layout `l` is state-identical to a standalone
    /// [`Platform`](crate::Platform) after `reseed(run_seeds[l])`.
    #[must_use]
    pub fn new(cfg: &PlatformConfig, run_seeds: &[u64]) -> Self {
        let il1_seeds: Vec<u64> = run_seeds.iter().map(|&s| derive_seed(s, 0)).collect();
        let dl1_seeds: Vec<u64> = run_seeds.iter().map(|&s| derive_seed(s, 1)).collect();
        Self {
            il1: BatchCache::new(cfg.il1, cfg.placement, cfg.replacement, &il1_seeds),
            dl1: BatchCache::new(cfg.dl1, cfg.placement, cfg.replacement, &dl1_seeds),
            latency: cfg.latency,
            cycles: vec![0; run_seeds.len()],
            seed_scratch: Vec::with_capacity(run_seeds.len()),
        }
    }

    /// Re-randomizes the batch for the next pass (any width); allocations
    /// are reused, so a campaign driver builds one `BatchPlatform` and
    /// reseeds it per pass.
    pub fn reseed(&mut self, run_seeds: &[u64]) {
        self.seed_scratch.clear();
        self.seed_scratch
            .extend(run_seeds.iter().map(|&s| derive_seed(s, 0)));
        self.il1.reseed(&self.seed_scratch);
        self.seed_scratch.clear();
        self.seed_scratch
            .extend(run_seeds.iter().map(|&s| derive_seed(s, 1)));
        self.dl1.reseed(&self.seed_scratch);
        self.cycles.clear();
        self.cycles.resize(run_seeds.len(), 0);
    }

    /// Number of layouts in the batch.
    #[must_use]
    pub fn width(&self) -> usize {
        self.il1.width()
    }

    /// Executes the resolved trace once, advancing every layout, and
    /// returns the per-layout execution times in seed order. Call after
    /// [`new`](Self::new) or [`reseed`](Self::reseed): entry `l` then equals
    /// `Platform::run_randomized(trace, run_seeds[l])` bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `rt` was resolved for different cache line sizes.
    pub fn run_resolved(&mut self, rt: &ResolvedTrace) -> &[u64] {
        assert!(
            rt.matches(
                self.il1.geometry().line_size(),
                self.dl1.geometry().line_size()
            ),
            "trace resolved for a different geometry"
        );
        self.cycles.fill(0);
        let lat = self.latency;
        for op in rt.ops() {
            if op.instr {
                self.il1.access_line_accum(
                    op.line,
                    lat.issue_cycles + lat.il1_hit,
                    lat.issue_cycles + lat.il1_miss,
                    &mut self.cycles,
                );
            } else {
                self.dl1
                    .access_line_accum(op.line, lat.dl1_hit, lat.dl1_miss, &mut self.cycles);
            }
        }
        &self.cycles
    }
}
