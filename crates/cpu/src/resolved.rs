//! Traces pre-resolved to cache lines.
//!
//! Every access in a [`Trace`] names a byte [`Address`](mbcr_trace::Address);
//! the simulator only ever needs the [`LineId`] it maps to, and that
//! conversion is an integer division by the cache line size. A campaign
//! replays the same trace `R` times, so doing the division inside the run
//! loop pays it `R × len` times. [`ResolvedTrace`] does it once per campaign
//! — fetches quantized by the IL1 line size, loads/stores by the DL1's —
//! and both the serial and batched campaign paths replay the resolved
//! stream.

use mbcr_trace::{AccessKind, LineId, Trace};

use crate::PlatformConfig;

/// One trace access quantized to the cache line it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedOp {
    /// The line the access maps to (IL1 lines for fetches, DL1 for data).
    pub line: LineId,
    /// `true` for instruction fetches (IL1), `false` for loads/stores (DL1).
    pub instr: bool,
}

/// A [`Trace`] with every `Address → LineId` conversion done up front for a
/// specific pair of cache geometries.
#[derive(Debug, Clone)]
pub struct ResolvedTrace {
    ops: Vec<ResolvedOp>,
    il1_line_size: u64,
    dl1_line_size: u64,
}

impl ResolvedTrace {
    /// Resolves `trace` against `cfg`'s IL1/DL1 line sizes.
    #[must_use]
    pub fn resolve(cfg: &PlatformConfig, trace: &Trace) -> Self {
        let il1_line_size = cfg.il1.line_size();
        let dl1_line_size = cfg.dl1.line_size();
        let ops = trace
            .iter()
            .map(|access| match access.kind {
                AccessKind::InstrFetch => ResolvedOp {
                    line: access.addr.line(il1_line_size),
                    instr: true,
                },
                AccessKind::Read | AccessKind::Write => ResolvedOp {
                    line: access.addr.line(dl1_line_size),
                    instr: false,
                },
            })
            .collect();
        Self {
            ops,
            il1_line_size,
            dl1_line_size,
        }
    }

    /// The resolved access stream, in trace order.
    #[must_use]
    pub fn ops(&self) -> &[ResolvedOp] {
        &self.ops
    }

    /// Number of accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns `true` if this resolution is valid for caches with the given
    /// line sizes — replaying it against any other geometry would silently
    /// touch the wrong lines, so the run entry points assert this.
    #[must_use]
    pub fn matches(&self, il1_line_size: u64, dl1_line_size: u64) -> bool {
        self.il1_line_size == il1_line_size && self.dl1_line_size == dl1_line_size
    }
}
