//! `crc` — CRC-CCITT over a 40-byte message, bit by bit (Mälardalen
//! `crc.c`).
//!
//! Multipath: every message bit decides whether the polynomial XOR branch
//! runs. The worst-case path (all 320 bits trigger the XOR) cannot be told
//! from code inspection — the paper singles `crc` out as the benchmark
//! where "we are unable to identify the worst-case path", which is exactly
//! the situation PUB automates away.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Message length in bytes (as in the original).
pub const LEN: u32 = 40;
/// The CCITT polynomial.
pub const POLY: i64 = 0x1021;

/// Builds the `crc` program.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("crc");
    let data = b.array("data", LEN);
    let out = b.array("out", 1);
    let i = b.var("i");
    let j = b.var("j");
    let c = b.var("c");
    let crc = b.var("crc");
    let t = b.var("t");

    b.push(Stmt::Assign(crc, Expr::c(0)));
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(i64::from(LEN)),
        LEN,
        vec![
            Stmt::Assign(c, Expr::load(data, Expr::var(i))),
            Stmt::for_(
                j,
                Expr::c(0),
                Expr::c(8),
                8,
                vec![
                    // t = ((crc >> 15) ^ (c >> (7 - j))) & 1
                    Stmt::Assign(
                        t,
                        Expr::var(crc)
                            .shr(Expr::c(15))
                            .xor(Expr::var(c).shr(Expr::c(7).sub(Expr::var(j))))
                            .and(Expr::c(1)),
                    ),
                    Stmt::Assign(crc, Expr::var(crc).shl(Expr::c(1)).and(Expr::c(0xFFFF))),
                    Stmt::if_(
                        Expr::var(t).ne(Expr::c(0)),
                        vec![Stmt::Assign(crc, Expr::var(crc).xor(Expr::c(POLY)))],
                        vec![],
                    ),
                ],
            ),
        ],
    ));
    b.push(Stmt::store(out, Expr::c(0), Expr::var(crc)));
    b.build().expect("crc is well-formed")
}

fn message_inputs(p: &Program, bytes: Vec<i64>) -> Inputs {
    let data = p.array_by_name("data").expect("data array");
    Inputs::new().with_array(data, bytes)
}

/// Default input: a fixed mixed-content message (the original uses a fixed
/// ASCII string).
#[must_use]
pub fn default_input() -> Inputs {
    let bytes: Vec<i64> = (0..LEN).map(|k| i64::from((k * 37 + 11) % 256)).collect();
    message_inputs(&program(), bytes)
}

/// Default, all-zero (fewest XOR branches) and all-0xFF messages.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    let mixed: Vec<i64> = (0..LEN).map(|k| i64::from((k * 37 + 11) % 256)).collect();
    vec![
        NamedInput {
            name: "mixed".into(),
            inputs: message_inputs(&p, mixed),
        },
        NamedInput {
            name: "zeros".into(),
            inputs: message_inputs(&p, vec![0; LEN as usize]),
        },
        NamedInput {
            name: "ones".into(),
            inputs: message_inputs(&p, vec![0xFF; LEN as usize]),
        },
    ]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "crc",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::MultipathWorstUnknown,
    }
}

/// Reference CRC-CCITT (MSB-first, zero seed) used by the tests.
#[must_use]
pub fn reference(bytes: &[u8]) -> u16 {
    let mut crc: u32 = 0;
    for &byte in bytes {
        for bit in 0..8 {
            let t = ((crc >> 15) ^ (u32::from(byte) >> (7 - bit))) & 1;
            crc = (crc << 1) & 0xFFFF;
            if t != 0 {
                crc ^= 0x1021;
            }
        }
    }
    crc as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn matches_reference_crc() {
        let p = program();
        let out = p.array_by_name("out").unwrap();
        for v in input_vectors() {
            let run = execute(&p, &v.inputs).unwrap();
            let bytes: Vec<u8> = match v.name.as_str() {
                "mixed" => (0..LEN).map(|k| ((k * 37 + 11) % 256) as u8).collect(),
                "zeros" => vec![0u8; LEN as usize],
                "ones" => vec![0xFF; LEN as usize],
                _ => unreachable!(),
            };
            assert_eq!(
                run.state.array(out)[0],
                i64::from(reference(&bytes)),
                "vector {}",
                v.name
            );
        }
    }

    #[test]
    fn zero_message_never_takes_xor_branch() {
        let p = program();
        let run = execute(&p, &message_inputs(&p, vec![0; LEN as usize])).unwrap();
        assert_eq!(run.state.array(p.array_by_name("out").unwrap())[0], 0);
    }

    #[test]
    fn message_content_changes_the_path() {
        let p = program();
        let vecs = input_vectors();
        let a = execute(&p, &vecs[0].inputs).unwrap();
        let b = execute(&p, &vecs[1].inputs).unwrap();
        assert_ne!(a.path.path_id(), b.path.path_id());
    }
}
