//! Local worker autoscaling (`mbcr serve --spawn-workers min..max`).
//!
//! A bang-bang policy driven from the daemon's run loop, roughly one
//! tick per second: any claimable work scales the pool straight to
//! `max` (queue depth says nothing about per-job cost, so there is no
//! point creeping), and a queue that has been empty *and* lease-free
//! for a grace period scales back to `min`. Surplus workers get a
//! SIGTERM — the worker's graceful-drain path, which finishes the
//! in-flight job and flushes its campaign chunk before exiting — and
//! are reaped on later ticks. The policy only ever changes *where* jobs
//! run, never their bytes.

use std::io;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long the queue must stay empty and lease-free before the pool
/// shrinks back to `min` — hysteresis against sawtoothing on the gap
/// between one sweep's last job and the next submission.
const IDLE_GRACE: Duration = Duration::from_secs(5);

struct Pool {
    children: Vec<Child>,
    idle_since: Option<Instant>,
}

pub(super) struct Autoscaler {
    min: usize,
    max: usize,
    pool: Mutex<Pool>,
    /// Live child count, mirrored out of the lock for `/v1/metrics`.
    live: AtomicUsize,
}

impl Autoscaler {
    pub(super) fn new(min: usize, max: usize) -> Self {
        Self {
            min: min.min(max),
            max: max.max(min),
            pool: Mutex::new(Pool {
                children: Vec::new(),
                idle_since: None,
            }),
            live: AtomicUsize::new(0),
        }
    }

    /// Spawned workers currently alive (including ones mid-drain).
    pub(super) fn spawned(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// One policy step: reap exited children, pick a target size from
    /// queue depth, then spawn or drain toward it. `connect` is the
    /// daemon's own binary listener, which spawned workers dial back.
    pub(super) fn tick(&self, ready: usize, leased: usize, now: Instant, connect: &str) {
        let mut pool = self.pool.lock().expect("autoscaler poisoned");
        pool.children
            .retain_mut(|child| !matches!(child.try_wait(), Ok(Some(_))));
        if ready > 0 || leased > 0 {
            pool.idle_since = None;
        }
        let current = pool.children.len();
        let desired = if ready > 0 {
            self.max
        } else if leased == 0 {
            let since = *pool.idle_since.get_or_insert(now);
            if now.duration_since(since) >= IDLE_GRACE {
                self.min
            } else {
                current.max(self.min)
            }
        } else {
            // Leases outstanding but nothing claimable: keep the pool as
            // is; draining mid-job would only requeue work.
            current.max(self.min)
        };
        while pool.children.len() < desired {
            match spawn_worker(connect) {
                Ok(child) => pool.children.push(child),
                Err(e) => {
                    eprintln!("coordinator: spawning a worker failed: {e}");
                    break;
                }
            }
        }
        // Re-signalling a child already draining is harmless; it leaves
        // the vec only once `try_wait` sees it exit.
        for child in pool.children.iter_mut().skip(desired) {
            terminate(child);
        }
        self.live.store(pool.children.len(), Ordering::Relaxed);
    }

    /// Drains and reaps the whole pool (service wind-down).
    pub(super) fn shutdown(&self) {
        let mut pool = self.pool.lock().expect("autoscaler poisoned");
        for child in &mut pool.children {
            terminate(child);
        }
        for child in &mut pool.children {
            let _ = child.wait();
        }
        pool.children.clear();
        self.live.store(0, Ordering::Relaxed);
    }
}

fn spawn_worker(connect: &str) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .args(["worker", "--connect", connect, "--jobs", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// SIGTERM: the worker's graceful-drain signal (see
/// `worker::install_drain_handler`) — it finishes the leased job,
/// flushes its chunk, sends `Drain`, and exits.
#[cfg(unix)]
fn terminate(child: &mut Child) {
    // Declared by hand (no libc crate in the offline workspace); libc
    // itself is already linked by std on every unix target.
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    let Ok(pid) = i32::try_from(child.id()) else {
        return;
    };
    unsafe {
        kill(pid, SIGTERM);
    }
}

/// Without SIGTERM semantics there is no graceful drain; a hard kill
/// only requeues the in-flight job (the lease machinery's normal path).
#[cfg(not(unix))]
fn terminate(child: &mut Child) {
    let _ = child.kill();
}
