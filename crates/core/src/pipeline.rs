//! The combined PUB + TAC + MBPTA pipeline (paper Figure 3).
//!
//! The entry points here are thin wrappers over the stage graph in
//! [`crate::stage`]: each runs an [`AnalysisSession`] to completion with no
//! stage store attached. Drivers that want stage-granular scheduling,
//! caching or resume use the session API directly — both paths produce
//! bit-identical results.

use mbcr_evt::{IidReport, Pwcet};
use mbcr_ir::{Inputs, Program};
use mbcr_pub::PubReport;
use mbcr_tac::TacAnalysis;

use crate::stage::AnalysisSession;
use crate::{AnalysisConfig, AnalyzeError};

/// Plain-MBPTA analysis of the original program (the paper's baseline:
/// "the direct application of MBPTA with neither PUB nor TAC").
#[derive(Debug, Clone)]
pub struct OriginalAnalysis {
    /// Runs until MBPTA convergence (`R_orig`).
    pub r_orig: usize,
    /// Whether convergence was reached within the configured cap.
    pub converged: bool,
    /// The pWCET estimate at the configured exceedance probability.
    pub pwcet_at_exceedance: f64,
    /// The full pWCET curve.
    pub pwcet: Pwcet,
    /// i.i.d. evidence for the final sample.
    pub iid: IidReport,
    /// The trace replayed by the campaign (one path of the original
    /// program).
    pub trace_len: usize,
}

/// Full PUB + TAC analysis of one pubbed path (paper Figure 3).
#[derive(Debug, Clone)]
pub struct PubTacAnalysis {
    /// What PUB inserted.
    pub pub_report: PubReport,
    /// Runs until MBPTA convergence on the pubbed path (`R_pub`).
    pub r_pub: usize,
    /// TAC's requirement over the instruction-cache line stream.
    pub tac_il1: TacAnalysis,
    /// TAC's requirement over the data-cache line stream.
    pub tac_dl1: TacAnalysis,
    /// `R_tac = max(IL1, DL1)` requirement.
    pub r_tac: u64,
    /// `R_pub+tac = max(R_pub, R_tac)` — the paper's combined requirement.
    pub r_pub_tac: u64,
    /// The campaign length actually executed
    /// (`min(R_pub+tac, max_campaign_runs)`, at least `R_pub`).
    pub campaign_runs: usize,
    /// `true` if the campaign was truncated by `max_campaign_runs`.
    pub campaign_capped: bool,
    /// pWCET at the configured exceedance from the `R_pub`-run sample
    /// (the paper's "PUB" column).
    pub pwcet_pub: f64,
    /// pWCET at the configured exceedance from the full campaign
    /// (the paper's "P+T" column).
    pub pwcet_pub_tac: f64,
    /// The pWCET curve of the full campaign.
    pub pwcet: Pwcet,
    /// i.i.d. evidence for the full campaign.
    pub iid: IidReport,
    /// The execution times of the full campaign (for ECCDF plots).
    pub sample: Vec<u64>,
    /// Length of the pubbed path's trace.
    pub trace_len: usize,
}

/// Multipath analysis: several pubbed paths, combined per Corollary 2.
#[derive(Debug, Clone)]
pub struct MultipathAnalysis {
    /// Per-input analyses, in input order.
    pub per_input: Vec<(String, PubTacAnalysis)>,
    /// The per-exceedance minimum across paths (Corollary 2: every pubbed
    /// path's estimate is reliable, so the lowest is the tightest).
    pub best_pwcet: f64,
    /// Name of the input achieving the minimum.
    pub best_input: String,
}

/// Analyses the original program with plain MBPTA (no PUB, no TAC): runs
/// the convergence procedure on the path exercised by `input`.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn analyze_original(
    program: &Program,
    input: &Inputs,
    cfg: &AnalysisConfig,
) -> Result<OriginalAnalysis, AnalyzeError> {
    AnalysisSession::original(program, input, cfg).finish_original()
}

/// Runs the paper's full pipeline (Figure 3) on the path of the *pubbed*
/// program selected by `input`:
///
/// 1. apply PUB;
/// 2. execute the pubbed program once to obtain the path's address
///    sequence;
/// 3. apply TAC to the IL1 and DL1 line streams → `R_tac`;
/// 4. run the MBPTA convergence procedure → `R_pub`;
/// 5. execute `max(R_pub, R_tac)` randomized measurement runs (capped by
///    [`AnalysisConfig::max_campaign_runs`]);
/// 6. fit the pWCET.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn analyze_pub_tac(
    program: &Program,
    input: &Inputs,
    cfg: &AnalysisConfig,
) -> Result<PubTacAnalysis, AnalyzeError> {
    AnalysisSession::pub_tac(program, input, cfg).finish_pub_tac()
}

/// Analyses several pubbed paths and combines them per Corollary 2: every
/// path's estimate upper-bounds all original paths, so the tightest (lowest)
/// is kept.
///
/// # Errors
///
/// See [`AnalyzeError`]; in particular [`AnalyzeError::EmptyInputs`] when
/// `inputs` is empty (Corollary 2 has nothing to combine).
pub fn analyze_multipath(
    program: &Program,
    inputs: &[(String, Inputs)],
    cfg: &AnalysisConfig,
) -> Result<MultipathAnalysis, AnalyzeError> {
    if inputs.is_empty() {
        return Err(AnalyzeError::EmptyInputs);
    }
    let mut per_input = Vec::with_capacity(inputs.len());
    for (name, input) in inputs {
        let analysis = analyze_pub_tac(program, input, cfg)?;
        per_input.push((name.clone(), analysis));
    }
    let (best_input, best_pwcet) = per_input
        .iter()
        .map(|(n, a)| (n.clone(), a.pwcet_pub_tac))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty inputs");
    Ok(MultipathAnalysis {
        per_input,
        best_pwcet,
        best_input,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{Expr, ProgramBuilder, Stmt};

    /// A small two-path program with enough cache footprint to vary.
    fn demo_program() -> (Program, mbcr_ir::Var) {
        let mut b = ProgramBuilder::new("demo");
        let big = b.array("big", 256);
        let x = b.var("x");
        let acc = b.var("acc");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(32),
            32,
            vec![Stmt::Assign(
                acc,
                Expr::var(acc).add(Expr::load(big, Expr::var(i).mul(Expr::c(8)))),
            )],
        ));
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(
                acc,
                Expr::var(acc).add(Expr::load(big, Expr::c(7))),
            )],
            vec![Stmt::Assign(acc, Expr::var(acc).sub(Expr::c(1)))],
        ));
        (b.build().unwrap(), x)
    }

    fn quick_cfg() -> AnalysisConfig {
        AnalysisConfig::builder()
            .seed(99)
            .quick()
            .threads(2)
            .build()
    }

    #[test]
    fn original_analysis_converges() {
        let (p, x) = demo_program();
        let cfg = quick_cfg();
        let a = analyze_original(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap();
        assert!(a.r_orig >= 200);
        assert!(a.pwcet_at_exceedance > 0.0);
        assert!(a.trace_len > 0);
    }

    #[test]
    fn pub_tac_analysis_is_complete_and_consistent() {
        let (p, x) = demo_program();
        let cfg = quick_cfg();
        let a = analyze_pub_tac(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap();
        assert_eq!(a.sample.len(), a.campaign_runs);
        assert!(a.r_pub_tac >= a.r_pub as u64);
        assert!(a.r_pub_tac >= a.r_tac);
        assert!(a.pwcet_pub_tac > 0.0);
        // The pubbed program inflated the conditional.
        assert_eq!(a.pub_report.constructs.len(), 1);
    }

    #[test]
    fn campaign_cap_is_honoured() {
        let (p, x) = demo_program();
        let cfg = AnalysisConfig::builder()
            .seed(3)
            .quick()
            .max_campaign_runs(800)
            .build();
        let a = analyze_pub_tac(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap();
        assert!(a.campaign_runs <= 800);
        if a.r_pub_tac > 800 {
            assert!(a.campaign_capped);
        }
    }

    #[test]
    fn multipath_takes_the_minimum() {
        let (p, x) = demo_program();
        let cfg = quick_cfg();
        let inputs = vec![
            ("pos".to_string(), Inputs::new().with_var(x, 1)),
            ("neg".to_string(), Inputs::new().with_var(x, -1)),
        ];
        let m = analyze_multipath(&p, &inputs, &cfg).unwrap();
        assert_eq!(m.per_input.len(), 2);
        let min = m
            .per_input
            .iter()
            .map(|(_, a)| a.pwcet_pub_tac)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(m.best_pwcet, min);
        assert!(m.per_input.iter().any(|(n, _)| *n == m.best_input));
    }

    #[test]
    fn multipath_rejects_empty_inputs() {
        let (p, _) = demo_program();
        let cfg = quick_cfg();
        assert!(matches!(
            analyze_multipath(&p, &[], &cfg),
            Err(AnalyzeError::EmptyInputs)
        ));
    }

    #[test]
    fn deterministic_across_invocations() {
        let (p, x) = demo_program();
        let cfg = quick_cfg();
        let a = analyze_pub_tac(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap();
        let b = analyze_pub_tac(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap();
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.pwcet_pub_tac, b.pwcet_pub_tac);
        assert_eq!(a.r_pub, b.r_pub);
    }
}

mbcr_json::impl_serialize_struct!(OriginalAnalysis {
    r_orig,
    converged,
    pwcet_at_exceedance,
    pwcet,
    iid,
    trace_len,
});
mbcr_json::impl_serialize_struct!(PubTacAnalysis {
    pub_report,
    r_pub,
    tac_il1,
    tac_dl1,
    r_tac,
    r_pub_tac,
    campaign_runs,
    campaign_capped,
    pwcet_pub,
    pwcet_pub_tac,
    pwcet,
    iid,
    sample,
    trace_len,
});
mbcr_json::impl_serialize_struct!(MultipathAnalysis {
    per_input,
    best_pwcet,
    best_input
});
