//! Exponential-tail pWCET fitting via the coefficient of variation — the
//! MBPTA-CV method (Abella et al., ACM TODAES'17) referenced by the paper as
//! its MBPTA engine.
//!
//! The method models the distribution's tail above a threshold `u` as
//! exponential: `P(X > u + y | X > u) = exp(−y/σ)`. For excesses of an
//! exponential distribution the coefficient of variation (CV = std/mean)
//! equals 1; the fit therefore scans candidate tail sizes and selects the
//! largest one whose excesses have CV within the ±1.96/√n asymptotic
//! confidence band around 1. An exponential tail is the recommended
//! (stable, over-approximating) model for pWCET estimation [Abella'17,
//! Palma RTSS'17].

use crate::stats::{mean, std_dev};

/// Error fitting a tail model.
#[derive(Debug, Clone, PartialEq)]
pub enum EvtError {
    /// Fewer samples than the method needs.
    NotEnoughData {
        /// Minimum required sample size.
        needed: usize,
        /// Provided sample size.
        got: usize,
    },
    /// The sample has (near-)zero variance: a deterministic platform.
    /// pWCET estimation degenerates to the observed constant — represent it
    /// with [`crate::TailModel::Degenerate`] instead of a fit.
    DegenerateSample,
}

impl std::fmt::Display for EvtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvtError::NotEnoughData { needed, got } => {
                write!(
                    f,
                    "not enough data: need at least {needed} samples, got {got}"
                )
            }
            EvtError::DegenerateSample => {
                write!(
                    f,
                    "sample variance is zero: execution time is deterministic"
                )
            }
        }
    }
}

impl std::error::Error for EvtError {}

/// Configuration of the CV tail search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConfig {
    /// Smallest tail size considered.
    pub min_tail: usize,
    /// Largest tail fraction of the sample considered (e.g. 0.25 → top
    /// quarter).
    pub max_tail_fraction: f64,
    /// Confidence multiplier for the CV acceptance band (1.96 ≈ 95%).
    pub z: f64,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            min_tail: 25,
            max_tail_fraction: 0.25,
            z: 1.96,
        }
    }
}

/// A fitted exponential tail: `P(X > x) = ζ · exp(−(x − u)/σ)` for `x ≥ u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpTailFit {
    /// Tail threshold (an order statistic of the sample).
    pub u: f64,
    /// Tail scale (mean excess over `u`).
    pub sigma: f64,
    /// Empirical exceedance probability of `u` (tail fraction).
    pub zeta: f64,
    /// Number of tail samples used.
    pub n_tail: usize,
    /// CV of the excesses at the selected threshold.
    pub cv: f64,
    /// `true` if no threshold passed the CV test and the closest-to-1
    /// candidate was used (estimate flagged, not rejected — consistent with
    /// MBPTA practice of reporting the fit quality).
    pub forced: bool,
}

impl ExpTailFit {
    /// The pWCET value at per-run exceedance probability `p`.
    ///
    /// For `p ≥ ζ` the threshold itself is returned (callers combine the
    /// fit with the empirical body via [`crate::Pwcet`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "exceedance probability must be in (0, 1)"
        );
        if p >= self.zeta {
            return self.u;
        }
        self.u + self.sigma * (self.zeta / p).ln()
    }

    /// The modelled exceedance probability of value `x`.
    #[must_use]
    pub fn exceedance(&self, x: f64) -> f64 {
        if x <= self.u {
            return self.zeta;
        }
        self.zeta * (-(x - self.u) / self.sigma).exp()
    }
}

/// Fits an exponential tail to a sample by the CV method.
///
/// # Errors
///
/// * [`EvtError::NotEnoughData`] if the sample has fewer than
///   `4 * cfg.min_tail` values;
/// * [`EvtError::DegenerateSample`] if the candidate tails have zero
///   variance (deterministic execution times).
pub fn fit_exp_tail(sample: &[f64], cfg: &TailConfig) -> Result<ExpTailFit, EvtError> {
    let n = sample.len();
    let needed = cfg.min_tail * 4;
    if n < needed {
        return Err(EvtError::NotEnoughData { needed, got: n });
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);

    let max_tail = ((n as f64 * cfg.max_tail_fraction) as usize).max(cfg.min_tail);
    // Geometric sweep of candidate tail sizes, largest first (more tail data
    // preferred when accepted).
    let mut candidates = Vec::new();
    let mut t = max_tail;
    while t >= cfg.min_tail {
        candidates.push(t);
        t = (t * 4) / 5;
        if t == 0 {
            break;
        }
    }

    let mut best: Option<ExpTailFit> = None;
    let mut all_degenerate = true;
    for &nt in &candidates {
        // Threshold just below the tail (nt <= n/4, so the index is valid).
        let u = sorted[n - nt - 1];
        let excesses: Vec<f64> = sorted[n - nt..].iter().map(|&x| x - u).collect();
        let m = mean(&excesses);
        if m <= 0.0 {
            continue; // all tail values tied with the threshold
        }
        all_degenerate = false;
        let cv = std_dev(&excesses) / m;
        let band = cfg.z / (nt as f64).sqrt();
        let fit = ExpTailFit {
            u,
            sigma: m,
            zeta: nt as f64 / n as f64,
            n_tail: nt,
            cv,
            forced: false,
        };
        if (cv - 1.0).abs() <= band {
            return Ok(fit);
        }
        match &best {
            Some(b) if (b.cv - 1.0).abs() <= (cv - 1.0).abs() => {}
            _ => {
                best = Some(ExpTailFit {
                    forced: true,
                    ..fit
                })
            }
        }
    }
    if all_degenerate {
        return Err(EvtError::DegenerateSample);
    }
    best.ok_or(EvtError::DegenerateSample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_rng::{Rng64, Xoshiro256PlusPlus};

    fn exp_sample(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        (0..n).map(|_| 100.0 + rng.exponential(rate)).collect()
    }

    #[test]
    fn recovers_exponential_quantiles() {
        // Pure shifted exponential: quantile at p is 100 + ln(1/p)/rate.
        let rate = 0.05;
        let sample = exp_sample(20_000, rate, 42);
        let fit = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        assert!(!fit.forced, "CV test should accept an exponential tail");
        for p in [1e-6, 1e-9, 1e-12] {
            let estimated = fit.quantile(p);
            let truth = 100.0 + (1.0 / p).ln() / rate;
            let rel = (estimated - truth).abs() / truth;
            assert!(rel < 0.15, "p={p}: est {estimated:.1} vs truth {truth:.1}");
        }
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        let sample = exp_sample(5_000, 0.1, 7);
        let fit = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        let q9 = fit.quantile(1e-9);
        let q12 = fit.quantile(1e-12);
        assert!(q12 > q9);
        assert!(fit.quantile(0.9) <= q9);
    }

    #[test]
    fn exceedance_inverts_quantile() {
        let sample = exp_sample(5_000, 0.1, 9);
        let fit = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        for p in [1e-4, 1e-7, 1e-10] {
            let x = fit.quantile(p);
            assert!((fit.exceedance(x) - p).abs() / p < 1e-9);
        }
    }

    #[test]
    fn not_enough_data_error() {
        let err = fit_exp_tail(&[1.0; 10], &TailConfig::default()).unwrap_err();
        assert!(matches!(err, EvtError::NotEnoughData { .. }));
        assert!(err.to_string().contains("not enough data"));
    }

    #[test]
    fn degenerate_sample_error() {
        let sample = vec![500.0; 1000];
        let err = fit_exp_tail(&sample, &TailConfig::default()).unwrap_err();
        assert_eq!(err, EvtError::DegenerateSample);
    }

    #[test]
    fn heavy_tail_is_flagged_forced() {
        // A very heavy (Pareto-like) tail: CV of excesses > 1 at all sizes.
        let mut rng = Xoshiro256PlusPlus::from_seed(3);
        let sample: Vec<f64> = (0..20_000)
            .map(|_| {
                let u = (1.0 - rng.next_f64()).max(1e-12);
                100.0 * u.powf(-2.0) // alpha = 0.5: infinite variance
            })
            .collect();
        let fit = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        assert!(fit.forced, "CV = {} should fail the band", fit.cv);
        assert!(fit.cv > 1.0);
    }

    #[test]
    fn fit_is_deterministic() {
        let sample = exp_sample(5_000, 0.2, 11);
        let a = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        let b = fit_exp_tail(&sample, &TailConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

mbcr_json::impl_serialize_struct!(ExpTailFit {
    u,
    sigma,
    zeta,
    n_tail,
    cv,
    forced
});
