//! The `mbcr lint` engine: static PUB-soundness checks over a benchmark.
//!
//! Linting a program runs the full static tool-chain the `mbcr-ir`
//! analysis layer provides, in three layers:
//!
//! 1. **Structure** — the program is lowered to a CFG and its dominator
//!    tree / natural loops are cross-checked against the AST
//!    ([`Analysis::validate`]); findings surface as `IR001`.
//! 2. **Transform** — the PUB pipeline (`shape → widen → touch-insert →
//!    verify`) runs with the paper configuration; a pipeline failure
//!    carries its own structured diagnostics (the verify stage re-checks
//!    branch balance with [`verify_balance`]).
//! 3. **Pairing** — the original program is embedded into the transformed
//!    one ([`verify_pair`]): anything inserted must be innocuous
//!    (`PUB003`), and loop bounds must survive untouched (`PUB004`).
//!
//! The CLI prints each [`Diagnostic`](mbcr_ir::Diagnostic) with its stable
//! code and exits nonzero when any check fails; the unit tests below seed
//! violations into transformed programs and pin the codes the lint
//! reports, so a regression in either the transform or the verifier shows
//! up as a changed code, not a silent pass.

use mbcr_ir::{verify_balance, verify_pair, Analysis, Cfg, DiagCode, Diagnostics, Program};
use mbcr_pub::{pub_pipeline, PubConfig};

/// Lints one source program end-to-end: structural validation, the PUB
/// pipeline under `cfg`, and original-vs-transformed pairing. Empty
/// diagnostics mean the program (and its transform) verified clean.
#[must_use]
pub fn lint_program(program: &Program, cfg: &PubConfig) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let cfg_lowered = Cfg::of(program);
    let analysis = Analysis::of(&cfg_lowered);
    for finding in analysis.validate(&cfg_lowered, program.body()) {
        diags.push(DiagCode::InvalidProgram, None, finding);
    }
    match pub_pipeline(cfg).run(program) {
        Ok(pubbed) => extend(&mut diags, lint_pair(program, &pubbed)),
        Err(pipeline_diags) => extend(&mut diags, pipeline_diags),
    }
    diags
}

/// Lints an already-transformed program against its original: branch
/// balance on the transformed side ([`verify_balance`]) plus the
/// insertion-only embedding check ([`verify_pair`]). This is the entry
/// point for auditing a *stored* pubbed artifact, where re-running the
/// transform would only verify the transform, not the artifact.
#[must_use]
pub fn lint_pair(orig: &Program, pubbed: &Program) -> Diagnostics {
    let mut diags = verify_balance(pubbed);
    extend(&mut diags, verify_pair(orig, pubbed));
    diags
}

fn extend(into: &mut Diagnostics, from: Diagnostics) {
    for d in &from {
        into.push(d.code, d.construct, d.message.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{ArrayId, Expr, ProgramBuilder, Stmt};
    use mbcr_pub::pub_transform;

    fn branchy_program() -> Program {
        let mut b = ProgramBuilder::new("branchy");
        let m = b.array("m", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![
                Stmt::Assign(y, Expr::load(m, Expr::c(0))),
                Stmt::Assign(y, Expr::load(m, Expr::c(1))),
            ],
            vec![Stmt::Assign(y, Expr::load(m, Expr::c(2)))],
        ));
        b.build().unwrap()
    }

    fn pubbed(orig: &Program) -> Program {
        pub_transform(orig, &PubConfig::paper()).unwrap().program
    }

    /// Replaces the statement at `path` in the program body (top level
    /// only — the seeded mutations below all target top-level constructs).
    fn with_body<F: FnOnce(&mut Vec<Stmt>)>(p: &Program, mutate: F) -> Program {
        let mut body = p.body().to_vec();
        mutate(&mut body);
        p.with_body(body).unwrap()
    }

    #[test]
    fn clean_program_lints_clean() {
        let d = lint_program(&branchy_program(), &PubConfig::paper());
        assert!(d.is_empty(), "unexpected findings: {d}");
    }

    #[test]
    fn whole_suite_lints_clean() {
        for b in mbcr_malardalen::suite() {
            let d = lint_program(&b.program, &PubConfig::paper());
            assert!(d.is_empty(), "{}: {d}", b.name);
        }
    }

    #[test]
    fn seeded_arm_imbalance_reports_pub001() {
        let orig = branchy_program();
        let tampered = with_body(&pubbed(&orig), |body| {
            // Pad one arm further: the arms now differ in instruction
            // footprint.
            let Stmt::If { then_branch, .. } = &mut body[0] else {
                panic!("expected the conditional first");
            };
            then_branch.push(Stmt::Nop { count: 8 });
        });
        let codes = lint_pair(&orig, &tampered).codes();
        assert!(codes.contains(&DiagCode::Pub001), "got {codes:?}");
    }

    #[test]
    fn seeded_non_innocuous_insert_reports_pub003() {
        let orig = branchy_program();
        let tampered = with_body(&pubbed(&orig), |body| {
            // A store is never innocuous: it changes program state.
            body.push(Stmt::store(ArrayId(0), Expr::c(0), Expr::c(7)));
        });
        let codes = lint_pair(&orig, &tampered).codes();
        assert!(codes.contains(&DiagCode::Pub003), "got {codes:?}");
    }

    #[test]
    fn seeded_dropped_statement_reports_pub003() {
        let orig = branchy_program();
        let tampered = with_body(&pubbed(&orig), |body| {
            let Stmt::If {
                then_branch,
                else_branch,
                ..
            } = &mut body[0]
            else {
                panic!("expected the conditional first");
            };
            // Drop a real load from *both* arms: balance still holds if we
            // drop symmetrically, but the original no longer embeds.
            then_branch.remove(0);
            else_branch.remove(0);
        });
        let codes = lint_pair(&orig, &tampered).codes();
        assert!(codes.contains(&DiagCode::Pub003), "got {codes:?}");
    }

    #[test]
    fn seeded_loop_bound_change_reports_pub004() {
        let mut b = ProgramBuilder::new("looped");
        let m = b.array("m", 8);
        let (i, acc) = (b.var("i"), b.var("acc"));
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(4),
            4,
            vec![Stmt::Assign(acc, Expr::load(m, Expr::var(i)))],
        ));
        let orig = b.build().unwrap();
        let tampered = with_body(&pubbed(&orig), |body| {
            let Stmt::For { to, .. } = &mut body[0] else {
                panic!("expected the loop first");
            };
            *to = Expr::c(6);
        });
        let codes = lint_pair(&orig, &tampered).codes();
        assert!(codes.contains(&DiagCode::Pub004), "got {codes:?}");
    }
}
