//! Ball–Larus path numbering with the bounded-loop (k-iteration) extension.
//!
//! Classic Ball–Larus profiling numbers the acyclic paths of a CFG by
//! assigning every block the count of paths from it to the exit
//! (`PathsFrom`), and every branch edge an increment — the sum of
//! `PathsFrom` over its earlier sibling successors — so that summing the
//! increments along any entry→exit path yields a distinct integer in
//! `[0, PathsFrom(entry))`, a *bijection* between paths and path ids.
//!
//! Loops make the graph cyclic, so classic BL cuts back edges and counts
//! loop-free fragments. This module instead applies the multi-iteration
//! extension (D'Elia & Demetrescu): every loop carries a static bound
//! `max_iter`, so the *whole-run* path space is finite, and a loop header
//! can be treated as a single collapsed node of weight
//!
//! ```text
//! W(header) = Σ_{k ∈ S} B^k
//! ```
//!
//! where `B` is the number of paths through one body iteration and `S` the
//! feasible iteration set (`{0..=max_iter}` for a `while`; a singleton
//! `{span}` for a `for` whose bounds constant-fold). Within the weight, the
//! iteration count `k` and the per-iteration body choices form a
//! mixed-radix digit `offset(k) + Σ_j b_j·B^(k-j)`; across the collapsed
//! acyclic graph the digits combine positionally exactly as BL increments
//! do. The resulting id is a bijection between [`PathRecord`]s and
//! `[0, num_paths)` — [`PathSpace::index_of`] and [`PathSpace::record_of`]
//! are exact inverses, replacing trust in the FNV fingerprint
//! ([`PathRecord::path_id`]) with arithmetic.
//!
//! Path counts use saturating `u128` arithmetic: several Mälardalen kernels
//! have astronomically many static paths (`cnt` ≈ 2^101 — still indexable),
//! and anything beyond 2^128 is reported as [saturated](PathSpace::is_saturated)
//! rather than silently wrong.

use std::fmt;

use crate::analysis::const_eval;
use crate::layout::INSTRS_PER_LINE;
use crate::paths::{Decision, PathRecord};
use crate::program::Program;
use crate::stmt::Stmt;

/// Errors from path encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path count exceeds `u128`; indexing is unavailable.
    Saturated,
    /// A path index ≥ the total path count.
    IndexOutOfRange {
        /// The offending index.
        index: u128,
        /// Total number of static paths.
        total: u128,
    },
    /// A [`PathRecord`] does not correspond to any static path of the
    /// program (wrong construct ids, infeasible iteration count, trailing
    /// or missing decisions).
    RecordMismatch {
        /// What went wrong.
        detail: String,
    },
    /// More static paths than the requested enumeration cap.
    TooManyPaths {
        /// Total number of static paths.
        total: u128,
        /// The requested cap.
        cap: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Saturated => write!(f, "path count exceeds u128"),
            PathError::IndexOutOfRange { index, total } => {
                write!(f, "path index {index} out of range (total {total})")
            }
            PathError::RecordMismatch { detail } => {
                write!(f, "path record does not match the program: {detail}")
            }
            PathError::TooManyPaths { total, cap } => {
                write!(f, "{total} static paths exceed the enumeration cap {cap}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// The static architectural signature of one path: how many instruction
/// slots it fetches and how many data accesses it emits. Both are exact —
/// for any run following the path, `instr_fetches` equals the trace's fetch
/// count and `data_accesses` its read+write count (expressions have no
/// short-circuit operators, so access counts are path-determined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathSignature {
    /// Instruction fetches (line-quantized spans, as emitted).
    pub instr_fetches: u64,
    /// Data reads + writes.
    pub data_accesses: u64,
}

/// One statically enumerated path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPath {
    /// Ball–Larus path id, in `[0, num_paths)`.
    pub index: u128,
    /// The decision sequence of the path.
    pub record: PathRecord,
    /// The path's instruction/access signature.
    pub signature: PathSignature,
}

/// Feasible iteration counts of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IterSet {
    /// Any count in `0..=bound` (a `while`, or a `for` with non-constant
    /// bounds).
    UpTo(u32),
    /// Exactly this count (a `for` whose bounds constant-fold; clamped to
    /// the declared `max_iter` — a larger span faults at run time and is
    /// flagged by the verifier).
    Exact(u32),
}

impl IterSet {
    fn contains(self, k: u32) -> bool {
        match self {
            IterSet::UpTo(m) => k <= m,
            IterSet::Exact(e) => k == e,
        }
    }

    fn iter_counts(self) -> impl Iterator<Item = u32> {
        match self {
            IterSet::UpTo(m) => 0..=m,
            IterSet::Exact(e) => e..=e,
        }
    }
}

/// The decision tree of one statement, annotated with path counts.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    Leaf {
        instrs: u64,
        data: u64,
    },
    If {
        id: u32,
        header_instrs: u64,
        header_data: u64,
        then_s: Seq,
        else_s: Seq,
    },
    Loop {
        id: u32,
        /// Header span fetched on every check (`while` cond, `for` iter).
        check_instrs: u64,
        /// Data accesses of every check (`while` cond loads; 0 for `for`).
        check_data: u64,
        /// One-time prelude (`for` init span; 0 for `while`, whose header
        /// *is* the check).
        init_instrs: u64,
        init_data: u64,
        iters: IterSet,
        body: Seq,
        /// Cached `Σ_{k ∈ iters} body.paths^k`.
        paths: u128,
    },
}

impl Shape {
    fn paths(&self) -> u128 {
        match self {
            Shape::Leaf { .. } => 1,
            Shape::If { then_s, else_s, .. } => then_s.paths.saturating_add(else_s.paths),
            Shape::Loop { paths, .. } => *paths,
        }
    }
}

/// A statement sequence with its cached path count (product of members).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Seq {
    shapes: Vec<Shape>,
    paths: u128,
}

/// The static path space of one program: total count plus the bijective
/// `PathRecord ↔ path id` mapping.
///
/// # Examples
///
/// ```
/// use mbcr_ir::{execute, Expr, Inputs, PathSpace, ProgramBuilder, Stmt};
///
/// let mut b = ProgramBuilder::new("abs");
/// let (x, y) = (b.var("x"), b.var("y"));
/// b.push(Stmt::if_(
///     Expr::var(x).lt(Expr::c(0)),
///     vec![Stmt::Assign(y, Expr::var(x).neg())],
///     vec![Stmt::Assign(y, Expr::var(x))],
/// ));
/// let p = b.build()?;
/// let space = PathSpace::of(&p);
/// assert_eq!(space.num_paths(), 2);
/// let run = execute(&p, &Inputs::new().with_var(x, -3)).unwrap();
/// let id = space.index_of(&run.path).unwrap();
/// assert_eq!(space.record_of(id).unwrap(), run.path); // bijection
/// # Ok::<(), mbcr_ir::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpace {
    top: Seq,
    saturated: bool,
}

impl PathSpace {
    /// Computes the path space of a program.
    #[must_use]
    pub fn of(program: &Program) -> PathSpace {
        let mut builder = Builder {
            next_id: 0,
            saturated: false,
        };
        let top = builder.build_seq(program.body());
        PathSpace {
            top,
            saturated: builder.saturated,
        }
    }

    /// Total number of static paths (saturating at `u128::MAX`).
    #[must_use]
    pub fn num_paths(&self) -> u128 {
        self.top.paths
    }

    /// `true` when the true count exceeds `u128` — enumeration and
    /// indexing are unavailable.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// The Ball–Larus path id of an interpreter-observed record.
    ///
    /// # Errors
    ///
    /// [`PathError::Saturated`] when counts overflow `u128`;
    /// [`PathError::RecordMismatch`] when the record does not describe a
    /// static path of this program.
    pub fn index_of(&self, record: &PathRecord) -> Result<u128, PathError> {
        if self.saturated {
            return Err(PathError::Saturated);
        }
        let mut cur = Cursor {
            decisions: record.decisions(),
            pos: 0,
        };
        let idx = encode_seq(&self.top, &mut cur)?;
        if cur.pos != cur.decisions.len() {
            return Err(PathError::RecordMismatch {
                detail: format!(
                    "{} trailing decisions after the program ends",
                    cur.decisions.len() - cur.pos
                ),
            });
        }
        Ok(idx)
    }

    /// The decision record of path id `index` — the inverse of
    /// [`PathSpace::index_of`].
    ///
    /// # Errors
    ///
    /// [`PathError::Saturated`] / [`PathError::IndexOutOfRange`].
    pub fn record_of(&self, index: u128) -> Result<PathRecord, PathError> {
        if self.saturated {
            return Err(PathError::Saturated);
        }
        if index >= self.top.paths {
            return Err(PathError::IndexOutOfRange {
                index,
                total: self.top.paths,
            });
        }
        let mut rec = PathRecord::new();
        decode_seq(&self.top, index, &mut rec);
        Ok(rec)
    }

    /// The instruction/access signature of the path a record describes.
    ///
    /// # Errors
    ///
    /// [`PathError::RecordMismatch`] when the record does not describe a
    /// static path of this program.
    pub fn signature_of(&self, record: &PathRecord) -> Result<PathSignature, PathError> {
        let mut cur = Cursor {
            decisions: record.decisions(),
            pos: 0,
        };
        let mut sig = PathSignature::default();
        sig_seq(&self.top, &mut cur, &mut sig)?;
        if cur.pos != cur.decisions.len() {
            return Err(PathError::RecordMismatch {
                detail: format!(
                    "{} trailing decisions after the program ends",
                    cur.decisions.len() - cur.pos
                ),
            });
        }
        Ok(sig)
    }

    /// `true` when the record describes a static path of this program
    /// (valid construct ids, feasible iteration counts, no missing or
    /// trailing decisions). Unlike [`PathSpace::index_of`] this works even
    /// on [saturated](PathSpace::is_saturated) spaces — membership is a
    /// structural walk, not arithmetic.
    #[must_use]
    pub fn contains(&self, record: &PathRecord) -> bool {
        self.signature_of(record).is_ok()
    }

    /// Materializes every static path (id, record, signature), in id order.
    ///
    /// # Errors
    ///
    /// [`PathError::Saturated`] when the count overflows `u128`, or
    /// [`PathError::TooManyPaths`] when it exceeds `cap` — exponential path
    /// spaces must be *indexed*, not enumerated.
    pub fn enumerate_paths(&self, cap: usize) -> Result<Vec<StaticPath>, PathError> {
        if self.saturated {
            return Err(PathError::Saturated);
        }
        if self.top.paths > cap as u128 {
            return Err(PathError::TooManyPaths {
                total: self.top.paths,
                cap,
            });
        }
        let mut out = Vec::with_capacity(self.top.paths as usize);
        for index in 0..self.top.paths {
            let record = self.record_of(index)?;
            let signature = self.signature_of(&record)?;
            out.push(StaticPath {
                index,
                record,
                signature,
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Construction

struct Builder {
    next_id: u32,
    saturated: bool,
}

fn quant(instrs: u32) -> u64 {
    u64::from(instrs.next_multiple_of(INSTRS_PER_LINE.max(1)))
}

fn leaf_data(s: &Stmt) -> u64 {
    match s {
        Stmt::Assign(_, e) => u64::from(e.load_count()),
        Stmt::Store { index, value, .. } => {
            u64::from(index.load_count()) + u64::from(value.load_count()) + 1
        }
        Stmt::Touch { refs, .. } => refs.len() as u64,
        Stmt::Nop { .. } => 0,
        _ => unreachable!("leaf_data on a structured statement"),
    }
}

impl Builder {
    fn sat_add(&mut self, a: u128, b: u128) -> u128 {
        a.checked_add(b).unwrap_or_else(|| {
            self.saturated = true;
            u128::MAX
        })
    }

    fn sat_mul(&mut self, a: u128, b: u128) -> u128 {
        a.checked_mul(b).unwrap_or_else(|| {
            self.saturated = true;
            u128::MAX
        })
    }

    fn sat_pow(&mut self, base: u128, exp: u32) -> u128 {
        let mut acc: u128 = 1;
        for _ in 0..exp {
            acc = self.sat_mul(acc, base);
            if self.saturated {
                break;
            }
        }
        acc
    }

    /// `Σ_{k ∈ iters} base^k` — the loop node's Ball–Larus weight.
    fn loop_weight(&mut self, base: u128, iters: IterSet) -> u128 {
        match iters {
            IterSet::Exact(k) => self.sat_pow(base, k),
            IterSet::UpTo(m) => {
                if base == 1 {
                    return u128::from(m) + 1;
                }
                let mut total: u128 = 0;
                let mut term: u128 = 1;
                for _ in 0..=m {
                    total = self.sat_add(total, term);
                    if self.saturated {
                        break;
                    }
                    term = self.sat_mul(term, base);
                    if self.saturated {
                        // The remaining terms only grow; the sum saturates.
                        return u128::MAX;
                    }
                }
                total
            }
        }
    }

    fn build_seq(&mut self, stmts: &[Stmt]) -> Seq {
        let shapes: Vec<Shape> = stmts.iter().map(|s| self.build_shape(s)).collect();
        let mut paths: u128 = 1;
        for s in &shapes {
            paths = self.sat_mul(paths, s.paths());
        }
        Seq { shapes, paths }
    }

    fn build_shape(&mut self, s: &Stmt) -> Shape {
        match s {
            Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {
                Shape::Leaf {
                    instrs: quant(s.own_instr_count()),
                    data: leaf_data(s),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let id = self.next_id;
                self.next_id += 1;
                let then_s = self.build_seq(then_branch);
                let else_s = self.build_seq(else_branch);
                Shape::If {
                    id,
                    header_instrs: quant(s.own_instr_count()),
                    header_data: u64::from(cond.load_count()),
                    then_s,
                    else_s,
                }
            }
            Stmt::While {
                cond,
                max_iter,
                body,
            } => {
                let id = self.next_id;
                self.next_id += 1;
                let body_s = self.build_seq(body);
                let iters = IterSet::UpTo(*max_iter);
                let paths = self.loop_weight(body_s.paths, iters);
                Shape::Loop {
                    id,
                    check_instrs: quant(s.own_instr_count()),
                    check_data: u64::from(cond.load_count()),
                    init_instrs: 0,
                    init_data: 0,
                    iters,
                    body: body_s,
                    paths,
                }
            }
            Stmt::For {
                from,
                to,
                max_iter,
                body,
                ..
            } => {
                let id = self.next_id;
                self.next_id += 1;
                let body_s = self.build_seq(body);
                let iters = match (const_eval(from), const_eval(to)) {
                    (Some(lo), Some(hi)) => {
                        let span = (hi - lo).max(0).min(i64::from(*max_iter)) as u32;
                        IterSet::Exact(span)
                    }
                    _ => IterSet::UpTo(*max_iter),
                };
                let paths = self.loop_weight(body_s.paths, iters);
                Shape::Loop {
                    id,
                    check_instrs: quant(2),
                    check_data: 0,
                    init_instrs: quant(s.own_instr_count()),
                    init_data: u64::from(from.load_count()) + u64::from(to.load_count()),
                    iters,
                    body: body_s,
                    paths,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding (PathRecord → id)

struct Cursor<'a> {
    decisions: &'a [Decision],
    pos: usize,
}

impl Cursor<'_> {
    fn next_branch(&mut self, id: u32) -> Result<bool, PathError> {
        match self.decisions.get(self.pos) {
            Some(&Decision::Branch { id: did, taken }) if did == id => {
                self.pos += 1;
                Ok(taken)
            }
            other => Err(PathError::RecordMismatch {
                detail: format!("expected branch decision for conditional {id}, got {other:?}"),
            }),
        }
    }

    /// Iteration count of loop `id`: the first exit record with that id at
    /// or after the cursor. Sound because a loop cannot nest within itself,
    /// so no *other* construct between here and the exit record shares the
    /// id.
    fn scan_loop_iters(&self, id: u32) -> Result<u32, PathError> {
        self.decisions[self.pos..]
            .iter()
            .find_map(|d| match *d {
                Decision::Loop { id: did, iters } if did == id => Some(iters),
                _ => None,
            })
            .ok_or_else(|| PathError::RecordMismatch {
                detail: format!("no exit record for loop {id}"),
            })
    }

    fn expect_loop(&mut self, id: u32, iters: u32) -> Result<(), PathError> {
        match self.decisions.get(self.pos) {
            Some(&Decision::Loop { id: did, iters: k }) if did == id && k == iters => {
                self.pos += 1;
                Ok(())
            }
            other => Err(PathError::RecordMismatch {
                detail: format!(
                    "expected exit record for loop {id} after {iters} iterations, got {other:?}"
                ),
            }),
        }
    }
}

/// Positional combination across a sequence: the digit of each statement is
/// weighted by the path counts of the statements after it — exactly the sum
/// of Ball–Larus edge increments along the collapsed acyclic graph.
fn encode_seq(seq: &Seq, cur: &mut Cursor<'_>) -> Result<u128, PathError> {
    let mut idx: u128 = 0;
    for shape in &seq.shapes {
        idx = idx * shape.paths() + encode_shape(shape, cur)?;
    }
    Ok(idx)
}

fn encode_shape(shape: &Shape, cur: &mut Cursor<'_>) -> Result<u128, PathError> {
    match shape {
        Shape::Leaf { .. } => Ok(0),
        Shape::If {
            id, then_s, else_s, ..
        } => {
            if cur.next_branch(*id)? {
                encode_seq(then_s, cur)
            } else {
                // The else edge's BL increment is the then-side path count.
                Ok(then_s.paths + encode_seq(else_s, cur)?)
            }
        }
        Shape::Loop {
            id, iters, body, ..
        } => {
            let k = cur.scan_loop_iters(*id)?;
            if !iters.contains(k) {
                return Err(PathError::RecordMismatch {
                    detail: format!("loop {id} ran {k} iterations, infeasible for {iters:?}"),
                });
            }
            let mut inner: u128 = 0;
            for _ in 0..k {
                inner = inner * body.paths + encode_seq(body, cur)?;
            }
            cur.expect_loop(*id, k)?;
            Ok(loop_offset(body.paths, *iters, k) + inner)
        }
    }
}

/// `Σ_{j ∈ iters, j < k} B^j` — the digit offset of iteration count `k`.
fn loop_offset(base: u128, iters: IterSet, k: u32) -> u128 {
    let mut off: u128 = 0;
    for j in iters.iter_counts() {
        if j >= k {
            break;
        }
        off += base.pow(j);
    }
    off
}

// ---------------------------------------------------------------------------
// Decoding (id → PathRecord)

fn decode_seq(seq: &Seq, mut idx: u128, rec: &mut PathRecord) {
    // Suffix products give each statement's place value.
    let mut place: Vec<u128> = vec![1; seq.shapes.len()];
    for i in (0..seq.shapes.len().saturating_sub(1)).rev() {
        place[i] = place[i + 1] * seq.shapes[i + 1].paths();
    }
    for (shape, p) in seq.shapes.iter().zip(place) {
        let digit = idx / p;
        idx %= p;
        decode_shape(shape, digit, rec);
    }
}

fn decode_shape(shape: &Shape, q: u128, rec: &mut PathRecord) {
    match shape {
        Shape::Leaf { .. } => debug_assert_eq!(q, 0),
        Shape::If {
            id, then_s, else_s, ..
        } => {
            if q < then_s.paths {
                rec.push(Decision::Branch {
                    id: *id,
                    taken: true,
                });
                decode_seq(then_s, q, rec);
            } else {
                rec.push(Decision::Branch {
                    id: *id,
                    taken: false,
                });
                decode_seq(else_s, q - then_s.paths, rec);
            }
        }
        Shape::Loop {
            id, iters, body, ..
        } => {
            // Find the iteration count whose digit band contains q.
            let mut k = 0;
            let mut off: u128 = 0;
            for j in iters.iter_counts() {
                let width = body.paths.pow(j);
                if q < off + width {
                    k = j;
                    break;
                }
                off += width;
            }
            let mut r = q - off;
            // Most-significant iteration first (matches encode order).
            for i in 0..k {
                let p = body.paths.pow(k - 1 - i);
                decode_seq(body, r / p, rec);
                r %= p;
            }
            rec.push(Decision::Loop { id: *id, iters: k });
        }
    }
}

// ---------------------------------------------------------------------------
// Signatures

fn sig_seq(seq: &Seq, cur: &mut Cursor<'_>, sig: &mut PathSignature) -> Result<(), PathError> {
    for shape in &seq.shapes {
        sig_shape(shape, cur, sig)?;
    }
    Ok(())
}

fn sig_shape(
    shape: &Shape,
    cur: &mut Cursor<'_>,
    sig: &mut PathSignature,
) -> Result<(), PathError> {
    match shape {
        Shape::Leaf { instrs, data } => {
            sig.instr_fetches += instrs;
            sig.data_accesses += data;
        }
        Shape::If {
            id,
            header_instrs,
            header_data,
            then_s,
            else_s,
        } => {
            sig.instr_fetches += header_instrs;
            sig.data_accesses += header_data;
            if cur.next_branch(*id)? {
                sig_seq(then_s, cur, sig)?;
            } else {
                sig_seq(else_s, cur, sig)?;
            }
        }
        Shape::Loop {
            id,
            check_instrs,
            check_data,
            init_instrs,
            init_data,
            iters,
            body,
            ..
        } => {
            let k = cur.scan_loop_iters(*id)?;
            if !iters.contains(k) {
                return Err(PathError::RecordMismatch {
                    detail: format!("loop {id} ran {k} iterations, infeasible for {iters:?}"),
                });
            }
            sig.instr_fetches += init_instrs;
            sig.data_accesses += init_data;
            // The check runs k+1 times (k successes + the failing one).
            sig.instr_fetches += check_instrs * (u64::from(k) + 1);
            sig.data_accesses += check_data * (u64::from(k) + 1);
            for _ in 0..k {
                sig_seq(body, cur, sig)?;
            }
            cur.expect_loop(*id, k)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::interp::{execute, Inputs};
    use crate::program::ProgramBuilder;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn straight_line_has_one_path() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, c(1)));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert_eq!(space.num_paths(), 1);
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(space.index_of(&run.path).unwrap(), 0);
        assert_eq!(space.record_of(0).unwrap(), run.path);
    }

    #[test]
    fn nested_ifs_count_and_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::if_(
                Expr::var(x).gt(c(5)),
                vec![Stmt::Assign(y, c(1))],
                vec![Stmt::Assign(y, c(2))],
            )],
            vec![Stmt::Assign(y, c(3))],
        ));
        b.push(Stmt::if_(Expr::var(y).gt(c(1)), vec![], vec![]));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        // (2 + 1) inner arms × trailing if = 3 * 2.
        assert_eq!(space.num_paths(), 6);
        // Exhaustive bijection check.
        for i in 0..6u128 {
            let rec = space.record_of(i).unwrap();
            assert_eq!(space.index_of(&rec).unwrap(), i);
        }
        // Distinct records.
        let recs: Vec<PathRecord> = (0..6).map(|i| space.record_of(i).unwrap()).collect();
        for (i, a) in recs.iter().enumerate() {
            for b2 in &recs[i + 1..] {
                assert_ne!(a, b2);
            }
        }
    }

    #[test]
    fn while_loop_paths_sum_over_iterations() {
        // while body has an if: B = 2, max_iter = 3 → 1+2+4+8 = 15 paths.
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let y = b.var("y");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(3)),
            3,
            vec![
                Stmt::if_(
                    Expr::var(y).gt(c(0)),
                    vec![Stmt::Assign(y, c(0))],
                    vec![Stmt::Assign(y, c(1))],
                ),
                Stmt::Assign(i, Expr::var(i).add(c(1))),
            ],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert_eq!(space.num_paths(), 15);
        for i in 0..15u128 {
            let rec = space.record_of(i).unwrap();
            assert_eq!(space.index_of(&rec).unwrap(), i, "roundtrip of {rec}");
        }
        // An actual run maps into the space.
        let run = execute(&p, &Inputs::new().with_var(y, 1)).unwrap();
        let id = space.index_of(&run.path).unwrap();
        assert_eq!(space.record_of(id).unwrap(), run.path);
    }

    #[test]
    fn const_for_bounds_collapse_to_one_count() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let s = b.var("s");
        b.push(Stmt::for_(
            i,
            c(0),
            c(5),
            5,
            vec![Stmt::Assign(s, Expr::var(s).add(Expr::var(i)))],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert_eq!(space.num_paths(), 1, "constant bounds: single path");
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(space.index_of(&run.path).unwrap(), 0);
        assert_eq!(space.record_of(0).unwrap(), run.path);
    }

    #[test]
    fn variable_for_bounds_span_all_counts() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let n = b.var("n");
        let s = b.var("s");
        b.push(Stmt::for_(
            i,
            c(0),
            Expr::var(n),
            4,
            vec![Stmt::Assign(s, Expr::var(s).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert_eq!(space.num_paths(), 5, "0..=4 iterations feasible");
        for v in 0..=4 {
            let run = execute(&p, &Inputs::new().with_var(n, v)).unwrap();
            let id = space.index_of(&run.path).unwrap();
            assert_eq!(space.record_of(id).unwrap(), run.path);
        }
    }

    #[test]
    fn signatures_match_interpreter_traces() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(y, Expr::load(a, c(0)))],
            vec![Stmt::store(a, c(1), c(9))],
        ));
        b.push(Stmt::while_(
            Expr::var(i).lt(Expr::var(x)),
            6,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        for v in [-1, 0, 2, 6] {
            let run = execute(&p, &Inputs::new().with_var(x, v)).unwrap();
            let sig = space.signature_of(&run.path).unwrap();
            assert_eq!(
                sig.instr_fetches as usize,
                run.trace.instr_fetches().count(),
                "x = {v}"
            );
            assert_eq!(
                sig.instr_fetches + sig.data_accesses,
                run.trace.len() as u64,
                "x = {v}"
            );
        }
    }

    #[test]
    fn enumerate_is_bounded_and_ordered() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(Expr::var(x).gt(c(0)), vec![], vec![]));
        b.push(Stmt::if_(Expr::var(x).gt(c(1)), vec![], vec![]));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        let paths = space.enumerate_paths(16).unwrap();
        assert_eq!(paths.len(), 4);
        for (i, sp) in paths.iter().enumerate() {
            assert_eq!(sp.index, i as u128);
        }
        assert_eq!(
            space.enumerate_paths(3).unwrap_err(),
            PathError::TooManyPaths { total: 4, cap: 3 }
        );
    }

    #[test]
    fn mismatched_records_are_rejected() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(Expr::var(x).gt(c(0)), vec![], vec![]));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        // Wrong construct id.
        let mut bad = PathRecord::new();
        bad.push(Decision::Branch { id: 7, taken: true });
        assert!(matches!(
            space.index_of(&bad),
            Err(PathError::RecordMismatch { .. })
        ));
        // Trailing decision.
        let mut long = PathRecord::new();
        long.push(Decision::Branch { id: 0, taken: true });
        long.push(Decision::Branch { id: 0, taken: true });
        assert!(matches!(
            space.index_of(&long),
            Err(PathError::RecordMismatch { .. })
        ));
        // Infeasible iteration count.
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(2)),
            2,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        let mut over = PathRecord::new();
        over.push(Decision::Loop { id: 0, iters: 9 });
        assert!(matches!(
            space.index_of(&over),
            Err(PathError::RecordMismatch { .. })
        ));
    }

    #[test]
    fn exponential_spaces_saturate_cleanly() {
        // 2^200 paths: nested bounded loops of ifs.
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let i = b.var("i");
        let body: Vec<Stmt> = vec![
            Stmt::if_(
                Expr::var(x).gt(c(0)),
                vec![Stmt::Assign(x, c(0))],
                vec![Stmt::Assign(x, c(1))],
            );
            1
        ];
        b.push(Stmt::while_(Expr::var(i).lt(c(200)), 200, body));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert!(space.is_saturated());
        assert_eq!(space.num_paths(), u128::MAX);
        assert_eq!(
            space.index_of(&PathRecord::new()),
            Err(PathError::Saturated)
        );
        assert_eq!(space.record_of(0), Err(PathError::Saturated));
    }

    #[test]
    fn deep_but_unsaturated_space_still_indexes() {
        // B = 2 per iteration, 100 iterations max: Σ 2^k = 2^101 - 1 < 2^128.
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(100)),
            100,
            vec![
                Stmt::if_(
                    Expr::var(x).gt(c(0)),
                    vec![Stmt::Assign(x, c(0))],
                    vec![Stmt::Assign(x, c(1))],
                ),
                Stmt::Assign(i, Expr::var(i).add(c(1))),
            ],
        ));
        let p = b.build().unwrap();
        let space = PathSpace::of(&p);
        assert!(!space.is_saturated());
        assert_eq!(space.num_paths(), (1u128 << 101) - 1);
        let run = execute(&p, &Inputs::new().with_var(x, 1)).unwrap();
        let id = space.index_of(&run.path).unwrap();
        assert_eq!(space.record_of(id).unwrap(), run.path);
    }
}
