//! Span tracing: RAII guards over the monotonic clock, kept on
//! thread-local stacks so nested spans know their depth, fanning out on
//! completion to the metric registry, the flight recorder, and (while a
//! capture is active) the Chrome-trace sink.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use mbcr_json::Json;

use crate::{enabled, now_ns, recorder, registry, trace};

/// What a span measures. The set is closed on purpose: every kind maps to
/// one histogram, keeping metric cardinality bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One engine stage executing (`mbcr-engine`'s `execute_stage`).
    StageExecute,
    /// A worker waiting to claim work from the scheduler (idle time).
    SchedulerClaim,
    /// One wire frame encoded and sent, or received and decoded.
    WireFrame,
    /// One HTTP request handled by the service plane.
    HttpRequest,
    /// One SSE event rendered and written to a follower.
    SseEmit,
    /// One campaign sample chunk appended to a store.
    CampaignChunk,
}

impl SpanKind {
    /// The kind's wire name (used as the Chrome-trace category).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::StageExecute => "stage-execute",
            SpanKind::SchedulerClaim => "scheduler-claim",
            SpanKind::WireFrame => "wire-frame",
            SpanKind::HttpRequest => "http-request",
            SpanKind::SseEmit => "sse-emit",
            SpanKind::CampaignChunk => "campaign-chunk",
        }
    }

    /// The histogram this kind's durations land in.
    #[must_use]
    pub fn metric(self) -> &'static str {
        match self {
            SpanKind::StageExecute => "mbcr_stage_execute_seconds",
            SpanKind::SchedulerClaim => "mbcr_scheduler_claim_seconds",
            SpanKind::WireFrame => "mbcr_wire_frame_seconds",
            SpanKind::HttpRequest => "mbcr_http_request_seconds",
            SpanKind::SseEmit => "mbcr_sse_emit_seconds",
            SpanKind::CampaignChunk => "mbcr_campaign_chunk_seconds",
        }
    }

    fn all() -> &'static [SpanKind] {
        &[
            SpanKind::StageExecute,
            SpanKind::SchedulerClaim,
            SpanKind::WireFrame,
            SpanKind::HttpRequest,
            SpanKind::SseEmit,
            SpanKind::CampaignChunk,
        ]
    }

    /// Parses a wire name back into a kind.
    #[must_use]
    pub fn parse(name: &str) -> Option<SpanKind> {
        SpanKind::all().iter().copied().find(|k| k.name() == name)
    }
}

/// Small per-thread identity for timeline grouping: threads get ordinals
/// in the order they first record a span.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

thread_local! {
    /// Depth of the thread-local span stack (how many guards are live).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A finished span, as stored in the flight recorder and trace sink.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    pub kind: SpanKind,
    /// Low-cardinality name (stage kind, route pattern, frame direction).
    /// Doubles as the metric label and the Chrome-trace event name.
    pub name: String,
    /// Free-form key/value details (job labels, byte counts, digests).
    pub fields: Vec<(String, String)>,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Thread ordinal (see the timeline `tid`).
    pub tid: u64,
    /// Nesting depth on its thread's span stack at start (0 = root).
    pub depth: u32,
}

impl SpanEvent {
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), self.kind.name().into()),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "fields".into(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("start_ns".into(), Json::UInt(self.start_ns)),
            ("dur_ns".into(), Json::UInt(self.dur_ns)),
            ("tid".into(), Json::UInt(self.tid)),
            ("depth".into(), Json::UInt(u64::from(self.depth))),
        ])
    }
}

/// Opens a span of `kind`. `name` must be low cardinality — it becomes a
/// metric label. High-cardinality detail goes in [`SpanGuard::field`].
/// While telemetry is disabled this returns an inert guard whose whole
/// lifecycle is one atomic load.
#[must_use]
pub fn span(kind: SpanKind, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard(Some(SpanEvent {
        kind,
        name: name.into(),
        fields: Vec::new(),
        start_ns: now_ns(),
        dur_ns: 0,
        tid: thread_ordinal(),
        depth,
    }))
}

/// RAII handle for an open span; records on drop.
#[derive(Debug)]
pub struct SpanGuard(Option<SpanEvent>);

impl SpanGuard {
    /// Attaches a key/value field. No-op on inert guards.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        if let Some(event) = self.0.as_mut() {
            event.fields.push((key.to_string(), value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut event) = self.0.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        event.dur_ns = now_ns().saturating_sub(event.start_ns);
        registry::global()
            .histogram(event.kind.metric(), &[("name", &event.name)])
            .record(event.dur_ns);
        trace::sink_event(&event);
        recorder::recorder().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn kind_names_round_trip() {
        for kind in SpanKind::all() {
            assert_eq!(SpanKind::parse(kind.name()), Some(*kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn disabled_spans_are_inert_and_balance_depth() {
        let _lock = crate::test_guard();
        set_enabled(false);
        let before = DEPTH.with(Cell::get);
        {
            let _g = span(SpanKind::HttpRequest, "/v1/test").field("k", "v");
        }
        assert_eq!(DEPTH.with(Cell::get), before);
    }

    #[test]
    fn nested_spans_report_depth() {
        let _lock = crate::test_guard();
        set_enabled(true);
        let outer = span(SpanKind::HttpRequest, "outer-depth-test");
        let inner = span(SpanKind::SseEmit, "inner-depth-test");
        let inner_depth = inner.0.as_ref().unwrap().depth;
        let outer_depth = outer.0.as_ref().unwrap().depth;
        assert_eq!(inner_depth, outer_depth + 1);
        drop(inner);
        drop(outer);
        set_enabled(false);
    }
}
