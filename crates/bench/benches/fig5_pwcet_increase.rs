//! Paper Figure 5 — pWCET estimates of PUB and PUB+TAC relative to plain
//! MBPTA on the original program (user-provided inputs).
//!
//! The paper's observed shape:
//!
//! * multipath benchmarks whose default input already hits the worst path
//!   (`bs`, `cnt`, `fir`, `janne`): PUB adds 4–59% pessimism;
//! * `crc` (worst path unknown): PUB adds ~340% — it is covering unobserved
//!   paths;
//! * single-path benchmarks (`edn`, `insertsort`, `jfdc`, `matmult`,
//!   `fdct`, `ns`): PUB is innocuous (ratio ≈ 1);
//! * TAC on top of PUB mostly shifts estimates a little either way, raises
//!   them where extra runs expose new layouts (`edn`, `jfdc` in the paper),
//!   and can *lower* them when a much longer campaign homogenizes the tail
//!   (`ns`, −15% in the paper).

use mbcr::analyze_pub_tac;
use mbcr_bench::{banner, harness_config, scaled, write_csv, Table};
use mbcr_cpu::campaign_parallel;
use mbcr_evt::{Dither, FitMethod, Pwcet, TailConfig};
use mbcr_ir::execute;
use mbcr_malardalen::BenchClass;
use mbcr_pub::pub_transform;

fn main() {
    banner("Figure 5: pWCET of PUB and PUB+TAC relative to original MBPTA");
    let cfg = harness_config(0xF165);
    // The PUB-vs-original comparison extrapolates two tails at 1e-12;
    // sizing both baseline campaigns equally keeps the extrapolation
    // variance from dominating the ratios (see EXPERIMENTS.md).
    let baseline_runs = scaled(20_000);

    let fit = |sample: &[u64]| {
        Pwcet::fit(
            sample,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::Uniform { seed: 5 },
        )
        .expect("fit")
    };

    let mut t = Table::new(&["benchmark", "class", "pWCET orig", "PUB/orig", "P+T/orig"]);
    let mut rows = Vec::new();
    let mut single_path_ok = true;

    for b in mbcr_malardalen::suite() {
        let orig_trace = execute(&b.program, &b.default_input)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name))
            .trace;
        let pub_trace = {
            let pubbed = pub_transform(&b.program, &cfg.pub_cfg).expect("pub");
            execute(&pubbed.program, &b.default_input)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name))
                .trace
        };
        let orig_sample = campaign_parallel(
            &cfg.platform,
            &orig_trace,
            baseline_runs,
            0xF165,
            cfg.threads,
        );
        let pub_sample = campaign_parallel(
            &cfg.platform,
            &pub_trace,
            baseline_runs,
            0xF165,
            cfg.threads,
        );
        let pt = analyze_pub_tac(&b.program, &b.default_input, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));

        let base = fit(&orig_sample).quantile(cfg.exceedance);
        let r_pub = fit(&pub_sample).quantile(cfg.exceedance) / base;
        let r_pt = pt.pwcet_pub_tac / base;
        let class = match b.class {
            BenchClass::SinglePath => "single-path",
            BenchClass::MultipathWorstKnown => "multi (worst known)",
            BenchClass::MultipathWorstUnknown => "multi (worst UNKNOWN)",
        };
        t.row(&[
            b.name,
            class,
            &format!("{base:.0}"),
            &format!("{r_pub:.2}x"),
            &format!("{r_pt:.2}x"),
        ]);
        rows.push(format!(
            "{},{},{base:.1},{r_pub:.4},{r_pt:.4}",
            b.name, class
        ));

        if b.class == BenchClass::SinglePath && !(0.85..=1.25).contains(&r_pub) {
            single_path_ok = false;
            println!("NOTE: single-path {} has PUB ratio {r_pub:.2}", b.name);
        }
    }
    t.print();

    println!(
        "\npaper shape: PUB adds 4-59% on worst-path-known multipath benchmarks, ~4.4x on crc, \
         ~1.0x on single-path ones; PUB+TAC then shifts estimates where new layouts appear."
    );
    println!(
        "single-path benchmarks kept PUB ratio near 1.0: {}",
        if single_path_ok {
            "YES"
        } else {
            "SEE NOTES ABOVE"
        }
    );

    let path = write_csv(
        "fig5_pwcet_increase.csv",
        "benchmark,class,pwcet_orig,ratio_pub,ratio_pub_tac",
        &rows,
    );
    println!("rows written to {}", path.display());
}
