//! Xoshiro256++: the workhorse generator of the simulators.

use crate::{Rng64, SplitMix64};

/// Xoshiro256++ by Blackman & Vigna (2019).
///
/// 256-bit state, period 2²⁵⁶ − 1, excellent statistical quality, and around
/// one nanosecond per output — the cache simulator draws one victim way per
/// miss, so the generator sits on the hot path of every measurement campaign.
///
/// # Examples
///
/// ```
/// use mbcr_rng::{Rng64, Xoshiro256PlusPlus};
/// let mut a = Xoshiro256PlusPlus::from_seed(1);
/// let mut b = Xoshiro256PlusPlus::from_seed(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// 256-bit state with [`SplitMix64`] (the procedure recommended by the
    /// algorithm's authors).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self::from_state(s)
    }

    /// Creates a generator from an explicit 256-bit state.
    ///
    /// An all-zero state is invalid for the xoshiro family (it is a fixed
    /// point); it is replaced by a fixed non-zero state so the generator
    /// never silently degenerates.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // Expansion of seed 0; any fixed non-zero value works.
            return Self::from_seed(0xBAD_5EED);
        }
        Self { s }
    }

    /// Returns the current internal state (useful for checkpointing).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advances the generator 2¹²⁸ steps (the authors' `jump()` polynomial),
    /// producing a stream guaranteed non-overlapping with the parent for up
    /// to 2¹²⁸ outputs. Useful for long-running parallel campaigns.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl Rng64 for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain C implementation
    /// (xoshiro256plusplus.c) with state {1, 2, 3, 4}.
    #[test]
    fn reference_vector_state_1234() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_state_is_replaced() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // Must not return an endless stream of zeros.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn jump_changes_stream() {
        let mut a = Xoshiro256PlusPlus::from_seed(99);
        let mut b = a;
        b.jump();
        let xa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn monobit_balance() {
        // Population count over many outputs should average ~32 bits set.
        let mut rng = Xoshiro256PlusPlus::from_seed(1234);
        let n = 10_000;
        let ones: u64 = (0..n).map(|_| u64::from(rng.next_u64().count_ones())).sum();
        let avg = ones as f64 / n as f64;
        assert!((avg - 32.0).abs() < 0.25, "avg set bits = {avg}");
    }

    #[test]
    fn serial_correlation_is_low() {
        let mut rng = Xoshiro256PlusPlus::from_seed(77);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let num: f64 = xs.windows(2).map(|w| w[0] * w[1]).sum();
        let den: f64 = xs.iter().map(|x| x * x).sum();
        let rho = num / den;
        assert!(rho.abs() < 0.02, "lag-1 autocorrelation = {rho}");
    }
}
