//! `fdct` — fast discrete cosine transform on an 8×8 block (Mälardalen
//! `fdct.c`).
//!
//! Same problem as [`crate::jfdc`] but a different implementation (AAN-style
//! schedule: fewer multiplications, different temporary structure), giving
//! the suite two single-path kernels with distinct cache footprints — as in
//! the paper's Table 2, where `fdct` and `jfdc` report different run
//! requirements.

use mbcr_ir::{ArrayId, Expr, Inputs, Program, ProgramBuilder, Stmt, Var};

use crate::{BenchClass, Benchmark, NamedInput};

/// Block side length.
pub const DIM: u32 = 8;

/// AAN scale factors (fixed point, 2^10).
pub const A1: i64 = 724; // 1/sqrt(2)
/// `cos(pi/8) * sqrt(2)` style factor.
pub const A2: i64 = 1338;
/// Rotation factor.
pub const A3: i64 = 554;

struct Tmp {
    s07: Var,
    s16: Var,
    s25: Var,
    s34: Var,
    d07: Var,
    d16: Var,
    d25: Var,
    d34: Var,
}

fn lane_pass(block: ArrayId, lane: Var, t: &Tmp, idx: impl Fn(Expr, i64) -> Expr) -> Stmt {
    let l = |k: i64| Expr::load(block, idx(Expr::var(lane), k));
    let s = |k: i64, e: Expr| Stmt::store(block, idx(Expr::var(lane), k), e);
    Stmt::for_(
        lane,
        Expr::c(0),
        Expr::c(i64::from(DIM)),
        DIM,
        vec![
            Stmt::Assign(t.s07, l(0).add(l(7))),
            Stmt::Assign(t.d07, l(0).sub(l(7))),
            Stmt::Assign(t.s16, l(1).add(l(6))),
            Stmt::Assign(t.d16, l(1).sub(l(6))),
            Stmt::Assign(t.s25, l(2).add(l(5))),
            Stmt::Assign(t.d25, l(2).sub(l(5))),
            Stmt::Assign(t.s34, l(3).add(l(4))),
            Stmt::Assign(t.d34, l(3).sub(l(4))),
            // AAN: additions first, three multiplications at the end.
            s(
                0,
                Expr::var(t.s07)
                    .add(Expr::var(t.s34))
                    .add(Expr::var(t.s16))
                    .add(Expr::var(t.s25)),
            ),
            s(
                4,
                Expr::var(t.s07)
                    .add(Expr::var(t.s34))
                    .sub(Expr::var(t.s16).add(Expr::var(t.s25))),
            ),
            s(
                2,
                Expr::var(t.s07)
                    .sub(Expr::var(t.s34))
                    .mul(Expr::c(A2))
                    .shr(Expr::c(10)),
            ),
            s(
                6,
                Expr::var(t.s16)
                    .sub(Expr::var(t.s25))
                    .mul(Expr::c(A3))
                    .shr(Expr::c(10)),
            ),
            s(
                1,
                Expr::var(t.d07)
                    .add(Expr::var(t.d16))
                    .mul(Expr::c(A1))
                    .shr(Expr::c(10)),
            ),
            s(5, Expr::var(t.d25).add(Expr::var(t.d34)).shl(Expr::c(1))),
            s(3, Expr::var(t.d16).sub(Expr::var(t.d25))),
            s(7, Expr::var(t.d34).sub(Expr::var(t.d07))),
        ],
    )
}

/// Builds the `fdct` program: row pass then column pass.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("fdct");
    let block = b.array("block", DIM * DIM);
    let lane = b.var("lane");
    let t = Tmp {
        s07: b.var("s07"),
        s16: b.var("s16"),
        s25: b.var("s25"),
        s34: b.var("s34"),
        d07: b.var("d07"),
        d16: b.var("d16"),
        d25: b.var("d25"),
        d34: b.var("d34"),
    };
    let dim = i64::from(DIM);
    b.push(lane_pass(block, lane, &t, move |i, k| {
        i.mul(Expr::c(dim)).add(Expr::c(k))
    }));
    b.push(lane_pass(block, lane, &t, move |i, k| {
        Expr::c(k * dim).add(i)
    }));
    b.build().expect("fdct is well-formed")
}

/// Default input: a deterministic gradient block.
#[must_use]
pub fn default_input() -> Inputs {
    let p = program();
    let block = p.array_by_name("block").expect("block");
    Inputs::new().with_array(
        block,
        (0..DIM * DIM)
            .map(|k| i64::from(k / DIM) * 16 - 56)
            .collect(),
    )
}

/// Single-path: one canonical vector.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    vec![NamedInput {
        name: "default".into(),
        inputs: default_input(),
    }]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fdct",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn zero_block_stays_zero() {
        let p = program();
        let block = p.array_by_name("block").unwrap();
        let run = execute(
            &p,
            &Inputs::new().with_array(block, vec![0; (DIM * DIM) as usize]),
        )
        .unwrap();
        assert!(run.state.array(block).iter().all(|&v| v == 0));
    }

    #[test]
    fn is_single_path() {
        let p = program();
        let block = p.array_by_name("block").unwrap();
        let alt = Inputs::new().with_array(block, vec![-3; (DIM * DIM) as usize]);
        let r1 = execute(&p, &default_input()).unwrap();
        let r2 = execute(&p, &alt).unwrap();
        assert_eq!(r1.path.path_id(), r2.path.path_id());
        assert_eq!(r1.trace, r2.trace);
    }

    #[test]
    fn differs_from_jfdc_footprint() {
        let r_fdct = execute(&program(), &default_input()).unwrap();
        let r_jfdc = execute(&crate::jfdc::program(), &crate::jfdc::default_input()).unwrap();
        assert_ne!(
            r_fdct.trace.len(),
            r_jfdc.trace.len(),
            "the two DCTs are distinct workloads"
        );
    }
}
