//! Shared harness for the paper-reproduction benches.
//!
//! Every table and figure of the DAC'18 paper has a `harness = false` bench
//! target in `benches/` that prints the paper's rows/series next to our
//! measured values and writes CSVs under `target/paper_out/`. Campaign
//! sizes derive from the paper's, scaled down 10× by default so the whole
//! suite regenerates in minutes; set `MBCR_SCALE` to rescale (e.g.
//! `MBCR_SCALE=10` for paper-sized campaigns, `MBCR_SCALE=0.1` for a smoke
//! run). `EXPERIMENTS.md` records the paper-vs-measured comparison.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use mbcr::{AnalysisConfig, TacTuning};
use mbcr_evt::ConvergenceConfig;

/// The campaign scale factor from `MBCR_SCALE` (default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("MBCR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Scales a base run count by [`scale`], with a floor of 100 runs.
#[must_use]
pub fn scaled(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(100)
}

/// The harness's analysis configuration: paper parameters with campaign
/// caps sized for a laptop (10× below the paper's largest campaigns at the
/// default scale).
#[must_use]
pub fn harness_config(seed: u64) -> AnalysisConfig {
    AnalysisConfig::builder()
        .seed(seed)
        .convergence(ConvergenceConfig {
            initial: 300,
            step: 100,
            max_runs: scaled(20_000),
            // The paper's MBPTA convergence accepts once the estimate is
            // stable at the few-percent level — deliberately *before* rare
            // conflictive layouts are observed (that gap is what TAC
            // closes). A 2% tolerance at 1e-12 would keep chasing every
            // tail fluctuation and never emulate that behaviour.
            epsilon: 0.10,
            stable_windows: 3,
            ..ConvergenceConfig::default()
        })
        .tac(TacTuning::default())
        .max_campaign_runs(scaled(100_000))
        .build()
}

/// Output directory for CSV series (`target/paper_out`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("paper_out");
    fs::create_dir_all(&dir).expect("create target/paper_out");
    dir
}

/// Writes a CSV file into [`out_dir`], returning its path.
///
/// # Panics
///
/// Panics on I/O errors (this is an experiment harness).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create CSV");
    writeln!(f, "{header}").expect("write CSV header");
    for r in rows {
        writeln!(f, "{r}").expect("write CSV row");
    }
    path
}

/// Prints a boxed section header, echoing which paper artefact follows.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("\n{line}\n| {title} |\n{line}");
    println!(
        "(MBCR_SCALE = {}; campaigns are paper/10 at scale 1)\n",
        scale()
    );
}

/// Fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        let mut t = Table::default();
        t.row(header);
        t
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| (*c).to_string()).collect();
        if self.widths.len() < cells.len() {
            self.widths.resize(cells.len(), 0);
        }
        for (i, c) in cells.iter().enumerate() {
            self.widths[i] = self.widths[i].max(c.len());
        }
        self.rows.push(cells);
        self
    }

    /// Prints the table with a separator under the header.
    pub fn print(&self) {
        for (r, row) in self.rows.iter().enumerate() {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                line.push_str(&format!("{c:<width$}  ", width = self.widths[i]));
            }
            println!("{}", line.trim_end());
            if r == 0 {
                let total: usize = self.widths.iter().map(|w| w + 2).sum();
                println!("{}", "-".repeat(total.saturating_sub(2)));
            }
        }
    }
}

/// Formats a run count in thousands like the paper's tables ("70" = 70 000).
#[must_use]
pub fn in_thousands(runs: u64) -> String {
    if runs == 0 {
        "0".to_string()
    } else if runs < 1000 {
        format!("{:.1}", runs as f64 / 1000.0)
    } else {
        format!("{}", runs.div_ceil(1000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(in_thousands(0), "0");
        assert_eq!(in_thousands(500), "0.5");
        assert_eq!(in_thousands(70_000), "70");
        assert_eq!(in_thousands(84_873), "85");
    }

    #[test]
    fn scaled_has_floor() {
        assert!(scaled(10) >= 100);
    }
}
