//! Paper Figure 2 — ECCDFs of `bs`'s 8 maximum-iteration paths, before and
//! after PUB: **every pubbed path upper-bounds all original paths**
//! (Corollary 1's empirical evidence).
//!
//! The paper collects 1 000 000 execution times per path; the harness
//! default is 100 000 (10× scaled; `MBCR_SCALE=10` restores the paper
//! size). Writes `fig2_bs_eccdf.csv` with the full curves.

use mbcr_bench::{banner, harness_config, scaled, write_csv, Table};
use mbcr_cpu::campaign_parallel;
use mbcr_evt::Eccdf;
use mbcr_ir::execute;
use mbcr_pub::{pub_transform, PubConfig};

fn main() {
    banner("Figure 2: ECCDF of bs original vs pubbed paths");
    let runs = scaled(100_000);
    let cfg = harness_config(0xF162);

    let program = mbcr_malardalen::bs::program();
    let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub bs");
    let vectors = mbcr_malardalen::bs::input_vectors();

    let mut orig_curves: Vec<(String, Eccdf)> = Vec::new();
    let mut pub_curves: Vec<(String, Eccdf)> = Vec::new();
    for v in &vectors {
        let orig_trace = execute(&program, &v.inputs).expect("run bs").trace;
        let pub_trace = execute(&pubbed.program, &v.inputs)
            .expect("run bs_pub")
            .trace;
        let orig_times = campaign_parallel(&cfg.platform, &orig_trace, runs, 0xF162, cfg.threads);
        let pub_times = campaign_parallel(&cfg.platform, &pub_trace, runs, 0xF162, cfg.threads);
        orig_curves.push((v.name.clone(), Eccdf::from_u64(&orig_times)));
        pub_curves.push((v.name.clone(), Eccdf::from_u64(&pub_times)));
    }

    // Summary table: quantiles per curve.
    let probes = [1e-1, 1e-2, 1e-3, 1.0 / runs as f64];
    let mut t = Table::new(&["path", "kind", "q@1e-1", "q@1e-2", "q@1e-3", "q@1/R", "max"]);
    for (curves, kind) in [(&orig_curves, "orig"), (&pub_curves, "pub")] {
        for (name, e) in curves {
            let cells: Vec<String> = probes
                .iter()
                .map(|&p| format!("{:.0}", e.quantile(p)))
                .collect();
            t.row(&[
                name,
                kind,
                &cells[0],
                &cells[1],
                &cells[2],
                &cells[3],
                &format!("{:.0}", e.max()),
            ]);
        }
    }
    t.print();

    // The paper's claim: each pubbed path upper-bounds ALL original paths.
    let mut all_dominate = true;
    for (pname, p) in &pub_curves {
        for (oname, o) in &orig_curves {
            if !p.dominates(o, &probes, 0.0) {
                all_dominate = false;
                println!("VIOLATION: pubbed {pname} does not dominate original {oname}");
            }
        }
    }
    let max_orig = orig_curves
        .iter()
        .map(|(_, e)| e.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let min_pub_tail = pub_curves
        .iter()
        .map(|(_, e)| e.quantile(1.0 / runs as f64))
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nhighest observed original execution time: {max_orig:.0} cycles \
         (paper: < 2 000 cycles)"
    );
    println!(
        "lowest pubbed quantile at 1/R exceedance  : {min_pub_tail:.0} cycles \
         (paper: 2 297 cycles for v9)"
    );
    println!(
        "every pubbed path upper-bounds every original path: {}",
        if all_dominate {
            "YES (Figure 2 REPRODUCED)"
        } else {
            "NO"
        }
    );
    assert!(all_dominate, "Figure 2 dominance must hold");

    // CSV with decimated curves for plotting.
    let mut rows = Vec::new();
    for (curves, kind) in [(&orig_curves, "orig"), (&pub_curves, "pub")] {
        for (name, e) in curves {
            for (x, p) in e.points(400) {
                rows.push(format!("{kind},{name},{x},{p:e}"));
            }
        }
    }
    let path = write_csv("fig2_bs_eccdf.csv", "kind,path,cycles,eccdf", &rows);
    println!("curves written to {}", path.display());
}
