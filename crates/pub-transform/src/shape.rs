//! Architectural shape of a trace — the invariants PUB guarantees across
//! paths of the pubbed program.
//!
//! Exact address equality across paths is *not* promised by PUB (diverged
//! variable values can select different elements of the same array;
//! different branches occupy different code lines). What is invariant, and
//! what makes the execution-time distributions of all pubbed paths
//! upper-bound every original path, is the **shape**: how many instruction
//! fetches flow to the IL1, and which *arrays* are read in which order by
//! the DL1. Under random placement, distinct lines of the same array are
//! exchangeable, so equal shapes imply identically distributed cache
//! behaviour.

use mbcr_ir::{ArrayId, Program};
use mbcr_trace::{AccessKind, Trace};

/// One element of a trace's architectural shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeItem {
    /// An instruction fetch.
    Fetch,
    /// A data access attributed to a program array (or `None` if the
    /// address falls outside every declared array — cannot happen for
    /// interpreter-emitted traces).
    Data(Option<ArrayId>),
}

/// Projects a trace onto its architectural shape.
#[must_use]
pub fn access_shape(trace: &Trace, program: &Program) -> Vec<ShapeItem> {
    trace
        .iter()
        .map(|a| match a.kind {
            AccessKind::InstrFetch => ShapeItem::Fetch,
            AccessKind::Read | AccessKind::Write => {
                ShapeItem::Data(program.array_containing(a.addr.0))
            }
        })
        .collect()
}

/// Summary counts of a shape, for quick cross-path comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShapeSummary {
    /// Total instruction fetches.
    pub fetches: u64,
    /// Data accesses per array id (indexed by array id).
    pub per_array: Vec<u64>,
}

/// Summarizes a trace's shape: fetch count and per-array data access counts.
#[must_use]
pub fn shape_summary(trace: &Trace, program: &Program) -> ShapeSummary {
    let mut s = ShapeSummary {
        fetches: 0,
        per_array: vec![0; program.arrays().len()],
    };
    for a in trace {
        match a.kind {
            AccessKind::InstrFetch => s.fetches += 1,
            AccessKind::Read | AccessKind::Write => {
                if let Some(id) = program.array_containing(a.addr.0) {
                    s.per_array[id.0 as usize] += 1;
                }
            }
        }
    }
    s
}

/// The data-access sub-shape only (array sequence, order preserved).
///
/// For a pubbed program this sequence is *identical* across all paths that
/// trigger the maximum loop bounds: PUB equalizes branch token sequences,
/// and tokens fix the array of every data reference.
#[must_use]
pub fn data_shape(trace: &Trace, program: &Program) -> Vec<Option<ArrayId>> {
    trace
        .data_accesses()
        .map(|a| program.array_containing(a.addr.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{execute, Expr, Inputs, ProgramBuilder, Stmt};

    #[test]
    fn shape_classifies_accesses() {
        let mut b = ProgramBuilder::new("t");
        let a0 = b.array("a0", 4);
        let a1 = b.array("a1", 4);
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(a0, Expr::c(0))));
        b.push(Stmt::store(a1, Expr::c(1), Expr::var(x)));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        let shape = access_shape(&run.trace, &p);
        let data: Vec<_> = shape
            .iter()
            .filter_map(|s| match s {
                ShapeItem::Data(a) => Some(*a),
                ShapeItem::Fetch => None,
            })
            .collect();
        assert_eq!(data, vec![Some(a0), Some(a1)]);

        let summary = shape_summary(&run.trace, &p);
        assert_eq!(summary.per_array, vec![1, 1]);
        assert_eq!(summary.fetches, run.trace.instr_fetches().count() as u64);
        assert_eq!(data_shape(&run.trace, &p), vec![Some(a0), Some(a1)]);
    }
}
