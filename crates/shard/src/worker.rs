//! The shard worker: a thin loop around the engine's stage executor.
//!
//! Each job slot holds its own TCP connection and runs
//! request → execute → done. A job arrives **self-describing**: its spec,
//! the owning sweep's analysis knobs (from which the exact
//! [`mbcr::AnalysisConfig`] is rebuilt), the upstream stage artifacts its
//! session will load (so nothing is recomputed) and, for campaign work,
//! the chunk-log prefix the coordinator already holds — the worker seeds
//! a [`WireStore`] with all of it and then runs the *same*
//! [`mbcr_engine::execute_stage`] code path as a single-process sweep.
//! The worker never knows (or cares) which sweep a job belongs to beyond
//! echoing its tag, which is what lets one fleet serve many concurrent
//! sweeps of a service daemon.
//!
//! Campaign checkpoints stream back to the coordinator as they are
//! written locally, so coordinator-side resume granularity equals the
//! single-process `checkpoint_interval` guarantee; a send failure aborts
//! the simulation early rather than burning hours on a result nobody can
//! receive.
//!
//! **Graceful drain:** on SIGTERM the worker finishes cheap stages
//! normally, but an in-flight campaign stops at its next checkpoint
//! boundary — the boundary chunk is already flushed to the coordinator —
//! and the slot sends a [`Message::Drain`] frame before disconnecting,
//! so the coordinator requeues its leases immediately (the next claimer
//! adopts the campaign from the flushed prefix) instead of waiting for
//! connection teardown or a lease TTL.
//!
//! A heartbeat thread per connection keeps the lease alive through long,
//! otherwise-silent stages (convergence can run minutes without a
//! checkpoint).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mbcr::stage::{MemoryStageStore, StageStore};
use mbcr_engine::{execute_stage, Registry};
use mbcr_json::Json;

use crate::protocol::{self, JobResult, Message, WireJob};

/// How often an executing worker proves liveness.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(1000);
/// Backoff between job requests when nothing is ready.
const WAIT_BACKOFF: Duration = Duration::from_millis(100);
/// Connection retry budget: a worker may start before its coordinator.
const CONNECT_RETRIES: usize = 80;
const CONNECT_BACKOFF: Duration = Duration::from_millis(250);

/// The marker a drain-aborted campaign carries in its local error — the
/// slot recognizes it and deregisters instead of reporting a failure.
const DRAIN_SENTINEL: &str = "worker draining on SIGTERM";

/// Most stage envelopes one slot keeps across jobs. FIFO eviction: the
/// coordinator tracks the same digests (its residency table) and may
/// elide a shipped artifact this cache already dropped — the session
/// then recomputes it deterministically, so eviction costs time, never
/// bytes.
const SLOT_CACHE_CAP: usize = 256;

/// The slot-persistent artifact cache backing cache-aware placement:
/// every stage envelope shipped to or computed by this slot, keyed by
/// content digest. Content addressing makes staleness impossible; the
/// cap bounds memory on long-lived fleets.
#[derive(Default)]
struct SlotCache {
    docs: HashMap<u64, Json>,
    order: VecDeque<u64>,
}

impl SlotCache {
    fn get(&self, digest: u64) -> Option<Json> {
        self.docs.get(&digest).cloned()
    }

    fn put(&mut self, digest: u64, doc: &Json) {
        if self.docs.insert(digest, doc.clone()).is_none() {
            self.order.push_back(digest);
            if self.order.len() > SLOT_CACHE_CAP {
                if let Some(evicted) = self.order.pop_front() {
                    self.docs.remove(&evicted);
                }
            }
        }
    }
}

/// Set by the SIGTERM handler; every slot and checkpoint write checks it.
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a graceful drain was requested (SIGTERM received).
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Acquire)
}

/// Installs the SIGTERM handler that flips the drain flag. The handler
/// body is a single atomic store — async-signal-safe by construction.
#[cfg(unix)]
fn install_drain_handler() {
    extern "C" fn on_sigterm(_signum: i32) {
        DRAIN.store(true, Ordering::Release);
    }
    // Declared by hand (no libc crate in the offline workspace); libc
    // itself is already linked by std on every unix target.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_drain_handler() {}

/// What one worker process executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Jobs that executed successfully.
    pub executed: usize,
    /// Jobs that failed (reported to the coordinator as failed).
    pub failed: usize,
}

/// Runs `slots` parallel job loops against the coordinator at `addr`,
/// returning the summed outcome once the coordinator shuts the fleet
/// down — or once a SIGTERM drain completes (in-flight campaigns
/// checkpointed and flushed, leases handed back).
///
/// # Errors
///
/// Connection or protocol failures of any slot. A coordinator that
/// simply closes the socket (it exited after finalizing) ends the slot
/// cleanly instead.
pub fn run_worker(addr: &str, slots: usize) -> io::Result<WorkerOutcome> {
    install_drain_handler();
    let slots = slots.max(1);
    if slots == 1 {
        let outcome = worker_slot(addr);
        dump_recorder_on_drain();
        return outcome;
    }
    let outcome = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..slots)
            .map(|_| scope.spawn(|| worker_slot(addr)))
            .collect();
        let mut total = WorkerOutcome::default();
        let mut first_error = None;
        for handle in handles {
            match handle.join().expect("worker slot panicked") {
                Ok(outcome) => {
                    total.executed += outcome.executed;
                    total.failed += outcome.failed;
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(total),
        }
    });
    dump_recorder_on_drain();
    outcome
}

/// Persists the flight recorder after a SIGTERM drain completes, if a
/// dump path is configured (`MBCR_OBS_DIR`). This runs on the normal
/// drain exit path — the signal handler itself only flips an atomic.
fn dump_recorder_on_drain() {
    if drain_requested() {
        if let Ok(Some(path)) = mbcr_obs::dump_now() {
            eprintln!("worker: flight recorder dumped to {}", path.display());
        }
    }
}

fn connect_with_retry(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..CONNECT_RETRIES {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(CONNECT_BACKOFF);
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connection attempt made")))
}

fn protocol_error(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn worker_slot(addr: &str) -> io::Result<WorkerOutcome> {
    let stream = connect_with_retry(addr)?;
    stream.set_nodelay(true)?;
    // One socket, two handles: the slot loop reads; every write (requests,
    // results, chunks, heartbeats) serializes on the writer lock so frames
    // never interleave.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    send(
        &writer,
        &Message::Hello {
            schema: protocol::wire_schema(),
        },
    )?;
    match protocol::receive(&mut reader)? {
        Some(Message::Welcome { schema }) => {
            if schema != protocol::wire_schema() {
                return Err(protocol_error(format!(
                    "coordinator speaks '{schema}', this worker '{}'",
                    protocol::wire_schema()
                )));
            }
        }
        Some(Message::Reject { reason }) => {
            return Err(protocol_error(format!(
                "coordinator refused the handshake: {reason}"
            )))
        }
        Some(other) => {
            return Err(protocol_error(format!(
                "expected welcome, got {}",
                other.to_json().to_compact()
            )))
        }
        // A close before Welcome is a refusal, not a finished fleet — be
        // loud so misconfiguration never idles silently.
        None => {
            return Err(protocol_error(
                "coordinator closed the connection during the handshake",
            ))
        }
    }

    let registry = Registry::malardalen();
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(HEARTBEAT_EVERY);
                if stop.load(Ordering::Acquire) || send(&writer, &Message::Heartbeat).is_err() {
                    break;
                }
                mbcr_obs::count("mbcr_heartbeats_sent_total", &[], 1);
            }
        })
    };

    let run = (|| -> io::Result<WorkerOutcome> {
        let mut outcome = WorkerOutcome::default();
        // Survives across jobs on this slot; the coordinator's residency
        // table for this connection mirrors what lands in here.
        let cache = Mutex::new(SlotCache::default());
        loop {
            if drain_requested() {
                // Deregister loudly: the coordinator requeues this slot's
                // leases now instead of on the lease TTL.
                let _ = send(&writer, &Message::Drain);
                return Ok(outcome);
            }
            send(&writer, &Message::Request)?;
            match protocol::receive(&mut reader)? {
                // A vanished coordinator after a finalized sweep is a
                // normal ending — it may exit before every worker polls.
                None | Some(Message::Shutdown) => return Ok(outcome),
                Some(Message::Wait) => std::thread::sleep(WAIT_BACKOFF),
                Some(Message::Job(job)) => {
                    let result = run_job(*job, &registry, &writer, &cache);
                    if drain_aborted(&result) {
                        // The campaign stopped at a checkpoint boundary
                        // and the boundary chunk is already flushed; hand
                        // the lease back instead of reporting a failure.
                        let _ = send(&writer, &Message::Drain);
                        return Ok(outcome);
                    }
                    if result.error.is_none() {
                        outcome.executed += 1;
                    } else {
                        outcome.failed += 1;
                    }
                    send(&writer, &Message::Done(Box::new(result)))?;
                }
                Some(other) => {
                    return Err(protocol_error(format!(
                        "unexpected frame: {}",
                        other.to_json().to_compact()
                    )))
                }
            }
        }
    })();
    stop.store(true, Ordering::Release);
    let _ = heartbeat.join();
    run
}

/// Whether a job result is the drain sentinel rather than a real
/// analysis failure.
fn drain_aborted(result: &JobResult) -> bool {
    drain_requested()
        && result
            .error
            .as_deref()
            .is_some_and(|e| e.contains(DRAIN_SENTINEL))
}

fn send(writer: &Mutex<TcpStream>, message: &Message) -> io::Result<()> {
    let mut stream = writer.lock().expect("writer poisoned");
    protocol::send(&mut *stream, message)
}

/// Executes one shipped stage job against a local wire-backed store and
/// packages the result. Never returns an error: failures travel back in
/// the [`JobResult`] like any analysis failure.
fn run_job(
    wire: WireJob,
    registry: &Registry,
    writer: &Arc<Mutex<TcpStream>>,
    cache: &Mutex<SlotCache>,
) -> JobResult {
    let fail = |error: String| JobResult {
        sweep: wire.sweep.clone(),
        job: wire.job,
        error: Some(error),
        summary: None,
        stage_docs: Vec::new(),
        fit: None,
    };
    let store = WireStore::new(writer, cache);
    for doc in &wire.artifacts {
        let Some(digest) = doc.get("digest").and_then(Json::as_u64) else {
            return fail("shipped artifact without a digest".to_string());
        };
        if store.local.save_stage(digest, doc).is_err() {
            return fail("seeding the local store failed".to_string());
        }
        store.remember(digest, doc);
    }
    if let Some(prefix) = &wire.prefix {
        // Seed the *local* store directly: the coordinator already holds
        // these runs, so they must not echo back as chunks.
        if let Err(e) =
            store
                .local
                .append_samples(prefix.digest, 0, prefix.samples.len(), &prefix.samples)
        {
            return fail(format!("seeding the campaign prefix failed: {e}"));
        }
    }
    let cfg = match wire.knobs.config(&wire.spec.geometry, wire.spec.job_seed()) {
        Ok(cfg) => cfg,
        Err(e) => return fail(e.to_string()),
    };
    match execute_stage(&wire.spec, &wire.key, &cfg, registry, &store, false) {
        Ok(outcome) => JobResult {
            sweep: wire.sweep,
            job: wire.job,
            error: None,
            summary: Some(outcome.summary),
            stage_docs: store.computed_docs(),
            fit: outcome.fit,
        },
        Err(e) => JobResult {
            sweep: wire.sweep,
            job: wire.job,
            error: Some(e.to_string()),
            summary: None,
            // Partial progress still ships: upstream stages the session
            // had to recompute are content-addressed and reusable.
            stage_docs: store.computed_docs(),
            fit: None,
        },
    }
}

/// The worker-side [`StageStore`]: an in-memory mirror seeded with the
/// shipped artifacts, forwarding every sample-log mutation to the
/// coordinator as it happens. Loads hit the per-job store first, then
/// the slot cache (artifacts the coordinator elided because this slot
/// already held them); anything in neither is recomputed by the session,
/// byte-identically. Saves are recorded so the finished job can ship
/// exactly the artifacts this execution computed.
struct WireStore<'a> {
    local: MemoryStageStore,
    writer: &'a Arc<Mutex<TcpStream>>,
    cache: &'a Mutex<SlotCache>,
    computed: Mutex<Vec<u64>>,
}

impl<'a> WireStore<'a> {
    fn new(writer: &'a Arc<Mutex<TcpStream>>, cache: &'a Mutex<SlotCache>) -> Self {
        Self {
            local: MemoryStageStore::default(),
            writer,
            cache,
            computed: Mutex::new(Vec::new()),
        }
    }

    /// Caches a doc across jobs without marking it computed (it was
    /// shipped, not produced here).
    fn remember(&self, digest: u64, doc: &Json) {
        self.cache
            .lock()
            .expect("slot cache poisoned")
            .put(digest, doc);
    }

    /// The stage envelopes this execution computed, in completion order.
    fn computed_docs(&self) -> Vec<Json> {
        self.computed
            .lock()
            .expect("computed poisoned")
            .iter()
            .filter_map(|&digest| self.local.load_stage(digest))
            .collect()
    }
}

impl StageStore for WireStore<'_> {
    fn load_stage(&self, digest: u64) -> Option<Json> {
        if let Some(doc) = self.local.load_stage(digest) {
            return Some(doc);
        }
        // Elided artifact: the coordinator knows this slot held it. On a
        // hit, promote it into the per-job store so the session's later
        // loads stay lock-free; on a miss (evicted), the session simply
        // recomputes the stage.
        let doc = self
            .cache
            .lock()
            .expect("slot cache poisoned")
            .get(digest)?;
        let _ = self.local.save_stage(digest, &doc);
        Some(doc)
    }

    fn save_stage(&self, digest: u64, artifact: &Json) -> io::Result<()> {
        self.local.save_stage(digest, artifact)?;
        self.remember(digest, artifact);
        let mut computed = self.computed.lock().expect("computed poisoned");
        if !computed.contains(&digest) {
            computed.push(digest);
        }
        Ok(())
    }

    fn load_samples(&self, digest: u64) -> Option<Vec<u64>> {
        self.local.load_samples(digest)
    }

    fn append_samples(
        &self,
        digest: u64,
        start: usize,
        total: usize,
        samples: &[u64],
    ) -> io::Result<()> {
        let _span = mbcr_obs::span(mbcr_obs::SpanKind::CampaignChunk, "wire-append")
            .field("digest", format!("{digest:016x}"))
            .field("runs", samples.len().to_string());
        self.local.append_samples(digest, start, total, samples)?;
        // Forward the identical append; the coordinator's log applies the
        // same idempotent-overlap rules, so replays and adopted prefixes
        // converge. A send failure aborts the campaign early (the
        // checkpoint writer treats it like any store failure).
        send(
            self.writer,
            &Message::Chunk {
                digest,
                start,
                total,
                samples: samples.to_vec(),
            },
        )?;
        // Graceful drain: this checkpoint chunk is durable at the
        // coordinator, which makes *now* the cheapest possible moment to
        // stop — the next claimer adopts the campaign from exactly here.
        if drain_requested() {
            return Err(io::Error::other(DRAIN_SENTINEL));
        }
        Ok(())
    }

    fn reset_samples(&self, digest: u64) -> io::Result<()> {
        self.local.reset_samples(digest)?;
        send(self.writer, &Message::ResetLog { digest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_cache_is_fifo_capped_and_idempotent_on_reinsert() {
        let mut cache = SlotCache::default();
        for digest in 0..(SLOT_CACHE_CAP as u64 + 10) {
            cache.put(digest, &Json::UInt(digest));
        }
        assert_eq!(cache.docs.len(), SLOT_CACHE_CAP);
        assert_eq!(cache.order.len(), SLOT_CACHE_CAP);
        assert_eq!(cache.get(0), None, "oldest entries evicted first");
        assert_eq!(cache.get(10), Some(Json::UInt(10)));
        // Re-inserting a cached digest must not duplicate its FIFO slot
        // (which would let `order` grow without bound and evict early).
        cache.put(20, &Json::UInt(20));
        assert_eq!(cache.docs.len(), SLOT_CACHE_CAP);
        assert_eq!(cache.order.len(), SLOT_CACHE_CAP);
    }
}
