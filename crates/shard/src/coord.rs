//! The sweep service: a coordinator that owns N concurrent sweeps over
//! one shared worker fleet and one artifact store.
//!
//! Since the service redesign there is no one-coordinator-one-sweep
//! assumption left: the accept loop serves **workers** (request → job →
//! done, exactly the shard protocol of old) and **clients** (submit /
//! status / cancel / follow) over the same listener, and all scheduling
//! state lives in an engine-level [`SweepRegistry`] — fair-share across
//! sweeps, cross-sweep stage dedup by content digest, the whole queue
//! persisted in the store so a `kill -9`'d daemon resumes every queued
//! and mid-campaign sweep.
//!
//! Two driving modes share every line of the machinery:
//!
//! * [`serve`] — the one-shot compatibility path (`mbcr coord`,
//!   `mbcr sweep --shards N`): submit one ephemeral sweep, drain the
//!   registry, finalize at the store root (byte-identical to a
//!   single-process `mbcr sweep`), return its outcome.
//! * [`serve_daemon`] — `mbcr serve --listen`: resume the persisted
//!   queue, then run until killed, accepting submissions and streaming
//!   progress to `mbcr report --follow` clients.
//!
//! Worker death is detected three ways: a closed connection requeues the
//! worker's leases immediately, a [`Message::Drain`] frame (graceful
//! SIGTERM drain) does the same after the worker flushed its in-flight
//! campaign chunk, and a lease TTL ([`CoordSettings::lease_ttl`]) catches
//! hung-but-connected workers. Duplicate results from a presumed-dead
//! worker are absorbed: artifacts are content-addressed (idempotent to
//! re-save) and the registry's first record wins.

mod http;
mod scale;

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mbcr::stage::StageKind;
use mbcr_engine::{
    execute_combine, ArtifactStore, EngineError, JobKind, JobRecord, JobStatus, JobSummary,
    Registry, RunOptions, ServiceClaim, StageStore, SubmitOptions, SweepOutcome, SweepRegistry,
    SweepSnapshot, SweepSpec,
};
use mbcr_json::Json;

use crate::lease::LeaseTable;
use crate::protocol::{self, JobResult, Message, Received, SamplePrefix, WireJob};

/// Coordinator knobs orthogonal to any one sweep's spec.
#[derive(Debug, Clone, Copy)]
pub struct CoordSettings {
    /// Execution options for the compatibility submission of [`serve`]
    /// (thread count is ignored — parallelism is the worker fleet).
    /// Wire-submitted sweeps carry their own force/checkpoint options.
    pub run: RunOptions,
    /// Declare a silent worker dead (and requeue its leases) after this
    /// long. Connection loss is detected immediately regardless.
    pub lease_ttl: Duration,
}

impl Default for CoordSettings {
    fn default() -> Self {
        Self {
            run: RunOptions::default(),
            lease_ttl: Duration::from_secs(30),
        }
    }
}

/// How often a `Follow` stream re-checks for progress.
const FOLLOW_TICK: Duration = Duration::from_millis(200);

/// Most artifact digests remembered as resident per worker. FIFO
/// eviction: an elided-but-evicted artifact merely recomputes on the
/// worker (deterministically, so byte-identity is untouchable by any
/// placement decision) — the cap only bounds coordinator memory.
const RESIDENT_CAP: usize = 256;

/// Which artifact digests one worker is believed to hold (shipped to it
/// or produced by it). Purely advisory: placement prefers claims whose
/// inputs are resident, and shipment elides resident artifacts, but a
/// wrong guess costs a recompute, never a wrong byte.
#[derive(Default)]
struct Residency {
    set: HashSet<u64>,
    order: VecDeque<u64>,
}

impl Residency {
    fn insert(&mut self, digest: u64) {
        if self.set.insert(digest) {
            self.order.push_back(digest);
            if self.order.len() > RESIDENT_CAP {
                if let Some(evicted) = self.order.pop_front() {
                    self.set.remove(&evicted);
                }
            }
        }
    }
}

struct State {
    sweeps: SweepRegistry,
    leases: LeaseTable,
    /// Whether any worker ever connected (a coordinator may legitimately
    /// start before its fleet).
    ever_connected: bool,
    /// Last instant at which at least one worker was live (or work was
    /// still possible without one).
    last_live: Instant,
}

struct Service<'a> {
    registry: &'a Registry,
    store: &'a ArtifactStore,
    settings: CoordSettings,
    /// Runs forever accepting submissions (`true`), or drains the
    /// registry and returns (`false`, the one-shot compatibility mode).
    daemon: bool,
    state: Mutex<State>,
    /// Set when the accept loop exits (success or error): handlers wind
    /// down instead of serving.
    shutdown: AtomicBool,
    /// The HTTP/JSON + SSE face (`mbcr serve --http`), polled by the
    /// same accept loop as the binary listener.
    http: Option<TcpListener>,
    /// Local worker autoscaling (`mbcr serve --spawn-workers`).
    scaler: Option<scale::Autoscaler>,
    /// Per-worker artifact residency, keyed by peer id. Its own lock,
    /// taken strictly *outside* (never while holding) the state lock.
    residency: Mutex<HashMap<u64, Residency>>,
    /// Upstream-artifact bytes actually shipped in wire jobs.
    shipped_bytes: AtomicU64,
    /// Upstream-artifact bytes elided because the claiming worker
    /// already held them.
    elided_bytes: AtomicU64,
}

/// Runs one sweep by serving its jobs to TCP workers until every node
/// completes, then finalizes the manifest and Table 2 at the store root
/// exactly like [`mbcr_engine::run_sweep`] — byte-identical outputs are
/// the contract. Any sweeps found persisted in the store's queue resume
/// alongside (into their own `sweeps/<id>/` scopes).
///
/// The listener should already be bound; workers may connect at any time,
/// including after a sweep is underway (elastic fleets) or after earlier
/// workers died (their leases requeue).
///
/// # Errors
///
/// Planning and store I/O errors, a listener failure, or every worker
/// disconnecting with work still pending (after a grace of the lease
/// TTL). Analysis failures do not fail the sweep; they mark jobs failed,
/// as in a single-process run.
pub fn serve(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
) -> Result<SweepOutcome, EngineError> {
    let mut sweeps = SweepRegistry::open(store, registry)?;
    let id = sweeps.submit(
        spec.clone(),
        SubmitOptions {
            force: settings.run.force,
            checkpoint_interval: settings.run.checkpoint_interval,
            batch_width: settings.run.batch_width,
            persist: false,
            ..SubmitOptions::default()
        },
        registry,
    )?;
    let service = Service::new(
        registry,
        store,
        *settings,
        false,
        sweeps,
        GatewayOptions::default(),
    );
    service.run(listener)?;
    let state = service.state.into_inner().expect("state poisoned");
    state
        .sweeps
        .outcome(&id)
        .cloned()
        .ok_or_else(|| EngineError::Analysis(format!("sweep {id} never finalized")))
}

/// Runs the long-lived service daemon (`mbcr serve`): resumes the
/// store's persisted sweep queue, then accepts worker and client
/// connections until the process dies. Submissions are durable before
/// they are acknowledged, so a `kill -9` loses nothing a restart cannot
/// resume.
///
/// # Errors
///
/// Queue-resume and listener failures. (Per-sweep analysis failures are
/// recorded in that sweep's manifest, never fatal to the daemon.)
pub fn serve_daemon(
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
) -> Result<(), EngineError> {
    serve_daemon_with(
        registry,
        store,
        settings,
        listener,
        GatewayOptions::default(),
    )
}

/// Service-plane extras for [`serve_daemon_with`], all off by default
/// (which makes it exactly [`serve_daemon`]).
#[derive(Debug, Default)]
pub struct GatewayOptions {
    /// A bound listener for the HTTP/JSON + SSE gateway
    /// (`mbcr serve --http`). Served from the same process and registry
    /// as the binary protocol — the two planes are views of one queue.
    pub http: Option<TcpListener>,
    /// `Some((min, max))` spawns and reaps local worker processes from
    /// queue depth (`mbcr serve --spawn-workers min..max`).
    pub spawn_workers: Option<(usize, usize)>,
}

/// [`serve_daemon`] plus the service-plane extras: an HTTP/SSE gateway
/// listener and/or a local worker autoscaler.
///
/// # Errors
///
/// Queue-resume and listener failures, as for [`serve_daemon`].
pub fn serve_daemon_with(
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
    gateway: GatewayOptions,
) -> Result<(), EngineError> {
    let sweeps = SweepRegistry::open(store, registry)?;
    let service = Service::new(registry, store, *settings, true, sweeps, gateway);
    service.run(listener)
}

impl<'a> Service<'a> {
    fn new(
        registry: &'a Registry,
        store: &'a ArtifactStore,
        settings: CoordSettings,
        daemon: bool,
        sweeps: SweepRegistry,
        gateway: GatewayOptions,
    ) -> Self {
        Self {
            registry,
            store,
            settings,
            daemon,
            state: Mutex::new(State {
                sweeps,
                leases: LeaseTable::new(settings.lease_ttl),
                ever_connected: false,
                last_live: Instant::now(),
            }),
            shutdown: AtomicBool::new(false),
            http: gateway.http,
            scaler: gateway
                .spawn_workers
                .map(|(min, max)| scale::Autoscaler::new(min, max)),
            residency: Mutex::new(HashMap::new()),
            shipped_bytes: AtomicU64::new(0),
            elided_bytes: AtomicU64::new(0),
        }
    }

    /// The accept loop: hand each connection to a handler thread, reap
    /// expired leases, and — in drain mode — stop once the registry has
    /// no unfinished sweep left.
    fn run(&self, listener: &TcpListener) -> Result<(), EngineError> {
        listener.set_nonblocking(true)?;
        if let Some(http) = &self.http {
            http.set_nonblocking(true)?;
        }
        // Workers the autoscaler spawns connect back over the binary
        // listener; an unspecified bind address (0.0.0.0) is rewritten
        // to loopback since those workers are by definition local.
        let connect = listener.local_addr().map(|addr| {
            if addr.ip().is_unspecified() {
                format!("127.0.0.1:{}", addr.port())
            } else {
                addr.to_string()
            }
        })?;
        let result = std::thread::scope(|scope| {
            let mut next_peer = 0u64;
            let mut next_finalize_retry = Instant::now();
            let mut next_scale_tick = Instant::now();
            let result = loop {
                if !self.daemon && self.finished() {
                    break Ok(());
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        next_peer += 1;
                        let peer = next_peer;
                        let service = &*self;
                        scope.spawn(move || handle_connection(service, stream, peer));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => break Err(EngineError::Io(e)),
                }
                // Drain every pending HTTP connection this tick: a load
                // storm of short requests must not be throttled to one
                // accept per 20 ms sleep. Accept errors are logged, not
                // fatal — the gateway is an auxiliary face of the daemon.
                while let Some(http) = &self.http {
                    match http.accept() {
                        Ok((stream, _)) => {
                            let service = &*self;
                            scope.spawn(move || http::handle(service, stream));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            eprintln!("coordinator: http accept failed: {e}");
                            break;
                        }
                    }
                }
                let now = Instant::now();
                if let Some(scaler) = &self.scaler {
                    if now >= next_scale_tick {
                        next_scale_tick = now + Duration::from_secs(1);
                        let (ready, leased) = {
                            let state = self.lock();
                            let metrics = state.sweeps.metrics();
                            (metrics.ready, metrics.leased)
                        };
                        scaler.tick(ready, leased, now, &connect);
                    }
                }
                self.reap_expired(now);
                // A drained sweep whose manifest write failed (ENOSPC,
                // transient store trouble) gets no further records to
                // retry finalization from — re-attempt it here. One-shot
                // services propagate the failure (the old `serve`
                // semantics); daemons log and keep retrying.
                if now >= next_finalize_retry {
                    next_finalize_retry = now + Duration::from_secs(2);
                    if let Err(e) = self.lock().sweeps.retry_finalize() {
                        if self.daemon {
                            eprintln!("coordinator: finalization still failing: {e}");
                        } else {
                            break Err(e);
                        }
                    }
                }
                if !self.daemon {
                    if let Some(stall) = self.stalled(now) {
                        break Err(stall);
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            // Handlers notice the flag within one read timeout and deliver
            // a final Shutdown/FollowEnd to their peer; the scope then
            // joins them.
            self.shutdown.store(true, Ordering::Release);
            result
        });
        if let Some(scaler) = &self.scaler {
            scaler.shutdown();
        }
        result
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("state poisoned")
    }

    fn residency_lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Residency>> {
        self.residency.lock().expect("residency poisoned")
    }

    /// A snapshot of the digests believed resident on `worker` (`None`
    /// when nothing is known). Cloned *before* the state lock is taken,
    /// so affinity scoring inside the claim never nests the two locks.
    fn resident_digests(&self, worker: u64) -> Option<HashSet<u64>> {
        let residency = self.residency_lock();
        residency
            .get(&worker)
            .filter(|r| !r.set.is_empty())
            .map(|r| r.set.clone())
    }

    /// Marks `digests` resident on `worker` (shipped to it, or received
    /// back from it).
    fn mark_resident(&self, worker: u64, digests: &[u64]) {
        if digests.is_empty() {
            return;
        }
        let mut residency = self.residency_lock();
        let entry = residency.entry(worker).or_default();
        for &digest in digests {
            entry.insert(digest);
        }
    }

    fn finished(&self) -> bool {
        self.lock().sweeps.finished()
    }

    fn winding_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn register(&self, worker: u64) {
        let mut state = self.lock();
        state.ever_connected = true;
        state.leases.touch(worker, Instant::now());
    }

    fn touch(&self, worker: u64) {
        let mut state = self.lock();
        state.leases.touch(worker, Instant::now());
    }

    /// A worker's connection ended (or it drained): evict it and requeue
    /// its leases across every sweep.
    fn drop_worker(&self, worker: u64, how: &str) {
        self.residency_lock().remove(&worker);
        let mut state = self.lock();
        state.leases.remove(worker);
        let requeued = state.sweeps.requeue_worker(worker);
        if !requeued.is_empty() {
            mbcr_obs::count("mbcr_lease_requeues_total", &[], requeued.len() as u64);
            eprintln!(
                "coordinator: worker {worker} {how} with {} leased job(s); requeued",
                requeued.len()
            );
        }
    }

    /// Requeues the leases of workers whose TTL lapsed (hung process,
    /// partitioned host — connection loss is handled by `drop_worker`).
    fn reap_expired(&self, now: Instant) {
        let mut state = self.lock();
        for worker in state.leases.expired(now) {
            let requeued = state.sweeps.requeue_worker(worker);
            mbcr_obs::count("mbcr_lease_requeues_total", &[], requeued.len() as u64);
            eprintln!(
                "coordinator: worker {worker} lease expired with {} job(s); requeued",
                requeued.len()
            );
        }
    }

    /// An error once every worker is gone and stayed gone for a lease TTL
    /// with work still pending — better than hanging a one-shot sweep
    /// forever. (Daemons never stall out: an empty fleet is a legitimate
    /// idle state for them.)
    fn stalled(&self, now: Instant) -> Option<EngineError> {
        let mut state = self.lock();
        if state.sweeps.finished() || !state.ever_connected || state.leases.live() > 0 {
            state.last_live = now;
            return None;
        }
        let grace = self.settings.lease_ttl.max(Duration::from_secs(5));
        if now.duration_since(state.last_live) <= grace {
            return None;
        }
        Some(EngineError::Analysis(
            "all workers disconnected with jobs unfinished".to_string(),
        ))
    }

    /// Records a job's terminal state in the registry (which unblocks
    /// dependents and cross-sweep waiters and finalizes the sweep when
    /// drained). The fsync'd journal append happens *before* the state
    /// lock is taken, so the fleet never queues behind per-record fsync
    /// latency.
    fn record(
        &self,
        claim: &ServiceClaim,
        status: JobStatus,
        error: Option<String>,
        summary: Option<JobSummary>,
    ) {
        let record = JobRecord {
            key: claim.plan.keys[claim.job].clone(),
            label: claim.plan.graph.jobs[claim.job].label(),
            status,
            error,
            summary,
        };
        self.record_journaled(&claim.sweep, claim.job, claim.persist, record);
    }

    /// Journals (outside the lock, persistent sweeps only), then records.
    fn record_journaled(&self, sweep: &str, job: usize, persist: bool, record: JobRecord) {
        if persist {
            if let Err(e) = SweepRegistry::journal_record(self.store, sweep, job, &record) {
                eprintln!(
                    "coordinator: journaling job {job} of {sweep} failed: {e} \
                     (a restart will re-run it)"
                );
            }
        }
        let mut state = self.lock();
        if let Err(e) = state.sweeps.record(sweep, job, record, true) {
            eprintln!("coordinator: finalizing after job {job} of {sweep} failed: {e}");
        }
    }

    /// Answers one job request: skips cached nodes, runs combine nodes
    /// inline, and ships the first stage node that actually needs a
    /// worker. `Wait` when everything runnable is leased elsewhere (or a
    /// daemon is idle), `Shutdown` when a one-shot service drained.
    ///
    /// Only the lease transition itself holds the state lock — cache
    /// probes, combine writes and wire-job assembly all do store I/O and
    /// must not stall every other peer's request (a paper-scale fit job
    /// ships a multi-megabyte chunk log). That is safe because the
    /// claimed node is leased to this worker: nobody else touches it
    /// until it is recorded or the lease is revoked.
    fn claim(&self, worker: u64) -> Message {
        loop {
            // Residency is cloned before the state lock so the affinity
            // closure touches no second lock while scoring ready jobs.
            let resident = self.resident_digests(worker);
            let claim = {
                let mut state = self.lock();
                if self.winding_down() {
                    return Message::Shutdown;
                }
                let claimed = match &resident {
                    Some(held) => {
                        let held = |digest: u64| held.contains(&digest);
                        state.sweeps.claim_with(worker, Some(&held))
                    }
                    None => state.sweeps.claim(worker),
                };
                match claimed {
                    Some(claim) => claim,
                    None => {
                        if !self.daemon && state.sweeps.finished() {
                            return Message::Shutdown;
                        }
                        return Message::Wait;
                    }
                }
            };
            if !claim.force {
                if let Some(summary) = claim.plan.cached_summary(claim.job, self.store) {
                    self.record(&claim, JobStatus::Skipped, None, Some(summary));
                    continue;
                }
            }
            match &claim.plan.graph.jobs[claim.job].kind {
                JobKind::MultipathCombine => {
                    let deps = self.lock().sweeps.dep_summaries(&claim.sweep, claim.job);
                    let job = &claim.plan.graph.jobs[claim.job];
                    let key = &claim.plan.keys[claim.job];
                    let outcome = execute_combine(job, key, &deps).and_then(|(summary, result)| {
                        self.store.write_job(key, &summary, result, None)?;
                        Ok(summary)
                    });
                    match outcome {
                        Ok(summary) => {
                            self.record(&claim, JobStatus::Executed, None, Some(summary));
                        }
                        Err(e) => {
                            self.record(&claim, JobStatus::Failed, Some(e.to_string()), None);
                        }
                    }
                }
                JobKind::Stage { .. } => match self.build_wire_job(&claim, worker) {
                    Ok(wire) => return Message::Job(Box::new(wire)),
                    Err(e) => {
                        self.record(&claim, JobStatus::Failed, Some(e.to_string()), None);
                    }
                },
            }
        }
    }

    /// Assembles the shipment for one stage job: every upstream stage
    /// artifact present in the store (the worker's session loads them
    /// instead of recomputing), plus the campaign chunk-log prefix when
    /// the job is at or past the campaign stage — the adoption path for
    /// re-leased in-flight campaigns — and the sweep's analysis knobs,
    /// which keep the worker sweep-agnostic.
    ///
    /// Artifacts already resident on `peer` (shipped to it before, or
    /// produced by it) are elided from the shipment: the worker's slot
    /// cache serves them, and if it evicted one, the session recomputes
    /// it byte-identically — elision can change bytes on the wire, never
    /// bytes in the store. The campaign chunk-log prefix always ships;
    /// it is mutable state, not a content-addressed artifact.
    fn build_wire_job(&self, claim: &ServiceClaim, peer: u64) -> Result<WireJob, EngineError> {
        let plan = &claim.plan;
        let spec = plan.graph.jobs[claim.job].clone();
        let target = spec.kind.stage().expect("stage node");
        let digests = plan
            .stage_digests(claim.job, self.registry)?
            .expect("stage node");
        let stages = digests.pipeline().stages();
        let at = stages
            .iter()
            .position(|&s| s == target)
            .expect("target in pipeline");
        let resident = self.resident_digests(peer).unwrap_or_default();
        let mut artifacts = Vec::new();
        let mut shipped = Vec::new();
        for &stage in &stages[..at] {
            let Some(digest) = digests.get(stage) else {
                continue;
            };
            let Some(doc) = self.store.load_stage(digest) else {
                continue;
            };
            let bytes = doc.to_compact().len() as u64;
            if resident.contains(&digest) {
                self.elided_bytes.fetch_add(bytes, Ordering::Relaxed);
            } else {
                self.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
                shipped.push(digest);
                artifacts.push(doc);
            }
        }
        self.mark_resident(peer, &shipped);
        let mut prefix = None;
        if let Some(digest) = digests.get(StageKind::Campaign) {
            let campaign_at = stages
                .iter()
                .position(|&s| s == StageKind::Campaign)
                .expect("campaign digest implies a campaign stage");
            if claim.force && target == StageKind::Campaign {
                // Force means re-simulate from scratch: discard the log so
                // the fresh run rewrites it (the single-process repair
                // semantics), and ship no prefix.
                self.store.reset_samples(digest)?;
            } else if at >= campaign_at {
                prefix = StageStore::load_samples(self.store, digest)
                    .filter(|samples| !samples.is_empty())
                    .map(|samples| SamplePrefix { digest, samples });
            }
        }
        Ok(WireJob {
            sweep: claim.sweep.clone(),
            job: claim.job,
            key: plan.keys[claim.job].clone(),
            spec,
            knobs: claim.knobs,
            artifacts,
            prefix,
        })
    }

    /// Streams a worker's campaign checkpoint chunk into the store's
    /// chunk log. Append failures are logged, not fatal: a gap (a reset
    /// raced a zombie writer) only costs the marker its cache-hit, which
    /// the validation layer already handles.
    fn chunk(&self, digest: u64, start: usize, total: usize, samples: &[u64]) {
        if let Err(e) = self.store.append_samples(digest, start, total, samples) {
            eprintln!("coordinator: chunk append for {digest:016x} failed: {e}");
        }
    }

    fn reset_log(&self, digest: u64) {
        if let Err(e) = self.store.reset_samples(digest) {
            eprintln!("coordinator: log reset for {digest:016x} failed: {e}");
        }
    }

    /// Merges a worker's finished job: persist its stage artifacts
    /// (content-addressed — racing duplicates are harmless) and fit
    /// payload, then record it with the registry. Returns `false` when
    /// the result is malformed (unknown sweep, out-of-range or
    /// never-leased node) and the peer should be dropped.
    fn complete_remote(&self, result: JobResult, peer: u64) -> bool {
        let (plausible, plan, persist) = {
            let state = self.lock();
            (
                state.sweeps.result_plausible(&result.sweep, result.job),
                state.sweeps.plan(&result.sweep),
                state.sweeps.persistent(&result.sweep),
            )
        };
        if plausible != Some(true) {
            return false;
        }
        let mut error = result.error;
        let mut summary = result.summary;
        let mut produced = Vec::new();
        for doc in &result.stage_docs {
            let Some(digest) = doc.get("digest").and_then(Json::as_u64) else {
                continue; // not a stage envelope; ignore
            };
            if let Err(e) = self.store.save_stage(digest, doc) {
                error = Some(format!("persisting stage artifact {digest:016x}: {e}"));
                summary = None;
                break;
            }
            produced.push(digest);
        }
        // The worker that computed these artifacts holds them in its
        // slot cache: future claims on this peer can elide them.
        self.mark_resident(peer, &produced);
        let Some(plan) = plan else {
            return true; // terminal sweep: absorb the late result
        };
        if error.is_none() {
            if let (Some(s), Some((doc, sample))) = (&summary, &result.fit) {
                if let Err(e) =
                    self.store
                        .write_job(&plan.keys[result.job], s, doc.clone(), sample.as_deref())
                {
                    error = Some(format!("persisting job artifact: {e}"));
                    summary = None;
                }
            }
        }
        let status = if error.is_none() {
            JobStatus::Executed
        } else {
            JobStatus::Failed
        };
        let record = JobRecord {
            key: plan.keys[result.job].clone(),
            label: plan.graph.jobs[result.job].label(),
            status,
            error,
            summary,
        };
        self.record_journaled(&result.sweep, result.job, persist, record);
        true
    }

    /// Handles a client submission: durable-then-acknowledged. Shared by
    /// the binary protocol and the HTTP gateway — one validation path,
    /// one durability contract, whatever the wire.
    fn submit_sweep(&self, spec: &Json, opts: SubmitOptions) -> Result<String, String> {
        let spec = SweepSpec::from_json(spec).map_err(|e| format!("bad sweep spec: {e}"))?;
        let mut state = self.lock();
        state
            .sweeps
            .submit(spec, opts, self.registry)
            .map_err(|e| e.to_string())
    }

    fn submit(&self, spec: &Json, opts: SubmitOptions) -> Message {
        match self.submit_sweep(spec, opts) {
            Ok(sweep) => Message::Submitted { sweep },
            Err(reason) => Message::Reject { reason },
        }
    }

    fn status(&self, sweep: Option<&str>) -> Message {
        let state = self.lock();
        let mut sweeps = state.sweeps.statuses();
        if let Some(id) = sweep {
            sweeps.retain(|s| s.id == id);
            if sweeps.is_empty() {
                return Message::Reject {
                    reason: format!("unknown sweep '{id}'"),
                };
            }
        }
        Message::StatusReport { sweeps }
    }

    fn cancel(&self, sweep: &str) -> Message {
        let mut state = self.lock();
        match state.sweeps.cancel(sweep) {
            Ok(result) => Message::Cancelled {
                sweep: sweep.to_string(),
                state: result.name().to_string(),
            },
            Err(e) => Message::Reject {
                reason: e.to_string(),
            },
        }
    }

    /// Streams progress snapshots for the chosen sweeps until all of
    /// them are terminal (or the service winds down): a `Progress` frame
    /// whenever a snapshot changed — job completions *and* campaign
    /// chunk-log growth — then `FollowEnd`.
    ///
    /// The state lock is held only for in-memory reads, and only on
    /// ticks where the registry's revision moved; campaign chunk-log
    /// scans (real disk I/O, one per campaign node) always run *outside*
    /// the lock, so a follower can never stall the worker fleet.
    fn follow(&self, stream: &mut TcpStream, sweep: Option<String>) -> io::Result<()> {
        let targets = match self.follow_targets(sweep) {
            Ok(targets) => targets,
            Err(reason) => return protocol::send(stream, &Message::Reject { reason }),
        };
        self.follow_stream(&targets, &mut |snapshot| {
            protocol::send(stream, &Message::Progress(Box::new(snapshot)))
        })?;
        protocol::send(stream, &Message::FollowEnd)
    }

    /// Resolves a follow request to the sweep ids it watches.
    fn follow_targets(&self, sweep: Option<String>) -> Result<Vec<String>, String> {
        let state = self.lock();
        match sweep {
            Some(id) => {
                if state.sweeps.contains(&id) {
                    Ok(vec![id])
                } else {
                    Err(format!("unknown sweep '{id}'"))
                }
            }
            None => Ok(state.sweeps.ids()),
        }
    }

    /// The transport-agnostic follow loop, shared by binary `Follow`
    /// streams and SSE followers: emit each changed snapshot — job
    /// completions *and* campaign chunk-log growth — until every target
    /// is terminal or the service winds down. Emit failures (the peer
    /// vanished) end the stream.
    fn follow_stream(
        &self,
        targets: &[String],
        emit: &mut dyn FnMut(SweepSnapshot) -> io::Result<()>,
    ) -> io::Result<()> {
        let mut sent: HashMap<String, String> = HashMap::new();
        let mut shells: Vec<(SweepSnapshot, Vec<u64>)> = Vec::new();
        let mut seen_revision = None;
        loop {
            let revision = { self.lock().sweeps.revision() };
            if seen_revision != Some(revision) {
                seen_revision = Some(revision);
                let state = self.lock();
                shells = targets
                    .iter()
                    .filter_map(|id| {
                        state
                            .sweeps
                            .snapshot(id)
                            .map(|shell| (shell, state.sweeps.campaign_digests(id)))
                    })
                    .collect();
            }
            let all_terminal = shells.iter().all(|(shell, _)| shell.state.terminal());
            for (shell, digests) in &shells {
                let mut snapshot = shell.clone();
                snapshot.campaigns = mbcr_engine::campaign_progress_for(self.store, digests);
                let id = snapshot.id.clone();
                let rendered = protocol::snapshot_json(&snapshot).to_compact();
                if sent.get(&id) != Some(&rendered) {
                    emit(snapshot)?;
                    sent.insert(id, rendered);
                }
            }
            if all_terminal || self.winding_down() {
                return Ok(());
            }
            std::thread::sleep(FOLLOW_TICK);
        }
    }
}

fn handle_connection(service: &Service<'_>, mut stream: TcpStream, peer: u64) {
    let _ = stream.set_nodelay(true);
    // The read timeout only bounds how often this handler checks the
    // wind-down flag; `receive_or_idle` guarantees a timeout landing
    // inside a frame resumes the read instead of tearing it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Handshake: a peer speaking another schema is refused — loudly, so
    // a misconfigured fleet fails instead of idling — and a connection
    // that never says hello is dropped after ~20 s.
    let mut idle_ticks = 0usize;
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(Message::Hello { schema })) => {
                if schema == protocol::wire_schema() {
                    break;
                }
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: format!(
                            "schema mismatch: peer speaks '{schema}', service '{}'",
                            protocol::wire_schema()
                        ),
                    },
                );
                return;
            }
            Ok(Received::Idle) => {
                idle_ticks += 1;
                if idle_ticks > 40 || service.winding_down() {
                    return;
                }
            }
            Ok(Received::Message(_)) => {
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: "handshake must start with hello".to_string(),
                    },
                );
                return;
            }
            Ok(Received::Closed) | Err(_) => return,
        }
    }
    let welcome = Message::Welcome {
        schema: protocol::wire_schema(),
    };
    if protocol::send(&mut stream, &welcome).is_err() {
        return;
    }
    // Whether this connection has identified as a worker (sent any frame
    // of the job loop). Clients never enter the lease table, so an idle
    // fleet check cannot be fooled by a lingering `follow` stream.
    let mut is_worker = false;
    let mut drained = false;
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(message)) => {
                match message {
                    Message::Request
                    | Message::Chunk { .. }
                    | Message::ResetLog { .. }
                    | Message::Heartbeat
                    | Message::Done(_)
                    | Message::Drain
                        if !is_worker =>
                    {
                        is_worker = true;
                        service.register(peer);
                        // Re-dispatch below via the worker arms.
                    }
                    _ => {}
                }
                if is_worker {
                    service.touch(peer);
                }
                match message {
                    Message::Request => {
                        let response = service.claim(peer);
                        let shutdown = matches!(response, Message::Shutdown);
                        if protocol::send(&mut stream, &response).is_err() || shutdown {
                            break;
                        }
                    }
                    Message::Chunk {
                        digest,
                        start,
                        total,
                        samples,
                    } => service.chunk(digest, start, total, &samples),
                    Message::ResetLog { digest } => service.reset_log(digest),
                    Message::Heartbeat => mbcr_obs::count("mbcr_heartbeats_total", &[], 1),
                    Message::Done(result) => {
                        if !service.complete_remote(*result, peer) {
                            break;
                        }
                    }
                    Message::Drain => {
                        drained = true;
                        break;
                    }
                    Message::Submit {
                        spec,
                        force,
                        checkpoint_interval,
                        priority,
                        max_concurrent,
                    } => {
                        let opts = SubmitOptions {
                            force,
                            checkpoint_interval,
                            // The binary Submit frame carries no batching
                            // knob; daemon-submitted sweeps use the tuned
                            // default width (results are identical).
                            batch_width: None,
                            persist: true,
                            priority,
                            max_concurrent,
                        };
                        let response = service.submit(&spec, opts);
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Status { sweep } => {
                        let response = service.status(sweep.as_deref());
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Cancel { sweep } => {
                        let response = service.cancel(&sweep);
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Follow { sweep } => {
                        let _ = service.follow(&mut stream, sweep);
                        break;
                    }
                    other => {
                        eprintln!(
                            "coordinator: peer {peer} sent unexpected {:?} frame; dropping",
                            other.to_json().get("type")
                        );
                        break;
                    }
                }
            }
            Ok(Received::Idle) => {
                if service.winding_down() {
                    // Idle peer after the service ended (or aborted):
                    // release it and wind the handler down.
                    let _ = protocol::send(&mut stream, &Message::Shutdown);
                    break;
                }
            }
            Ok(Received::Closed) => break,
            Err(e) => {
                eprintln!("coordinator: peer {peer} connection failed: {e}");
                break;
            }
        }
    }
    if is_worker {
        service.drop_worker(peer, if drained { "drained" } else { "lost" });
    }
}
