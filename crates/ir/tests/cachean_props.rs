//! Property tests for the abstract-interpretation cache analysis: on
//! randomly generated programs and randomly drawn cache geometries, the
//! classifier must stay sound against the `mbcr-cache` LRU simulator —
//! no site proved always-hit may ever miss, no site proved always-miss
//! may ever hit, no first-miss scope may see a second miss — and the
//! fixpoint must terminate (every `classify` call below returning at all
//! is that assertion; the iteration cap panics instead of spinning).
//!
//! The program generator mirrors `props.rs` (nested conditionals,
//! bounded loops, loads, arithmetic); geometries span 1–4 ways and
//! 16/32-byte lines down to caches small enough to thrash.

use mbcr_cache::CacheGeometry;
use mbcr_ir::{
    classify, execute, validate_classification, ConstFold, Expr, Inputs, Pass, Program,
    ProgramBuilder, Stmt, Var,
};
use proptest::prelude::*;

const ARRAY_LEN: u32 = 16;

/// Deterministic per-case generator (SplitMix64), independent of the shim's
/// internals so a failing seed reproduces from the panic message alone.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A random valid L1 geometry, biased toward small caches so conflict
/// and capacity behavior (the hard part of the may analysis) is hit
/// often, not just the roomy paper configuration.
fn gen_geometry(g: &mut Gen) -> CacheGeometry {
    let line = [16u64, 32][g.below(2) as usize];
    let ways = [1u32, 2, 4][g.below(3) as usize];
    let sets = [1u64, 2, 4, 8][g.below(4) as usize];
    CacheGeometry::new(sets * u64::from(ways) * line, ways, line)
        .expect("generated geometries are valid")
}

/// A small arithmetic expression over the program's variables; loads use
/// constant in-range indices only (the interpreter faults on out-of-range
/// indices, and these programs must always run).
fn gen_expr(g: &mut Gen, vars: &[Var], arr: mbcr_ir::ArrayId) -> Expr {
    match g.below(5) {
        0 => Expr::c(g.below(9) as i64 - 4),
        1 | 2 => Expr::var(vars[g.below(vars.len() as u64) as usize]),
        3 => Expr::var(vars[g.below(vars.len() as u64) as usize]).add(Expr::c(g.below(5) as i64)),
        _ => Expr::load(arr, Expr::c(g.below(u64::from(ARRAY_LEN)) as i64)),
    }
}

/// Variable pools for generation: loop counters are owned by their loop
/// construct (see `props.rs` for why clobbering them would fault).
struct Pools {
    general: Vec<Var>,
    loops: Vec<Var>,
}

fn gen_seq(g: &mut Gen, p: &Pools, arr: mbcr_ir::ArrayId, depth: u32) -> Vec<Stmt> {
    let len = 1 + g.below(3) as usize;
    (0..len).map(|_| gen_stmt(g, p, arr, depth)).collect()
}

fn gen_stmt(g: &mut Gen, p: &Pools, arr: mbcr_ir::ArrayId, depth: u32) -> Stmt {
    let v = p.general[g.below(p.general.len() as u64) as usize];
    let choice = if depth == 0 { g.below(3) } else { g.below(6) };
    match choice {
        0 | 1 => Stmt::Assign(v, gen_expr(g, &p.general, arr)),
        2 => Stmt::store(
            arr,
            Expr::c(g.below(u64::from(ARRAY_LEN)) as i64),
            Expr::var(v),
        ),
        3 => Stmt::if_(
            Expr::var(v).gt(Expr::c(g.below(7) as i64 - 3)),
            gen_seq(g, p, arr, depth - 1),
            gen_seq(g, p, arr, depth - 1),
        ),
        4 => {
            let counter = p.loops[depth as usize - 1];
            let max_iter = 2 + g.below(4) as u32;
            let mut body = gen_seq(g, p, arr, depth - 1);
            body.push(Stmt::Assign(counter, Expr::var(counter).sub(Expr::c(1))));
            Stmt::if_(
                Expr::c(1),
                vec![
                    Stmt::Assign(counter, Expr::var(v).rem(Expr::c(i64::from(max_iter) + 1))),
                    Stmt::while_(Expr::var(counter).gt(Expr::c(0)), max_iter, body),
                ],
                vec![],
            )
        }
        _ => {
            let idx = p.loops[depth as usize - 1];
            let max_iter = 2 + g.below(5) as u32;
            let to = if g.below(2) == 0 {
                Expr::c(i64::from(max_iter))
            } else {
                Expr::var(v).rem(Expr::c(i64::from(max_iter) + 1))
            };
            let mut body = gen_seq(g, p, arr, depth - 1);
            body.push(Stmt::Assign(
                p.general[g.below(p.general.len() as u64) as usize],
                Expr::load(arr, Expr::var(idx)),
            ));
            Stmt::for_(idx, Expr::c(0), to, max_iter, body)
        }
    }
}

fn gen_program(seed: u64) -> (Program, Vec<Inputs>) {
    let mut g = Gen::new(seed);
    let mut b = ProgramBuilder::new("prop");
    let arr = b.array("m", ARRAY_LEN);
    let pools = Pools {
        general: (0..4).map(|i| b.var(&format!("x{i}"))).collect(),
        loops: (0..2).map(|i| b.var(&format!("l{i}"))).collect(),
    };
    for stmt in gen_seq(&mut g, &pools, arr, 2) {
        b.push(stmt);
    }
    let program = b
        .build()
        .expect("generated programs are structurally valid");
    let inputs = (0..6)
        .map(|_| {
            let mut inp = Inputs::new();
            for &v in &pools.general {
                inp = inp.with_var(v, g.below(11) as i64 - 4);
            }
            inp
        })
        .collect();
    (program, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole soundness property: `classify` terminates on any
    /// (program, il1, dl1) and the simulator never contradicts it —
    /// `validate_classification` must return zero CCA diagnostics.
    #[test]
    fn classifier_is_sound_against_the_simulator(seed in any::<u64>(),) {
        let (program, inputs) = gen_program(seed);
        let mut g = Gen::new(seed ^ 0x00CA_C4EA);
        let il1 = gen_geometry(&mut g);
        let dl1 = gen_geometry(&mut g);
        let cls = classify(&program, il1, dl1);
        // The rollup is a partition of the sites.
        for side in [cls.rollup.il1, cls.rollup.dl1] {
            prop_assert_eq!(
                side.always_hit + side.always_miss + side.first_miss + side.not_classified,
                side.sites
            );
        }
        prop_assert_eq!(cls.rollup.il1.sites + cls.rollup.dl1.sites, cls.sites.len());
        let diags = validate_classification(&program, &inputs, &cls)
            .expect("generated programs execute on generated inputs");
        prop_assert!(
            diags.is_empty(),
            "soundness findings at il1 {il1} / dl1 {dl1} (seed {seed:#x}): {diags}"
        );
    }

    /// Constant folding composes with the classifier: a folded program
    /// runs identically (state + data trace) and classifies just as
    /// soundly. The verify gate may legitimately reject a fold on random
    /// (unbalanced) programs — only emitted programs are checked.
    #[test]
    fn fold_then_classify_stays_sound(seed in any::<u64>(),) {
        let (program, inputs) = gen_program(seed);
        let Ok(folded) = ConstFold.run(&program) else { return Ok(()); };
        for inp in &inputs {
            let before = execute(&program, inp).expect("original runs");
            let after = execute(&folded, inp).expect("folded runs");
            prop_assert_eq!(&before.state, &after.state);
            prop_assert_eq!(&before.path, &after.path);
            let data = |r: &mbcr_ir::Run| -> Vec<_> { r.trace.data_accesses().copied().collect() };
            prop_assert_eq!(data(&before), data(&after));
        }
        let mut g = Gen::new(seed ^ 0x0F01_D0CA);
        let geometry = gen_geometry(&mut g);
        let cls = classify(&folded, geometry, geometry);
        let diags = validate_classification(&folded, &inputs, &cls).expect("folded runs");
        prop_assert!(
            diags.is_empty(),
            "folded program became unsound at {geometry} (seed {seed:#x}): {diags}"
        );
    }
}
