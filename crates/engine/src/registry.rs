//! The benchmark registry a sweep resolves names against.
//!
//! Defaults to the Mälardalen suite, but any [`Benchmark`] — including
//! custom programs built with `mbcr_ir::ProgramBuilder` — can be inserted,
//! so the engine schedules arbitrary workloads, not just the paper's.

use mbcr_malardalen::Benchmark;

/// A name → [`Benchmark`] mapping.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    benchmarks: Vec<Benchmark>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// The Mälardalen suite, in the paper's Table 2 order.
    #[must_use]
    pub fn malardalen() -> Self {
        Self {
            benchmarks: mbcr_malardalen::suite(),
        }
    }

    /// Inserts (or replaces, by name) a benchmark.
    pub fn insert(&mut self, benchmark: Benchmark) {
        if let Some(slot) = self
            .benchmarks
            .iter_mut()
            .find(|b| b.name == benchmark.name)
        {
            *slot = benchmark;
        } else {
            self.benchmarks.push(benchmark);
        }
    }

    /// Looks a benchmark up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// The registered names, in insertion order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.benchmarks.iter().map(|b| b.name).collect()
    }

    /// Iterates the registered benchmarks.
    pub fn iter(&self) -> impl Iterator<Item = &Benchmark> {
        self.benchmarks.iter()
    }

    /// Number of registered benchmarks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malardalen_registry_matches_suite() {
        let r = Registry::malardalen();
        assert_eq!(r.len(), 11);
        assert!(r.get("bs").is_some());
        assert!(r.get("nope").is_none());
        assert_eq!(r.names()[0], "bs");
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut r = Registry::empty();
        r.insert(mbcr_malardalen::bs::benchmark());
        r.insert(mbcr_malardalen::bs::benchmark());
        assert_eq!(r.len(), 1);
    }
}
