//! Paper Table 1 — `bs` per input vector: runs (thousands) and pWCET@10⁻¹²
//! for PUB alone vs PUB+TAC.
//!
//! Paper values for reference (runs in thousands / pWCET cycles):
//!
//! ```text
//!        R_pub  R_p+t   PUB    P+T
//! v1       1     40    3212   4125
//! v3       2     20    3149   4432
//! v5      50     50    6712   6712
//! v7      20     20    4317   4317
//! v9       1     70    2850   7571
//! v11      1      8    3455   4003
//! v13      1     80    3026   7377
//! v15      6     40    2995   3694
//! ```
//!
//! Absolute cycles differ (our platform is a simulator with different
//! latencies); the shape to check is: R_p+t ≥ R_pub, and pWCET(P+T) ≥
//! pWCET(PUB) whenever TAC demands more runs.

use mbcr::analyze_pub_tac;
use mbcr_bench::{banner, harness_config, in_thousands, write_csv, Table};

const PAPER: [(&str, u32, u32, u32, u32); 8] = [
    ("v1", 1, 40, 3212, 4125),
    ("v3", 2, 20, 3149, 4432),
    ("v5", 50, 50, 6712, 6712),
    ("v7", 20, 20, 4317, 4317),
    ("v9", 1, 70, 2850, 7571),
    ("v11", 1, 8, 3455, 4003),
    ("v13", 1, 80, 3026, 7377),
    ("v15", 6, 40, 2995, 3694),
];

fn main() {
    banner("Table 1: bs per input vector — runs and pWCET@1e-12, PUB vs PUB+TAC");
    let cfg = harness_config(0x7AB1);
    let program = mbcr_malardalen::bs::program();

    let mut t = Table::new(&[
        "input",
        "R_pub(k)",
        "R_p+t(k)",
        "pWCET PUB",
        "pWCET P+T",
        "paper R(k)",
        "paper pWCET",
    ]);
    let mut rows = Vec::new();
    let mut grew = 0usize;
    let mut non_decreasing = true;

    for v in mbcr_malardalen::bs::input_vectors() {
        let a = analyze_pub_tac(&program, &v.inputs, &cfg).expect("analyze bs vector");
        let paper = PAPER.iter().find(|p| p.0 == v.name).expect("paper row");
        t.row(&[
            &v.name,
            &in_thousands(a.r_pub as u64),
            &in_thousands(a.r_pub_tac),
            &format!("{:.0}", a.pwcet_pub),
            &format!("{:.0}", a.pwcet_pub_tac),
            &format!("{}/{}", paper.1, paper.2),
            &format!("{}/{}", paper.3, paper.4),
        ]);
        rows.push(format!(
            "{},{},{},{:.1},{:.1}",
            v.name, a.r_pub, a.r_pub_tac, a.pwcet_pub, a.pwcet_pub_tac
        ));
        if a.r_pub_tac > a.r_pub as u64 {
            grew += 1;
        }
        if a.r_pub_tac < a.r_pub as u64 {
            non_decreasing = false;
        }
    }
    t.print();

    println!(
        "\nTAC raised the run requirement beyond MBPTA convergence for {grew}/8 vectors \
         (paper: 6/8)."
    );
    assert!(
        non_decreasing,
        "R_p+t = max(R_pub, R_tac) must never shrink"
    );
    assert!(grew >= 1, "TAC must bind for at least one vector");

    let path = write_csv(
        "table1_bs_inputs.csv",
        "input,r_pub,r_pub_tac,pwcet_pub,pwcet_pub_tac",
        &rows,
    );
    println!("rows written to {}", path.display());
}
