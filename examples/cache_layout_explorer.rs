//! Explore TAC's view of a workload: which cache-line conflict groups
//! exist, how damaging they are, and how many runs they demand.
//!
//! Run with `cargo run --release --example cache_layout_explorer [bench]`
//! (default: all benchmarks).

use mbcr::prelude::*;
use mbcr_tac::analyze_lines;

fn explore(bench: &mbcr_malardalen::Benchmark) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AnalysisConfig::default();
    let pubbed = pub_transform(&bench.program, &cfg.pub_cfg)?;
    let run = execute(&pubbed.program, &bench.default_input)?;

    println!("\n=== {} ===", bench.name);
    println!(
        "pubbed trace: {} accesses ({} fetches, {} data)",
        run.trace.len(),
        run.trace.instr_fetches().count(),
        run.trace.data_accesses().count()
    );

    for (label, stream, geometry) in [
        (
            "IL1",
            run.trace.instr_lines(cfg.platform.il1.line_size()),
            cfg.platform.il1,
        ),
        (
            "DL1",
            run.trace.data_lines(cfg.platform.dl1.line_size()),
            cfg.platform.dl1,
        ),
    ] {
        let tac = analyze_lines(&stream, &cfg.tac.for_cache(&geometry, 7));
        println!(
            "{label}: {} distinct lines, {} candidate groups, {} relevant, R = {}",
            tac.unique_lines,
            tac.groups_evaluated,
            tac.relevant_groups.len(),
            tac.runs_required
        );
        for class in tac.classes.iter().take(3) {
            println!(
                "    class: impact ~{:.0} extra misses, {} groups, p = {:.3e}, R = {}",
                class.impact, class.group_count, class.prob, class.runs
            );
        }
        for g in tac.relevant_groups.iter().take(3) {
            println!(
                "    group {:?}: p = {:.3e}, +{:.0} misses",
                g.lines.iter().map(|l| l.0).collect::<Vec<_>>(),
                g.prob,
                g.extra_misses
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = std::env::args().nth(1);
    for bench in mbcr_malardalen::suite() {
        if filter.as_deref().is_none_or(|f| f == bench.name) {
            explore(&bench)?;
        }
    }
    Ok(())
}
