//! Analysis configuration: platform, PUB, TAC tuning and MBPTA settings.

use mbcr_cache::CacheGeometry;
use mbcr_cpu::PlatformConfig;
use mbcr_evt::ConvergenceConfig;
use mbcr_pub::PubConfig;
use mbcr_tac::TacConfig;

/// TAC tuning knobs that are independent of the cache geometry (the
/// geometry — sets and ways — is taken from the platform's caches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TacTuning {
    /// Maximum acceptable probability of missing a relevant layout
    /// (paper: 10⁻⁹).
    pub p_target: f64,
    /// Ignore conflict classes rarer than this per run.
    pub prob_floor: f64,
    /// Minimum expected extra misses for a group to matter.
    pub min_extra_misses: f64,
    /// Impact-clustering tolerance.
    pub impact_tolerance: f64,
    /// Hot-line cap.
    pub max_hot_lines: usize,
    /// Neighbour cap per anchor line.
    pub max_neighbors: usize,
    /// Minimum mutual interleaving for conflict candidacy.
    pub min_interleave: u32,
    /// Cap on enumerated groups.
    pub max_groups: usize,
    /// Monte-Carlo repetitions per impact estimate.
    pub mc_reps: u32,
}

impl Default for TacTuning {
    fn default() -> Self {
        let d = TacConfig::new(64, 2);
        Self {
            p_target: d.p_target,
            prob_floor: d.prob_floor,
            min_extra_misses: d.min_extra_misses,
            impact_tolerance: d.impact_tolerance,
            max_hot_lines: d.max_hot_lines,
            max_neighbors: d.max_neighbors,
            min_interleave: d.min_interleave,
            max_groups: d.max_groups,
            mc_reps: d.mc_reps,
        }
    }
}

impl TacTuning {
    /// Instantiates a full [`TacConfig`] for one cache.
    #[must_use]
    pub fn for_cache(&self, geometry: &CacheGeometry, seed: u64) -> TacConfig {
        TacConfig {
            sets: geometry.sets(),
            ways: geometry.ways(),
            p_target: self.p_target,
            prob_floor: self.prob_floor,
            min_extra_misses: self.min_extra_misses,
            impact_tolerance: self.impact_tolerance,
            max_hot_lines: self.max_hot_lines,
            max_neighbors: self.max_neighbors,
            min_interleave: self.min_interleave,
            max_groups: self.max_groups,
            mc_reps: self.mc_reps,
            seed,
        }
    }
}

/// Full configuration of the Figure 3 pipeline.
///
/// Build with [`AnalysisConfig::builder`]:
///
/// ```
/// use mbcr::AnalysisConfig;
/// let cfg = AnalysisConfig::builder().seed(42).quick().build();
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// The simulated platform (caches + latencies).
    pub platform: PlatformConfig,
    /// PUB transformation options.
    pub pub_cfg: PubConfig,
    /// TAC tuning.
    pub tac: TacTuning,
    /// MBPTA convergence procedure settings.
    pub convergence: ConvergenceConfig,
    /// Exceedance probability at which pWCET values are reported
    /// (paper: 10⁻¹²).
    pub exceedance: f64,
    /// Master seed of every campaign.
    pub seed: u64,
    /// Hard cap on measurement-campaign length (scaled experiments trim the
    /// paper's 500k-run campaigns; the raw TAC requirement is still
    /// reported).
    pub max_campaign_runs: usize,
    /// Worker threads for the final campaigns.
    pub threads: usize,
    /// Checkpoint a running measurement campaign to its stage store every
    /// this many runs (`0`: only when the campaign completes). Purely a
    /// durability/scheduling knob: the sample is bit-identical at any
    /// interval, so — like `threads` — it is excluded from
    /// [`AnalysisConfig::digest`].
    pub checkpoint_interval: usize,
    /// Cache layouts simulated per trace pass in measurement campaigns
    /// (`mbcr_cpu::Parallelism::batch_width`). Samples are bit-identical at
    /// every width, so — like `threads` — this is a pure throughput knob,
    /// excluded from [`AnalysisConfig::digest`].
    pub batch_width: usize,
}

impl AnalysisConfig {
    /// Starts a builder with the paper's defaults.
    #[must_use]
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder::default()
    }

    /// A stable digest over every knob that affects analysis *results*
    /// (`threads` is excluded: campaigns are bit-identical at any thread
    /// count). Batch drivers key cached artifacts on this, so re-runs with
    /// an unchanged configuration can skip completed jobs while any knob
    /// change invalidates them.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let canonical = format!(
            "{:?}|{:?}|{:?}|{:?}|{}|{}|{}",
            self.platform,
            self.pub_cfg,
            self.tac,
            self.convergence,
            self.exceedance,
            self.seed,
            self.max_campaign_runs,
        );
        mbcr_json::fnv1a(mbcr_json::FNV_OFFSET, &canonical)
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self::builder().build()
    }
}

/// Builder for [`AnalysisConfig`].
#[derive(Debug, Clone)]
pub struct AnalysisConfigBuilder {
    cfg: AnalysisConfig,
}

impl Default for AnalysisConfigBuilder {
    fn default() -> Self {
        Self {
            cfg: AnalysisConfig {
                platform: PlatformConfig::paper_default(),
                pub_cfg: PubConfig::paper(),
                tac: TacTuning::default(),
                convergence: ConvergenceConfig::default(),
                exceedance: 1e-12,
                seed: 0x6D62_6372, // "mbcr"
                max_campaign_runs: 200_000,
                threads: default_threads(),
                checkpoint_interval: 10_000,
                batch_width: mbcr_cpu::DEFAULT_BATCH_WIDTH,
            },
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl AnalysisConfigBuilder {
    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the simulated platform.
    #[must_use]
    pub fn platform(mut self, platform: PlatformConfig) -> Self {
        self.cfg.platform = platform;
        self
    }

    /// Sets both L1 geometries at once — the knob a cache-geometry sweep
    /// varies per job.
    #[must_use]
    pub fn l1_geometry(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.platform.il1 = geometry;
        self.cfg.platform.dl1 = geometry;
        self
    }

    /// Sets the PUB options.
    #[must_use]
    pub fn pub_cfg(mut self, pub_cfg: PubConfig) -> Self {
        self.cfg.pub_cfg = pub_cfg;
        self
    }

    /// Sets the TAC tuning.
    #[must_use]
    pub fn tac(mut self, tac: TacTuning) -> Self {
        self.cfg.tac = tac;
        self
    }

    /// Sets the convergence procedure options.
    #[must_use]
    pub fn convergence(mut self, convergence: ConvergenceConfig) -> Self {
        self.cfg.convergence = convergence;
        self
    }

    /// Sets the reporting exceedance probability.
    #[must_use]
    pub fn exceedance(mut self, p: f64) -> Self {
        self.cfg.exceedance = p;
        self
    }

    /// Caps measurement campaigns at `runs`.
    #[must_use]
    pub fn max_campaign_runs(mut self, runs: usize) -> Self {
        self.cfg.max_campaign_runs = runs;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads.max(1);
        self
    }

    /// Checkpoints running campaigns every `runs` measurements (`0`
    /// disables intra-campaign checkpoints). Never affects results.
    #[must_use]
    pub fn checkpoint_interval(mut self, runs: usize) -> Self {
        self.cfg.checkpoint_interval = runs;
        self
    }

    /// Sets the campaign layouts-per-pass width (clamped to at least 1).
    /// Never affects results.
    #[must_use]
    pub fn batch_width(mut self, width: usize) -> Self {
        self.cfg.batch_width = width.max(1);
        self
    }

    /// Shrinks every campaign for tests and examples: convergence capped at
    /// a few thousand runs, final campaigns at 3 000.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.cfg.convergence.initial = 200;
        self.cfg.convergence.step = 100;
        self.cfg.convergence.max_runs = 4_000;
        self.cfg.convergence.epsilon = 0.05;
        self.cfg.convergence.stable_windows = 3;
        self.cfg.max_campaign_runs = 3_000;
        self.cfg.tac.mc_reps = 4;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(self) -> AnalysisConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.exceedance, 1e-12);
        assert_eq!(cfg.tac.p_target, 1e-9);
        assert!(cfg.platform.is_mbpta_compliant());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = AnalysisConfig::builder()
            .seed(7)
            .exceedance(1e-9)
            .threads(2)
            .max_campaign_runs(500)
            .build();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.exceedance, 1e-9);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.max_campaign_runs, 500);
    }

    #[test]
    fn quick_preset_shrinks_campaigns() {
        let cfg = AnalysisConfig::builder().quick().build();
        assert!(cfg.convergence.max_runs <= 4_000);
        assert!(cfg.max_campaign_runs <= 3_000);
    }

    #[test]
    fn digest_tracks_result_affecting_knobs_only() {
        let base = AnalysisConfig::builder().seed(1).build();
        let same = AnalysisConfig::builder().seed(1).threads(7).build();
        assert_eq!(
            base.digest(),
            same.digest(),
            "threads must not affect the digest"
        );
        let checkpointed = AnalysisConfig::builder()
            .seed(1)
            .checkpoint_interval(123)
            .build();
        assert_eq!(
            base.digest(),
            checkpointed.digest(),
            "checkpoint interval is durability-only and must not affect the digest"
        );
        let batched = AnalysisConfig::builder().seed(1).batch_width(64).build();
        assert_eq!(
            base.digest(),
            batched.digest(),
            "batch width is throughput-only and must not affect the digest"
        );
        let reseeded = AnalysisConfig::builder().seed(2).build();
        assert_ne!(base.digest(), reseeded.digest());
        let regeo = AnalysisConfig::builder()
            .seed(1)
            .l1_geometry(CacheGeometry::new(2048, 2, 32).unwrap())
            .build();
        assert_ne!(base.digest(), regeo.digest());
    }

    #[test]
    fn l1_geometry_sets_both_caches() {
        let g = CacheGeometry::new(2048, 4, 32).unwrap();
        let cfg = AnalysisConfig::builder().l1_geometry(g).build();
        assert_eq!(cfg.platform.il1, g);
        assert_eq!(cfg.platform.dl1, g);
    }

    #[test]
    fn tac_tuning_instantiates_for_geometry() {
        let tac = TacTuning::default();
        let g = CacheGeometry::paper_l1();
        let c = tac.for_cache(&g, 9);
        assert_eq!(c.sets, 64);
        assert_eq!(c.ways, 2);
        assert_eq!(c.seed, 9);
    }
}
