//! SplitMix64: seed expansion and avalanche mixing.

use crate::Rng64;

/// The finalization/avalanche function of SplitMix64 (Stafford's Mix13
/// variant, as used in `java.util.SplittableRandom`).
///
/// Every bit of the input affects every bit of the output with probability
/// close to 1/2, which is the property the random cache placement relies on:
/// `set = mix64(line ^ seed) % sets` gives each line an (approximately)
/// independent uniform set for each seed.
///
/// # Examples
///
/// ```
/// use mbcr_rng::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
/// ```
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator: a 64-bit counter passed through [`mix64`].
///
/// Small state, trivially seedable, and good enough statistically to expand a
/// single `u64` seed into the 256-bit state of [`Xoshiro256PlusPlus`]
/// (its recommended seeding procedure).
///
/// [`Xoshiro256PlusPlus`]: crate::Xoshiro256PlusPlus
///
/// # Examples
///
/// ```
/// use mbcr_rng::{Rng64, SplitMix64};
/// let mut sm = SplitMix64::new(123);
/// let first = sm.next_u64();
/// let second = sm.next_u64();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current counter state (useful for checkpointing).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for SplitMix64 seeded with 1234567, from the
    /// public-domain reference implementation by Sebastiano Vigna
    /// (first three outputs, widely reproduced in other language ports).
    #[test]
    fn reference_vector_seed_1234567() {
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn mix64_zero_is_nonzero() {
        // mix64 must not have 0 as a fixed point, otherwise an all-zero seed
        // would produce a degenerate placement.
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut s = SplitMix64::new(1);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = SplitMix64::new(2);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64 * 64;
        for i in 0..64u64 {
            for x in 0..64u64 {
                let base = mix64(x.wrapping_mul(0x0123_4567_89AB_CDEF));
                let flipped = mix64(x.wrapping_mul(0x0123_4567_89AB_CDEF) ^ (1 << i));
                total += (base ^ flipped).count_ones();
            }
        }
        let avg = f64::from(total) / f64::from(trials);
        assert!((avg - 32.0).abs() < 2.0, "avalanche average = {avg}");
    }
}
