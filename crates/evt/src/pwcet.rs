//! pWCET curves: empirical body + fitted tail.

use crate::eccdf::Eccdf;
use crate::exp_tail::{fit_exp_tail, EvtError, ExpTailFit, TailConfig};
use crate::gumbel::{fit_gumbel, GumbelFit};
use mbcr_rng::{Rng64, SplitMix64};

/// Which EVT model to fit to the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitMethod {
    /// Exponential tail selected by the coefficient-of-variation method
    /// (the paper's MBPTA engine; recommended).
    ExpTailCv,
    /// Gumbel via block maxima + probability-weighted moments.
    Gumbel {
        /// Block size for the maxima.
        block_size: usize,
    },
}

/// Optional dithering applied before fitting.
///
/// Simulated execution times are highly discrete (multiples of the miss
/// latency); adding sub-cycle uniform noise removes ties without changing
/// any cycle-resolution quantile, in the spirit of Lima & Bate (RTAS'17)
/// "randomised measurements".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dither {
    /// Use the raw values.
    None,
    /// Add deterministic U[0, 1) noise derived from the given seed.
    Uniform {
        /// Seed for the noise stream.
        seed: u64,
    },
}

/// The fitted tail model of a [`Pwcet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailModel {
    /// Exponential tail (CV method).
    ExpTail(ExpTailFit),
    /// Gumbel block-maxima fit.
    Gumbel(GumbelFit),
    /// The sample was deterministic: the pWCET is the observed constant.
    Degenerate,
}

/// A pWCET estimate: empirical distribution for the body, EVT model for the
/// extrapolated tail.
///
/// # Examples
///
/// ```
/// use mbcr_evt::{Dither, FitMethod, Pwcet, TailConfig};
/// use mbcr_rng::{Rng64, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::from_seed(1);
/// let sample: Vec<u64> = (0..5000).map(|_| 1000 + (rng.exponential(0.05) as u64)).collect();
/// let pwcet = Pwcet::fit(
///     &sample,
///     FitMethod::ExpTailCv,
///     &TailConfig::default(),
///     Dither::Uniform { seed: 7 },
/// )?;
/// let q = pwcet.quantile(1e-12);
/// assert!(q > 1000.0);
/// # Ok::<(), mbcr_evt::EvtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pwcet {
    eccdf: Eccdf,
    tail: TailModel,
}

impl Pwcet {
    /// Fits a pWCET estimate to a sample of execution times (cycles).
    ///
    /// A degenerate (constant) sample yields [`TailModel::Degenerate`]
    /// rather than an error: on a deterministic platform the pWCET *is* the
    /// constant.
    ///
    /// # Errors
    ///
    /// [`EvtError::NotEnoughData`] if the sample is too small for the
    /// requested method.
    pub fn fit(
        sample: &[u64],
        method: FitMethod,
        tail_cfg: &TailConfig,
        dither: Dither,
    ) -> Result<Pwcet, EvtError> {
        if sample.is_empty() {
            return Err(EvtError::NotEnoughData { needed: 1, got: 0 });
        }
        // Degeneracy is decided on the raw cycle counts: dithering a
        // constant sample must not manufacture a synthetic tail.
        if sample.windows(2).all(|w| w[0] == w[1]) {
            return Ok(Pwcet {
                eccdf: Eccdf::from_u64(sample),
                tail: TailModel::Degenerate,
            });
        }
        let values: Vec<f64> = match dither {
            Dither::None => sample.iter().map(|&v| v as f64).collect(),
            Dither::Uniform { seed } => {
                let mut rng = SplitMix64::new(seed);
                sample.iter().map(|&v| v as f64 + rng.next_f64()).collect()
            }
        };
        let eccdf = Eccdf::new(&values);
        let tail = match method {
            FitMethod::ExpTailCv => match fit_exp_tail(&values, tail_cfg) {
                Ok(f) => TailModel::ExpTail(f),
                Err(EvtError::DegenerateSample) => TailModel::Degenerate,
                Err(e) => return Err(e),
            },
            FitMethod::Gumbel { block_size } => match fit_gumbel(&values, block_size) {
                Ok(f) => TailModel::Gumbel(f),
                Err(EvtError::DegenerateSample) => TailModel::Degenerate,
                Err(e) => return Err(e),
            },
        };
        Ok(Pwcet { eccdf, tail })
    }

    /// The underlying empirical distribution.
    #[must_use]
    pub fn eccdf(&self) -> &Eccdf {
        &self.eccdf
    }

    /// The fitted tail model.
    #[must_use]
    pub fn tail(&self) -> &TailModel {
        &self.tail
    }

    /// The pWCET at per-run exceedance probability `p` (e.g. `1e-12`):
    /// empirical value where the sample resolves `p`, EVT extrapolation
    /// below that.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "exceedance probability must be in (0, 1)"
        );
        match &self.tail {
            TailModel::Degenerate => self.eccdf.max(),
            TailModel::ExpTail(f) => {
                if p >= f.zeta {
                    self.eccdf.quantile(p)
                } else {
                    // A pWCET estimate must never undercut what was already
                    // observed at the same exceedance probability.
                    f.quantile(p).max(self.eccdf.quantile(p))
                }
            }
            TailModel::Gumbel(g) => {
                // Use the empirical body where the sample still resolves p.
                let resolvable = 10.0 / self.eccdf.len() as f64;
                if p >= resolvable {
                    self.eccdf
                        .quantile(p)
                        .max(g.quantile(p).min(self.eccdf.max()))
                } else {
                    g.quantile(p)
                }
            }
        }
    }

    /// Modelled exceedance probability of `x`.
    #[must_use]
    pub fn exceedance(&self, x: f64) -> f64 {
        match &self.tail {
            TailModel::Degenerate => {
                if x >= self.eccdf.max() {
                    0.0
                } else {
                    1.0
                }
            }
            TailModel::ExpTail(f) => {
                if x <= f.u {
                    self.eccdf.exceedance(x)
                } else {
                    f.exceedance(x)
                }
            }
            TailModel::Gumbel(g) => {
                let emp = self.eccdf.exceedance(x);
                if emp > 10.0 / self.eccdf.len() as f64 {
                    emp
                } else {
                    g.exceedance(x)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_rng::Xoshiro256PlusPlus;

    fn sample(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        (0..n)
            .map(|_| 1000 + rng.exponential(0.02) as u64)
            .collect()
    }

    #[test]
    fn body_matches_empirical_tail_extrapolates() {
        let s = sample(10_000, 3);
        let p = Pwcet::fit(
            &s,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::None,
        )
        .unwrap();
        // Body: median must equal the empirical median.
        assert_eq!(p.quantile(0.5), p.eccdf().quantile(0.5));
        // Tail: beyond the sample resolution the estimate exceeds the max.
        assert!(p.quantile(1e-9) > p.eccdf().max());
    }

    #[test]
    fn degenerate_sample_yields_constant() {
        let s = vec![777u64; 500];
        let p = Pwcet::fit(
            &s,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::None,
        )
        .unwrap();
        assert_eq!(*p.tail(), TailModel::Degenerate);
        assert_eq!(p.quantile(1e-12), 777.0);
        assert_eq!(p.exceedance(777.0), 0.0);
        assert_eq!(p.exceedance(700.0), 1.0);
    }

    #[test]
    fn dither_breaks_ties_without_moving_quantiles_much() {
        let mut s = sample(5_000, 5);
        // Quantize heavily to force ties.
        for v in &mut s {
            *v = (*v / 100) * 100;
        }
        let dithered = Pwcet::fit(
            &s,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::Uniform { seed: 9 },
        )
        .unwrap();
        let q = dithered.quantile(1e-9);
        assert!(q > 1000.0 && q < 5000.0, "q = {q}");
    }

    #[test]
    fn gumbel_method_also_extrapolates() {
        let s = sample(10_000, 7);
        let p = Pwcet::fit(
            &s,
            FitMethod::Gumbel { block_size: 20 },
            &TailConfig::default(),
            Dither::None,
        )
        .unwrap();
        assert!(p.quantile(1e-12) > p.quantile(1e-6));
    }

    #[test]
    fn empty_sample_is_an_error() {
        assert!(matches!(
            Pwcet::fit(
                &[],
                FitMethod::ExpTailCv,
                &TailConfig::default(),
                Dither::None
            ),
            Err(EvtError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn exceedance_and_quantile_are_consistent() {
        let s = sample(8_000, 11);
        let p = Pwcet::fit(
            &s,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::None,
        )
        .unwrap();
        for prob in [1e-6, 1e-9] {
            let x = p.quantile(prob);
            let back = p.exceedance(x);
            assert!(
                (back - prob).abs() / prob < 0.01,
                "prob = {prob}, back = {back}"
            );
        }
    }
}

mbcr_json::impl_serialize_struct!(Pwcet { eccdf, tail });

impl mbcr_json::Serialize for TailModel {
    fn to_json(&self) -> mbcr_json::Json {
        use mbcr_json::Json;
        match self {
            TailModel::ExpTail(fit) => Json::Obj(vec![
                ("kind".to_string(), "exp_tail".into()),
                ("fit".to_string(), mbcr_json::Serialize::to_json(fit)),
            ]),
            TailModel::Gumbel(fit) => Json::Obj(vec![
                ("kind".to_string(), "gumbel".into()),
                ("fit".to_string(), mbcr_json::Serialize::to_json(fit)),
            ]),
            TailModel::Degenerate => Json::Obj(vec![("kind".to_string(), "degenerate".into())]),
        }
    }
}
