//! Shortest common supersequence (SCS) — PUB's minimal upper-bounding merge.
//!
//! Given the access sequences of the branches of a conditional, PUB inflates
//! each branch so that every branch's sequence upper-bounds every sibling's.
//! The *tightest* such merge for two sequences is their shortest common
//! supersequence, computed here by the classic longest-common-subsequence
//! (LCS) dynamic program with traceback.
//!
//! For `k > 2` branches the exact SCS is NP-hard; [`scs_many`] uses the
//! standard pairwise folding heuristic, which always yields a *valid* common
//! supersequence (soundness is preserved; only tightness is heuristic).

use crate::{SymSeq, Symbol};

/// Computes the shortest common supersequence of two sequences.
///
/// The result has length `|a| + |b| − |LCS(a, b)|` and contains both `a` and
/// `b` as subsequences. Ties in the DP are broken toward consuming `a` first,
/// which makes the output deterministic.
///
/// # Examples
///
/// The paper's Figure 1(b) example:
///
/// ```
/// use mbcr_trace::scs::scs2;
/// use mbcr_trace::SymSeq;
/// let a: SymSeq = "ABCA".parse().unwrap();
/// let b: SymSeq = "BACA".parse().unwrap();
/// let m = scs2(&a, &b);
/// assert_eq!(m.len(), 5);
/// assert!(m.is_supersequence_of(&a) && m.is_supersequence_of(&b));
/// ```
#[must_use]
pub fn scs2(a: &SymSeq, b: &SymSeq) -> SymSeq {
    scs2_by(a.symbols(), b.symbols(), |x, y| x == y)
        .into_iter()
        .collect()
}

/// Generic SCS over arbitrary token types with a caller-supplied equality.
///
/// PUB at the IR level merges *statement-run tokens* rather than single
/// accesses; this generic entry point serves both layers.
pub fn scs2_by<T: Clone>(a: &[T], b: &[T], eq: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if eq(&a[i], &b[j]) {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::with_capacity(n + m - lcs[0][0] as usize);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if eq(&a[i], &b[j]) {
            out.push(a[i].clone());
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            // Consuming from `a` keeps the LCS achievable: emit a[i].
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Length of the longest common subsequence of two symbol slices.
#[must_use]
pub fn lcs_len(a: &[Symbol], b: &[Symbol]) -> usize {
    let m = b.len();
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Folds [`scs2`] over many sequences (pairwise heuristic).
///
/// The result is a common supersequence of *all* inputs: each input embeds
/// into the fold at the step it participates in, and later SCS steps only
/// insert further elements (supersequence-ness is preserved under further
/// insertion).
///
/// Returns the empty sequence for an empty input set.
#[must_use]
pub fn scs_many(seqs: &[SymSeq]) -> SymSeq {
    let mut it = seqs.iter();
    let Some(first) = it.next() else {
        return SymSeq::new();
    };
    let mut acc = first.clone();
    for s in it {
        acc = scs2(&acc, s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymSeq {
        s.parse().unwrap()
    }

    #[test]
    fn scs_of_identical_is_identity() {
        let a = seq("ABCA");
        assert_eq!(scs2(&a, &a), a);
    }

    #[test]
    fn scs_with_empty_is_other() {
        let a = seq("ABCA");
        assert_eq!(scs2(&a, &SymSeq::new()), a);
        assert_eq!(scs2(&SymSeq::new(), &a), a);
    }

    #[test]
    fn scs_disjoint_is_concatenation_length() {
        let a = seq("AB");
        let b = seq("CD");
        let m = scs2(&a, &b);
        assert_eq!(m.len(), 4);
        assert!(m.is_supersequence_of(&a) && m.is_supersequence_of(&b));
    }

    #[test]
    fn paper_figure1b_example() {
        let m = scs2(&seq("ABCA"), &seq("BACA"));
        assert_eq!(m.len(), 5, "LCS(ABCA, BACA) = 3 so SCS length is 5");
        assert!(m.is_supersequence_of(&seq("ABCA")));
        assert!(m.is_supersequence_of(&seq("BACA")));
    }

    #[test]
    fn paper_section311_example() {
        // M1 = {ABCA}, M2 = {ADEA} -> minimal merge has 6 accesses (ABCDEA-like).
        let m = scs2(&seq("ABCA"), &seq("ADEA"));
        assert_eq!(m.len(), 6);
        assert!(m.is_supersequence_of(&seq("ABCA")));
        assert!(m.is_supersequence_of(&seq("ADEA")));
        assert_eq!(m.unique_symbols(), 5);
    }

    #[test]
    fn paper_observation4_example() {
        // M1 = {ABA}, M2 = {ACA}: SCS length 4 (e.g. ABCA or ACBA).
        let m = scs2(&seq("ABA"), &seq("ACA"));
        assert_eq!(m.len(), 4);
        assert!(m.is_supersequence_of(&seq("ABA")));
        assert!(m.is_supersequence_of(&seq("ACA")));
    }

    #[test]
    fn lcs_lengths() {
        assert_eq!(lcs_len(seq("ABCA").symbols(), seq("BACA").symbols()), 3);
        assert_eq!(lcs_len(seq("ABC").symbols(), seq("ABC").symbols()), 3);
        assert_eq!(lcs_len(seq("ABC").symbols(), seq("DEF").symbols()), 0);
        assert_eq!(lcs_len(&[], seq("ABC").symbols()), 0);
    }

    #[test]
    fn scs_many_covers_all_inputs() {
        let inputs = [seq("ABCA"), seq("ADEA"), seq("AFA")];
        let m = scs_many(&inputs);
        for i in &inputs {
            assert!(m.is_supersequence_of(i), "{m} should cover {i}");
        }
        assert!(scs_many(&[]).is_empty());
        assert_eq!(scs_many(&[seq("XY")]), seq("XY"));
    }

    #[test]
    fn scs_length_is_minimal_against_brute_force() {
        // Exhaustive check on short binary-alphabet sequences: SCS length
        // must equal |a| + |b| - LCS.
        let alphabet = [Symbol(0), Symbol(1)];
        let mut seqs = vec![SymSeq::new()];
        for len in 1..=4usize {
            let mut new = Vec::new();
            for s in &seqs {
                if s.len() == len - 1 {
                    for &a in &alphabet {
                        let mut v = s.symbols().to_vec();
                        v.push(a);
                        new.push(SymSeq::from_symbols(v));
                    }
                }
            }
            seqs.extend(new);
        }
        for a in &seqs {
            for b in &seqs {
                let m = scs2(a, b);
                let expect = a.len() + b.len() - lcs_len(a.symbols(), b.symbols());
                assert_eq!(m.len(), expect, "a={a} b={b} m={m}");
                assert!(m.is_supersequence_of(a));
                assert!(m.is_supersequence_of(b));
            }
        }
    }
}
