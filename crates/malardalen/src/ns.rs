//! `ns` — nested search through a 4-dimensional array (Mälardalen `ns.c`).
//!
//! Four nested loops scan `foo[5][5][5][5]`; the original returns on the
//! first hit. This model records the hit in a flag and always completes the
//! scan, matching the worst case (the paper's default input: full
//! traversal), which makes the benchmark single-path for a given target
//! presence pattern. The paper's Table 2 reports `ns` as the benchmark
//! needing the most runs (500k): the deeply nested loop code is re-fetched
//! hundreds of times, so instruction-cache conflict groups are highly
//! impactful — reproduce with the `table2_runs` bench.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Extent of each of the four dimensions.
pub const EXTENT: u32 = 5;
/// Total number of elements.
pub const TOTAL: u32 = EXTENT * EXTENT * EXTENT * EXTENT;

/// Builds the `ns` program.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("ns");
    let keys = b.array("keys", TOTAL);
    let target = b.var("target");
    let i = b.var("i");
    let j = b.var("j");
    let k = b.var("k");
    let l = b.var("l");
    let found = b.var("found");
    let fi = b.var("fi");
    let fj = b.var("fj");

    let e = i64::from(EXTENT);
    let idx = Expr::var(i)
        .mul(Expr::c(e))
        .add(Expr::var(j))
        .mul(Expr::c(e))
        .add(Expr::var(k))
        .mul(Expr::c(e))
        .add(Expr::var(l));
    b.push(Stmt::Assign(found, Expr::c(0)));
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(e),
        EXTENT,
        vec![Stmt::for_(
            j,
            Expr::c(0),
            Expr::c(e),
            EXTENT,
            vec![Stmt::for_(
                k,
                Expr::c(0),
                Expr::c(e),
                EXTENT,
                vec![Stmt::for_(
                    l,
                    Expr::c(0),
                    Expr::c(e),
                    EXTENT,
                    vec![Stmt::if_(
                        Expr::load(keys, idx.clone())
                            .eq_(Expr::var(target))
                            .and(Expr::var(found).eq_(Expr::c(0))),
                        vec![
                            Stmt::Assign(found, Expr::c(1)),
                            Stmt::Assign(fi, Expr::var(i)),
                            Stmt::Assign(fj, Expr::var(j)),
                        ],
                        vec![],
                    )],
                )],
            )],
        )],
    ));
    b.build().expect("ns is well-formed")
}

fn keys_data() -> Vec<i64> {
    let mut data: Vec<i64> = (0..TOTAL).map(|t| i64::from(t * 13 % 1000)).collect();
    *data.last_mut().expect("non-empty") = 9_999; // unique sentinel at the end
    data
}

fn search_inputs(p: &Program, target: i64) -> Inputs {
    let keys = p.array_by_name("keys").expect("keys");
    Inputs::new()
        .with_array(keys, keys_data())
        .with_var(p.var_by_name("target").expect("target"), target)
}

/// Default input: the target sits at the very last element (full scan, one
/// hit — the worst case of the original's early-return version).
#[must_use]
pub fn default_input() -> Inputs {
    search_inputs(&program(), 9_999)
}

/// Target at the end, absent, and in the middle.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    vec![
        NamedInput {
            name: "last".into(),
            inputs: search_inputs(&p, 9_999),
        },
        NamedInput {
            name: "absent".into(),
            inputs: search_inputs(&p, -1),
        },
        NamedInput {
            name: "middle".into(),
            inputs: search_inputs(&p, i64::from((TOTAL / 2) * 13 % 1000)),
        },
    ]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "ns",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn finds_the_sentinel_at_the_last_position() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        assert_eq!(run.state.var(p.var_by_name("found").unwrap()), 1);
        assert_eq!(
            run.state.var(p.var_by_name("fi").unwrap()),
            i64::from(EXTENT) - 1
        );
        assert_eq!(
            run.state.var(p.var_by_name("fj").unwrap()),
            i64::from(EXTENT) - 1
        );
    }

    #[test]
    fn absent_target_finds_nothing() {
        let p = program();
        let run = execute(&p, &input_vectors()[1].inputs).unwrap();
        assert_eq!(run.state.var(p.var_by_name("found").unwrap()), 0);
    }

    #[test]
    fn scan_always_reads_every_element() {
        let p = program();
        for v in input_vectors() {
            let run = execute(&p, &v.inputs).unwrap();
            assert_eq!(
                run.trace.data_accesses().count(),
                TOTAL as usize,
                "vector {}",
                v.name
            );
        }
    }

    #[test]
    fn found_flag_keeps_first_match_only() {
        // Duplicate values: fi/fj must reflect the first match.
        let p = program();
        let keys = p.array_by_name("keys").unwrap();
        let target = p.var_by_name("target").unwrap();
        let inputs = Inputs::new()
            .with_array(keys, vec![42; TOTAL as usize])
            .with_var(target, 42);
        let run = execute(&p, &inputs).unwrap();
        assert_eq!(run.state.var(p.var_by_name("fi").unwrap()), 0);
        assert_eq!(run.state.var(p.var_by_name("fj").unwrap()), 0);
    }
}
