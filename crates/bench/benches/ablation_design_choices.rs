//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//!
//! 1. loop padding on/off (PUB extension);
//! 2. exponential-tail vs Gumbel pWCET models;
//! 3. TAC impact-threshold sweep;
//! 4. randomized vs deterministic platform (why MBPTA needs the former).

use mbcr::{analyze_pub_tac, AnalysisConfig};
use mbcr_bench::{banner, harness_config, scaled, Table};
use mbcr_cpu::{campaign_parallel, PlatformConfig};
use mbcr_evt::{Dither, FitMethod, Pwcet, TailConfig};
use mbcr_ir::execute;
use mbcr_pub::{pub_transform, PubConfig};
use mbcr_tac::{analyze_symbolic, TacConfig};
use mbcr_trace::SymSeq;

fn main() {
    banner("Ablations: loop padding, tail model, TAC thresholds, platform randomization");
    let cfg = harness_config(0xAB1A);

    ablate_loop_padding(&cfg);
    ablate_tail_model(&cfg);
    ablate_tac_threshold();
    ablate_platform(&cfg);
}

fn ablate_loop_padding(cfg: &AnalysisConfig) {
    println!("\n--- 1. PUB loop padding (extension beyond the paper) ---");
    let mut t = Table::new(&["benchmark", "padding", "touch stmts", "pWCET P+T"]);
    for name in ["bs", "insertsort"] {
        let b = mbcr_malardalen::by_name(name).expect("benchmark exists");
        for (label, pub_cfg) in [
            ("off (paper)", PubConfig::paper()),
            ("on", PubConfig::with_loop_padding()),
        ] {
            let mut c = cfg.clone();
            c.pub_cfg = pub_cfg;
            let a = analyze_pub_tac(&b.program, &b.default_input, &c).expect("analyze");
            t.row(&[
                name,
                label,
                &a.pub_report.total_inserted_instrs().to_string(),
                &format!("{:.0}", a.pwcet_pub_tac),
            ]);
        }
    }
    t.print();
    println!("expected: padding inflates inserted instructions and (usually) the pWCET —");
    println!("the price of dropping the max-loop-bound input assumption.");
}

fn ablate_tail_model(cfg: &AnalysisConfig) {
    println!("\n--- 2. exponential tail (CV) vs Gumbel block maxima ---");
    let b = mbcr_malardalen::bs::benchmark();
    let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
    let trace = execute(&pubbed.program, &b.default_input)
        .expect("run")
        .trace;
    let sample = campaign_parallel(&cfg.platform, &trace, scaled(50_000), 0xAB2B, cfg.threads);

    let mut t = Table::new(&["model", "pWCET@1e-9", "pWCET@1e-12"]);
    for (label, method) in [
        ("exp tail (CV)", FitMethod::ExpTailCv),
        ("Gumbel b=50", FitMethod::Gumbel { block_size: 50 }),
        ("Gumbel b=200", FitMethod::Gumbel { block_size: 200 }),
    ] {
        let pw = Pwcet::fit(
            &sample,
            method,
            &TailConfig::default(),
            Dither::Uniform { seed: 3 },
        )
        .expect("fit");
        t.row(&[
            label,
            &format!("{:.0}", pw.quantile(1e-9)),
            &format!("{:.0}", pw.quantile(1e-12)),
        ]);
    }
    t.print();
    println!("expected: comparable orders; the exponential tail is the stable choice");
    println!("recommended by the MBPTA literature the paper builds on.");
}

fn ablate_tac_threshold() {
    println!("\n--- 3. TAC impact threshold and probability floor ---");
    let seq: SymSeq = "ABCDEA".parse().expect("valid");
    let stream = seq.repeat(1000);
    let mut t = Table::new(&["min_extra_misses", "relevant groups", "R_tac"]);
    for thr in [1.0, 4.0, 64.0, 1024.0, 1e6] {
        let mut cfg = TacConfig::paper_example();
        cfg.min_extra_misses = thr;
        let a = analyze_symbolic(&stream, &cfg);
        t.row(&[
            &format!("{thr}"),
            &a.relevant_groups.len().to_string(),
            &a.runs_required.to_string(),
        ]);
    }
    t.print();
    let mut t = Table::new(&["prob_floor", "classes", "R_tac"]);
    for floor in [1e-12, 1e-6, 1e-3] {
        let mut cfg = TacConfig::paper_example();
        cfg.prob_floor = floor;
        let a = analyze_symbolic(&stream, &cfg);
        t.row(&[
            &format!("{floor:e}"),
            &a.classes.len().to_string(),
            &a.runs_required.to_string(),
        ]);
    }
    t.print();
    println!("expected: R is stable until the threshold crosses the group's impact,");
    println!("then drops to 0 — the knobs gate *which* layouts count, not the math.");
}

fn ablate_platform(cfg: &AnalysisConfig) {
    println!("\n--- 4. randomized vs deterministic platform ---");
    let b = mbcr_malardalen::bs::benchmark();
    let trace = execute(&b.program, &b.default_input).expect("run").trace;

    let mut t = Table::new(&["platform", "distinct times in 1000 runs", "min", "max"]);
    for (label, platform) in [
        (
            "random placement+replacement",
            PlatformConfig::paper_default(),
        ),
        (
            "modulo + LRU (deterministic)",
            PlatformConfig::deterministic(),
        ),
    ] {
        let times = campaign_parallel(&platform, &trace, 1000, 0xAB4D, cfg.threads);
        let distinct: std::collections::HashSet<u64> = times.iter().copied().collect();
        t.row(&[
            label,
            &distinct.len().to_string(),
            &times.iter().min().expect("non-empty").to_string(),
            &times.iter().max().expect("non-empty").to_string(),
        ]);
    }
    t.print();
    println!("expected: the deterministic platform shows exactly 1 distinct time —");
    println!("no layout exploration, so MBPTA/TAC have nothing to work with (paper §2).");
}
