//! Property-based tests (proptest) over the core data structures and
//! invariants.

use proptest::prelude::*;

use mbcr::prelude::*;
use mbcr_ir::execute;
use mbcr_tac::runs_for_probability;
use mbcr_trace::scs::{lcs_len, scs2};
use mbcr_trace::{LineId, SymSeq, Symbol};

fn arb_symseq(max_len: usize, alphabet: u16) -> impl Strategy<Value = SymSeq> {
    prop::collection::vec(0..alphabet, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SCS is a common supersequence of both inputs with the minimal length
    /// |a| + |b| - |LCS(a, b)|.
    #[test]
    fn scs_is_minimal_common_supersequence(
        a in arb_symseq(12, 4),
        b in arb_symseq(12, 4),
    ) {
        let m = scs2(&a, &b);
        prop_assert!(m.is_supersequence_of(&a));
        prop_assert!(m.is_supersequence_of(&b));
        prop_assert_eq!(m.len(), a.len() + b.len() - lcs_len(a.symbols(), b.symbols()));
    }

    /// The `ins` operator inserts exactly one symbol and preserves order;
    /// the insertion witness reconstructs the pubbed sequence.
    #[test]
    fn ins_and_witness_roundtrip(
        base in arb_symseq(10, 4),
        positions in prop::collection::vec((0usize..=10, 0u16..4), 1..5),
    ) {
        let mut pubbed = base.clone();
        for (pos, sym) in positions {
            let pos = pos.min(pubbed.len());
            pubbed = pubbed.ins(pos, Symbol(sym));
        }
        prop_assert!(pubbed.is_supersequence_of(&base));
        let witness = pubbed.insertion_witness(&base).expect("supersequence");
        let mut rebuilt = base.clone();
        for &pos in &witness {
            rebuilt = rebuilt.ins(pos, pubbed.symbols()[pos]);
        }
        prop_assert_eq!(rebuilt, pubbed);
    }

    /// Cache invariant: a line just accessed is always resident; occupancy
    /// never exceeds the way count.
    #[test]
    fn cache_invariants_hold_on_random_streams(
        lines in prop::collection::vec(0u64..40, 1..300),
        seed in any::<u64>(),
    ) {
        let mut c = Cache::new(
            CacheGeometry::new(256, 2, 32).unwrap(), // 4 sets
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
            seed,
        );
        for &l in &lines {
            c.access_line(LineId(l));
            prop_assert!(c.contains(LineId(l)));
            prop_assert!(c.set_occupancy(LineId(l)) <= 2);
        }
        let stats = c.stats();
        prop_assert_eq!(stats.accesses(), lines.len() as u64);
    }

    /// Deterministic caches are seed-independent.
    #[test]
    fn modulo_lru_is_seed_independent(
        lines in prop::collection::vec(0u64..64, 1..200),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let geometry = CacheGeometry::paper_l1();
        let ids: Vec<LineId> = lines.iter().map(|&l| LineId(l)).collect();
        let mut a = Cache::new(geometry, PlacementPolicy::Modulo, ReplacementPolicy::Lru, s1);
        let mut b = Cache::new(geometry, PlacementPolicy::Modulo, ReplacementPolicy::Lru, s2);
        prop_assert_eq!(a.run_lines(&ids), b.run_lines(&ids));
    }

    /// ECCDF: quantile and exceedance are mutually consistent and monotone.
    #[test]
    fn eccdf_quantile_exceedance_consistency(
        sample in prop::collection::vec(1u64..100_000, 2..300),
        p in 0.001f64..1.0,
    ) {
        let e = Eccdf::from_u64(&sample);
        let q = e.quantile(p);
        prop_assert!(e.exceedance(q) <= p + 1e-12);
        prop_assert!(q >= e.min() && q <= e.max());
        // Monotonicity in p.
        let q_smaller = e.quantile((p / 2.0).max(1e-6));
        prop_assert!(q_smaller >= q);
    }

    /// runs_for_probability is antitone in the event probability and
    /// monotone in the target's strictness.
    #[test]
    fn runs_formula_monotonicity(
        p1 in 1e-6f64..0.5,
        p2 in 1e-6f64..0.5,
        t in 1e-12f64..0.1,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(runs_for_probability(lo, t) >= runs_for_probability(hi, t));
        prop_assert!(runs_for_probability(lo, t) >= runs_for_probability(lo, t * 10.0));
        // Definition check: (1-p)^R < t at the returned R.
        let r = runs_for_probability(lo, t);
        prop_assert!((1.0 - lo).powf(r as f64) < t * (1.0 + 1e-9));
    }
}

/// Random two-branch programs: PUB equalizes them and preserves semantics.
fn arb_branch() -> impl Strategy<Value = Vec<(u8, i64)>> {
    // Each entry encodes a statement: (kind, operand).
    prop::collection::vec((0u8..3, 0i64..8), 0..5)
}

fn build_program(then_spec: &[(u8, i64)], else_spec: &[(u8, i64)]) -> (Program, mbcr_ir::Var) {
    let mut b = mbcr_ir::ProgramBuilder::new("prop");
    let arr = b.array("arr", 16);
    let x = b.var("x");
    let y = b.var("y");
    let make = |spec: &[(u8, i64)]| {
        spec.iter()
            .map(|&(kind, v)| match kind {
                0 => Stmt::Assign(y, Expr::var(y).add(Expr::c(v))),
                1 => Stmt::Assign(y, Expr::var(y).add(Expr::load(arr, Expr::c(v)))),
                _ => Stmt::store(arr, Expr::c(v), Expr::var(y)),
            })
            .collect::<Vec<_>>()
    };
    b.push(Stmt::if_(
        Expr::var(x).gt(Expr::c(0)),
        make(then_spec),
        make(else_spec),
    ));
    (b.build().expect("valid"), x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pub_equalizes_random_two_branch_programs(
        then_spec in arb_branch(),
        else_spec in arb_branch(),
    ) {
        let (program, x) = build_program(&then_spec, &else_spec);
        let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub");

        let t = execute(&pubbed.program, &Inputs::new().with_var(x, 1)).unwrap();
        let e = execute(&pubbed.program, &Inputs::new().with_var(x, -1)).unwrap();
        // Equalized: same data lines, same instruction count.
        prop_assert_eq!(t.trace.data_lines(32), e.trace.data_lines(32));
        prop_assert_eq!(
            t.trace.instr_fetches().count(),
            e.trace.instr_fetches().count()
        );

        // Both embed the corresponding original path's data lines.
        for v in [1, -1] {
            let orig = execute(&program, &Inputs::new().with_var(x, v)).unwrap();
            let pubt = execute(&pubbed.program, &Inputs::new().with_var(x, v)).unwrap();
            let ol = orig.trace.data_lines(32);
            let pl = pubt.trace.data_lines(32);
            let mut it = ol.iter();
            let mut need = it.next();
            for l in &pl {
                if Some(l) == need {
                    need = it.next();
                }
            }
            prop_assert!(need.is_none());
        }

        // Semantics preserved on the executed path.
        for v in [1, -1] {
            let orig = execute(&program, &Inputs::new().with_var(x, v)).unwrap();
            let pubt = execute(&pubbed.program, &Inputs::new().with_var(x, v)).unwrap();
            let y = program.var_by_name("y").expect("y");
            prop_assert_eq!(orig.state.var(y), pubt.state.var(y));
            let arr = program.array_by_name("arr").expect("arr");
            prop_assert_eq!(orig.state.array(arr), pubt.state.array(arr));
        }
    }
}
