//! End-to-end tests of the batch engine: a small sweep writes a complete
//! artifact store at stage granularity, a warm re-run skips every node, a
//! knob change resumes mid-analysis, and results are deterministic across
//! invocations.

use std::fs;
use std::path::PathBuf;

use mbcr_engine::{
    expand, run_sweep, AnalysisKind, ArtifactStore, GeometrySpec, InputSelection, JobStatus,
    Registry, RunOptions, StageKind, SweepSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-engine-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny but representative campaign: one multipath benchmark (bs, two
/// named inputs, so a combine node appears) across two geometries.
/// Campaigns are capped hard so the whole test runs in seconds.
fn tiny_spec() -> SweepSpec {
    SweepSpec::new("engine-it")
        .benchmarks(["bs"])
        .inputs(InputSelection::Named(vec!["v1".into(), "v3".into()]))
        .geometries([
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("2048:2:32").unwrap(),
        ])
        .seeds([11])
        .analyses([
            AnalysisKind::Original,
            AnalysisKind::PubTac,
            AnalysisKind::Multipath,
        ])
}

#[test]
fn cold_sweep_writes_artifacts_and_warm_rerun_skips() {
    let registry = Registry::malardalen();
    let spec = tiny_spec();
    let dir = tmp_dir("cold-warm");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 4,
        force: false,
        checkpoint_interval: None,
        ..RunOptions::default()
    };

    // Stage-granular expansion over 2 cells (2 geometries × 1 seed):
    // shared orig trace (1) + orig converge/fit per cell (4), shared pub
    // (1) + shared per-input traces (2) + per cell × input: tac×2,
    // converge, campaign, fit (20) + combine per cell (2).
    let graph = expand(&spec, &registry).expect("expand");
    assert_eq!(graph.len(), 30);

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold sweep");
    assert_eq!(cold.executed, 30);
    assert_eq!(cold.skipped, 0);
    assert_eq!(cold.failed, 0);

    // Artifacts: manifest, table2, a stage artifact per stage node (plus
    // one path-coverage artifact per benchmark and one cache-class
    // artifact per benchmark × geometry, written at finalization), and
    // full-result job JSON (plus samples for pub_tac) for terminals.
    assert!(store.manifest_path().is_file(), "manifest.json missing");
    assert!(store.table2_path().is_file(), "table2.csv missing");
    let stage_entries: Vec<String> = fs::read_dir(dir.join("stages"))
        .expect("stages dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let stage_artifacts = stage_entries
        .iter()
        .filter(|n| n.ends_with(".json"))
        .count();
    assert_eq!(
        stage_artifacts,
        28 + 1 + 2,
        "one artifact per stage node + path coverage for bs + cache class per geometry"
    );
    let stage_logs = stage_entries
        .iter()
        .filter(|n| n.ends_with(".samples.slog"))
        .count();
    assert_eq!(stage_logs, 4, "one streamed chunk log per campaign node");
    for record in &cold.records {
        let stage = record.label.rsplit('/').next().unwrap_or("");
        let terminal = record.label.starts_with("multipath/") || record.label.contains(":fit/");
        assert_eq!(
            store.has_artifact(&record.key),
            terminal,
            "full-result JSON exactly for terminal nodes: {} (stage {stage})",
            record.label
        );
    }
    let sample_logs = fs::read_dir(dir.join("jobs"))
        .expect("jobs dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".samples.slog")
        })
        .count();
    assert_eq!(sample_logs, 4, "one sample chunk log per pub_tac fit node");

    // Table 2 layout: one row per (input, geometry) cell, every paper
    // column populated.
    assert_eq!(cold.rows.len(), 4);
    let table2 = fs::read_to_string(store.table2_path()).expect("read table2");
    assert!(
        table2.starts_with("benchmark,input,geometry,seed,R_orig,R_pub,R_tac,R_pub_tac,pwcet_orig")
    );
    assert_eq!(table2.lines().count(), 1 + 4);
    for row in &cold.rows {
        assert!(row.r_orig.is_some(), "R_orig missing: {row:?}");
        assert!(row.r_pub.is_some(), "R_pub missing: {row:?}");
        assert!(row.r_tac.is_some(), "R_tac missing: {row:?}");
        assert!(row.r_pub_tac.is_some(), "R_pub+tac missing: {row:?}");
        assert!(row.pwcet_pub_tac.is_some(), "pWCET missing: {row:?}");
        assert!(
            row.pwcet_multipath.is_some(),
            "multipath column missing: {row:?}"
        );
        assert_eq!(
            row.r_pub_tac.unwrap(),
            row.r_pub.unwrap().max(row.r_tac.unwrap())
        );
    }

    // Warm re-run: same spec, same store — every node must be served from
    // the artifact store and the aggregation must be identical.
    let warm = run_sweep(&spec, &registry, &store, &opts).expect("warm sweep");
    assert_eq!(warm.executed, 0, "warm re-run must skip all nodes");
    assert_eq!(warm.skipped, 30);
    assert_eq!(warm.failed, 0);
    assert!(warm.records.iter().all(|r| r.status == JobStatus::Skipped));
    assert_eq!(
        warm.rows, cold.rows,
        "cached aggregation must reproduce the cold run"
    );

    // `force` bypasses the cache.
    let forced = run_sweep(
        &spec,
        &registry,
        &store,
        &RunOptions {
            threads: 4,
            force: true,
            checkpoint_interval: None,
            ..RunOptions::default()
        },
    )
    .expect("forced sweep");
    assert_eq!(forced.executed, 30);
    assert_eq!(
        forced.rows, cold.rows,
        "forced re-run must be deterministic"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// The headline resume scenario: changing only `max_campaign_runs` must
/// reuse cached PUB/trace/TAC/converge artifacts and re-execute exactly
/// the campaign and fit stages (and the combine, whose key cascades).
#[test]
fn campaign_cap_change_resumes_mid_analysis() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("resume")
        .benchmarks(["bs"])
        .inputs(InputSelection::Named(vec!["v1".into(), "v3".into()]))
        .seeds([21]);
    let dir = tmp_dir("resume");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 4,
        force: false,
        checkpoint_interval: None,
        ..RunOptions::default()
    };

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.failed, 0);

    let recapped = SweepSpec {
        max_campaign_runs: Some(400),
        ..spec.clone()
    };
    let resumed = run_sweep(&recapped, &registry, &store, &opts).expect("resumed");
    assert_eq!(resumed.failed, 0);
    for record in &resumed.records {
        let stage = record.label.split('/').next().unwrap_or("?");
        let expect_executed = matches!(stage, "pub_tac:campaign" | "pub_tac:fit" | "multipath");
        let expected = if expect_executed {
            JobStatus::Executed
        } else {
            JobStatus::Skipped
        };
        assert_eq!(
            record.status, expected,
            "stage '{stage}' after a cap change: {}",
            record.label
        );
    }
    // The resumed campaign is genuinely capped and still self-consistent.
    for row in &resumed.rows {
        assert!(row.r_pub.is_some() && row.r_tac.is_some());
        assert_eq!(
            row.r_pub_tac.unwrap(),
            row.r_pub.unwrap().max(row.r_tac.unwrap())
        );
    }
    // The untouched stages kept their cold-run numbers.
    for (cold_row, resumed_row) in cold.rows.iter().zip(&resumed.rows) {
        assert_eq!(cold_row.r_pub, resumed_row.r_pub);
        assert_eq!(cold_row.r_tac, resumed_row.r_tac);
        assert_eq!(cold_row.r_orig, resumed_row.r_orig);
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_benchmark_sweep_covers_both_and_changing_spec_invalidates() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("engine-it-2")
        .benchmarks(["bs", "insertsort"])
        .geometries([
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("2048:2:32").unwrap(),
        ])
        .seeds([3])
        .analyses([AnalysisKind::PubTac]);
    let dir = tmp_dir("two-bench");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 4,
        force: false,
        checkpoint_interval: None,
        ..RunOptions::default()
    };

    // Per benchmark: shared pub + trace, then tac×2 + converge +
    // campaign + fit per geometry cell.
    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.executed, 2 * (2 + 2 * 5), "2 benchmarks × stage DAG");
    let benchmarks: std::collections::HashSet<&str> =
        cold.rows.iter().map(|r| r.benchmark.as_str()).collect();
    assert_eq!(benchmarks, ["bs", "insertsort"].into_iter().collect());

    // A different master seed reseeds TAC/converge/campaign/fit, but the
    // seed-free PUB transform and path trace stay valid — stage-level
    // caching is finer than whole-job caching.
    let reseeded = SweepSpec {
        seeds: vec![4],
        ..spec.clone()
    };
    let rerun = run_sweep(&reseeded, &registry, &store, &opts).expect("reseeded");
    assert_eq!(
        rerun.skipped, 4,
        "pub + trace per benchmark survive a seed change"
    );
    assert_eq!(rerun.executed, 20, "seeded stages must re-execute");
    for record in rerun
        .records
        .iter()
        .filter(|r| r.status == JobStatus::Skipped)
    {
        let stage = record.label.split('/').next().unwrap_or("?");
        assert!(
            matches!(stage, "pub_tac:pub" | "pub_tac:trace"),
            "only seed-free stages may be cached, got {}",
            record.label
        );
    }

    // The original spec is still fully cached.
    let warm = run_sweep(&spec, &registry, &store, &opts).expect("warm");
    assert_eq!(warm.skipped, 24);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn multipath_combination_is_the_min_over_inputs() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("engine-it-3")
        .benchmarks(["bs"])
        .inputs(InputSelection::Named(vec![
            "v1".into(),
            "v3".into(),
            "v5".into(),
        ]))
        .seeds([5])
        .analyses([AnalysisKind::PubTac, AnalysisKind::Multipath]);
    let dir = tmp_dir("multipath");
    let store = ArtifactStore::open(&dir).expect("open store");

    let outcome = run_sweep(
        &spec,
        &registry,
        &store,
        &RunOptions {
            threads: 2,
            force: false,
            checkpoint_interval: None,
            ..RunOptions::default()
        },
    )
    .expect("sweep");
    assert_eq!(outcome.failed, 0);
    let min_pwcet = outcome
        .rows
        .iter()
        .filter_map(|r| r.pwcet_pub_tac)
        .fold(f64::INFINITY, f64::min);
    for row in &outcome.rows {
        assert_eq!(
            row.pwcet_multipath,
            Some(min_pwcet),
            "Corollary 2: combination must be the per-cell minimum"
        );
    }

    let _ = fs::remove_dir_all(&dir);
}

/// A store shipped with only the content-addressed `stages/` directory
/// (the sharding boundary) must regenerate the full-result job artifacts
/// rather than reporting everything cached while `jobs/` stays empty.
#[test]
fn pruned_jobs_dir_regenerates_full_results() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("pruned")
        .benchmarks(["insertsort"])
        .seeds([13])
        .analyses([AnalysisKind::PubTac]);
    let dir = tmp_dir("pruned");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 2,
        force: false,
        checkpoint_interval: None,
        ..RunOptions::default()
    };

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.failed, 0);
    fs::remove_dir_all(dir.join("jobs")).expect("prune jobs dir");

    let rerun = run_sweep(&spec, &registry, &store, &opts).expect("rerun");
    assert_eq!(rerun.failed, 0);
    for record in &rerun.records {
        let terminal = record.label.contains(":fit/");
        let expected = if terminal {
            JobStatus::Executed
        } else {
            JobStatus::Skipped
        };
        assert_eq!(record.status, expected, "{}", record.label);
        if terminal {
            assert!(
                store.has_artifact(&record.key),
                "full-result JSON must be regenerated: {}",
                record.label
            );
        }
    }
    assert_eq!(rerun.rows, cold.rows, "regeneration reproduces the results");

    let _ = fs::remove_dir_all(&dir);
}

/// A torn stage artifact (interrupted writer) must be re-executed, never
/// trusted as a cache hit.
#[test]
fn torn_stage_artifact_is_not_a_cache_hit() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("torn")
        .benchmarks(["insertsort"])
        .seeds([9])
        .analyses([AnalysisKind::PubTac]);
    let dir = tmp_dir("torn");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 2,
        force: false,
        checkpoint_interval: None,
        ..RunOptions::default()
    };

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.failed, 0);

    // Truncate every converge stage artifact mid-file.
    let graph = expand(&spec, &registry).expect("expand");
    let mut truncated = 0;
    for (i, job) in graph.jobs.iter().enumerate() {
        if job.kind.stage() == Some(StageKind::Converge) {
            let digest = graph.digests[i].expect("stage digest");
            let path = store.stage_path(digest);
            let text = fs::read_to_string(&path).expect("artifact exists");
            fs::write(&path, &text[..text.len() / 2]).expect("truncate");
            truncated += 1;
        }
    }
    assert!(truncated >= 1);

    let rerun = run_sweep(&spec, &registry, &store, &opts).expect("rerun");
    assert_eq!(rerun.failed, 0);
    let re_executed: Vec<&str> = rerun
        .records
        .iter()
        .filter(|r| r.status == JobStatus::Executed)
        .map(|r| r.label.as_str())
        .collect();
    assert!(
        re_executed
            .iter()
            .any(|l| l.starts_with("pub_tac:converge/")),
        "the torn converge stage must re-execute, got {re_executed:?}"
    );
    assert_eq!(
        rerun.rows, cold.rows,
        "recovery must reproduce the original results"
    );

    let _ = fs::remove_dir_all(&dir);
}
