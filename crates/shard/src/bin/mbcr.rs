//! `mbcr` — the command-line front end of the batch analysis engine, the
//! distributed sharding subsystem and the multi-sweep service daemon.
//!
//! ```text
//! mbcr list-benchmarks
//! mbcr analyze bs --seed 42
//! mbcr sweep --benchmarks bs,cnt --geometries 4096:2:32,2048:2:32 --seeds 1,2
//! mbcr sweep --spec campaign.json --out mbcr-runs/campaign
//! mbcr sweep --benchmarks bs --shards 4          # self-hosted sharding
//! mbcr serve --listen 127.0.0.1:4870 --out mbcr-runs/service   # daemon
//! mbcr submit --connect 127.0.0.1:4870 --spec campaign.json
//! mbcr status --connect 127.0.0.1:4870
//! mbcr cancel --connect 127.0.0.1:4870 --sweep s001-campaign
//! mbcr report --connect 127.0.0.1:4870 --follow --sweep s001-campaign
//! mbcr coord --spec campaign.json --listen 127.0.0.1:4870   # one-shot
//! mbcr worker --connect 127.0.0.1:4870 --jobs 4  # on any host
//! mbcr report --out mbcr-runs/campaign
//! ```
//!
//! Argument parsing is hand-rolled: the build environment is offline, so
//! no `clap`.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use mbcr::{analyze_pub_tac, render_report, AnalysisConfig};
use mbcr_engine::{
    aggregate_rows, render_rows, run_sweep, AnalysisKind, ArtifactStore, EngineError, GeometrySpec,
    InputSelection, JobSummary, Registry, RunOptions, SweepOutcome, SweepSnapshot, SweepSpec,
    SweepState,
};
use mbcr_ir::{
    classify, group_inputs_by_path, validate_classification, Diagnostic, Inputs, PathSpace,
};
use mbcr_json::{Json, Serialize};
use mbcr_malardalen::Benchmark;
use mbcr_pub::PubConfig;
use mbcr_shard::{
    lint_program,
    protocol::{self, Message},
    run_worker, serve, serve_daemon_with, CoordSettings, GatewayOptions,
};

const USAGE: &str = "mbcr — batch PUB + TAC + MBPTA analysis engine (DAC'18 reproduction)

USAGE:
    mbcr <command> [options]

COMMANDS:
    list-benchmarks     List the registered benchmarks and their input vectors
    analyze <bench>     One PUB + TAC + MBPTA analysis, report on stdout
    paths <bench>       Static (Ball-Larus) path space of a benchmark: path
                        counts, per-path access signatures, and which paths
                        the shipped input vectors exercise
    lint                Statically verify PUB soundness invariants (CFG
                        structure, branch balance, innocuous-insertion
                        pairing); nonzero exit on any finding
    classify            Abstract-interpretation cache analysis: classify
                        every access site always-hit / always-miss /
                        first-miss / not-classified, with a simulator
                        cross-validation; nonzero exit on any CCA finding
    sweep               Run a batch campaign into an artifact store
    trace               Run a sweep with span tracing on and export the
                        merged timeline as Chrome-trace-event JSON
                        (chrome://tracing / Perfetto loadable)
    serve               Run the multi-sweep service daemon (accepts
                        submissions from clients, schedules them across one
                        worker fleet, resumes its queue after a kill)
    submit              Queue a sweep on a running service daemon
    status              Show a daemon's sweep queue
    cancel              Cancel a queued/running sweep on a daemon
    coord               One-shot: serve a single campaign's stage jobs to
                        TCP workers, then exit (thin wrapper over serve)
    worker              Execute stage jobs for a coordinator or daemon
    report              Re-render the Table 2 summary of an existing run,
                        or follow a daemon's live progress (--follow)
    loadgen             Load-storm bench: spawn a daemon, submit a storm of
                        overlapping sweeps over HTTP plus many concurrent
                        SSE followers, report dedup hit rate, time-to-
                        first-event, fairness spread and affinity savings
    help                Show this message

PATHS OPTIONS:
    --limit N           Enumerate at most N static paths (default 64; spaces
                        larger than the limit print the summary only)

LINT OPTIONS:
    --all               Lint every registered benchmark
    --format FMT        'text' (default) or 'json': one machine-readable
                        object per diagnostic (code, benchmark,
                        construct, message)
    [bench...]          Or lint the named benchmarks only

CLASSIFY OPTIONS:
    --all               Classify every registered benchmark
    --geometry S:W:L    Geometry for both L1 caches, e.g. 4096:2:32
                        (default: paper)
    --limit N           Print at most N per-site rows per benchmark
                        (default 64; the rollup always prints)
    --format FMT        'text' (default) or 'json'
    [bench...]          Or classify the named benchmarks only

ANALYZE OPTIONS:
    --input NAME        Input vector (default: the benchmark default)
    --geometry S:W:L    Cache geometry, e.g. 4096:2:32 (default: paper)
    --seed N            Master seed (default: 42)
    --exceedance P      Reporting exceedance probability (default: 1e-12)
    --full              Paper-scale campaigns instead of the quick preset
    --json PATH         Also write the full analysis as JSON

SWEEP OPTIONS:
    --spec FILE         Load the campaign from a JSON spec file ('-' reads
                        the spec from stdin)
    --name NAME         Campaign name (default: 'sweep')
    --benchmarks A,B    Benchmarks (default: the whole suite)
    --inputs SEL        'default', 'all', or comma-separated vector names
    --geometries G,...  Geometries as SIZE:WAYS:LINE or 'paper'
    --seeds N,...       Master seeds (default: 1816360818)
    --analyses K,...    original, pub_tac, multipath (default: all three)
    --max-campaign-runs N  Cap measurement campaigns
    --full              Paper-scale campaigns instead of the quick preset
    --out DIR           Artifact store directory (default: mbcr-runs/<name>)
    --threads N         Worker threads (default: one per core)
    --force             Re-execute jobs even when cached artifacts exist
    --prescreen         Order ready jobs by the static cache analysis
                        (least-classified cells first); scheduling only —
                        artifacts stay byte-identical either way
    --checkpoint-interval N  Checkpoint running campaigns every N runs
                        (0: only at completion; default: 10000). A killed
                        sweep resumes from its last campaign checkpoint.
    --batch-width W     Cache layouts simulated per trace pass in
                        measurement campaigns (default: 16; 1 restores the
                        one-layout-at-a-time loop). Pure throughput knob:
                        samples and artifacts are byte-identical at every
                        width. Also accepted by coord.
    --shards N          Shard across N self-hosted local worker processes
                        (spawns a coordinator plus N `mbcr worker`s);
                        results are byte-identical to a plain sweep

TRACE OPTIONS (all SWEEP spec options, plus):
    --out FILE          Trace output file (default: trace.json); written
                        outside the artifact store, which stays
                        byte-identical to an untraced sweep
    --store DIR         Artifact store directory for the traced sweep
                        (default: mbcr-runs/<name>)
    --threads N         Worker threads (default: one per core)
    --force             Re-execute jobs even when cached artifacts exist
                        (cached jobs emit no stage-execute spans)
    --format FMT        'chrome' (default): Chrome trace event JSON;
                        'events': raw span-event dump (mbcr-obs/1)

SERVE OPTIONS:
    --listen ADDR       TCP address to bind (e.g. 127.0.0.1:4870; port 0
                        picks one and prints it)
    --out DIR           The service's artifact store (default:
                        mbcr-runs/service). Holds the shared content-
                        addressed jobs/ and stages/, the durable sweep
                        queue, and one sweeps/<id>/ scope per submission
    --lease-ttl SECS    Declare a silent worker dead and requeue its jobs
                        after SECS (default: 30; connection loss requeues
                        immediately)
    --http ADDR         Also serve the HTTP/JSON + SSE gateway on ADDR
                        (POST/GET/DELETE /v1/sweeps, /v1/sweeps/ID/events,
                        /v1/metrics; port 0 picks one and prints it)
    --spawn-workers MIN..MAX  Autoscale local worker processes between MIN
                        and MAX from queue depth (SIGTERM-drained back to
                        MIN when the queue empties)

SUBMIT OPTIONS (all SWEEP spec options, plus):
    --connect ADDR      The daemon to submit to
    --force             Re-execute jobs even when cached artifacts exist
    --checkpoint-interval N  As for sweep, scoped to this submission
    --priority N        Fair-share weight (default 1): a priority-3 sweep
                        is offered claims ~3x as often as a priority-1 one
    --max-concurrent N  Cap this sweep's concurrently leased jobs

STATUS / CANCEL OPTIONS:
    --connect ADDR      The daemon to query
    --sweep ID          Restrict to (status) or target (cancel) one sweep.
                        status exits nonzero when the targeted sweep was
                        canceled or has failed jobs

COORD OPTIONS (all SWEEP options except --threads/--shards, plus):
    --listen ADDR       TCP address to bind (e.g. 127.0.0.1:4870; port 0
                        picks one and prints it)
    --lease-ttl SECS    Declare a silent worker dead and requeue its jobs
                        after SECS (default: 30; connection loss requeues
                        immediately)

WORKER OPTIONS:
    --connect ADDR      Coordinator address (retries while it comes up).
                        SIGTERM drains gracefully: the in-flight campaign
                        chunk is checkpointed and flushed, leases handed
                        back, and the worker exits cleanly
    --jobs N            Parallel job slots, one connection each (default 1)

REPORT OPTIONS:
    --out DIR           Artifact store directory to summarize; shows
                        per-campaign progress even without a manifest
    --sweep ID          With --out: summarize one sweeps/<id>/ scope of a
                        service store. With --connect: pick the sweep
    --connect ADDR      Ask a running daemon instead of reading a store.
                        ADDR may be a binary-protocol host:port or an
                        http://host:port gateway (SSE). Exits nonzero when
                        a reported sweep was canceled or has failed jobs
    --follow            With --connect: stream live per-stage/per-campaign
                        progress until the sweep(s) complete, reconnecting
                        with capped backoff across transient stream loss

LOADGEN OPTIONS:
    --sweeps N          Overlapping sweeps to submit over HTTP (default 6)
    --followers N       Concurrent SSE followers (default 8)
    --spawn-workers MIN..MAX  Autoscaling bounds for the spawned daemon
                        (default 1..2)
    --out DIR           Scratch store (default mbcr-runs/loadgen)
    --full              Paper-scale specs instead of the quick preset
";

fn main() -> ExitCode {
    // Telemetry first: MBCR_OBS=1 turns collection on for any command,
    // MBCR_OBS_DIR arms the flight recorder's panic dump. A pure side
    // channel either way — artifacts are byte-identical on or off.
    mbcr_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("mbcr: {e}");
            ExitCode::from(1)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, EngineError> {
    match args.first().map(String::as_str) {
        Some("list-benchmarks") => list_benchmarks(),
        Some("analyze") => analyze(&args[1..]),
        Some("paths") => paths_cmd(&args[1..]),
        Some("lint") => lint_cmd(&args[1..]),
        Some("classify") => classify_cmd(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("submit") => submit(&args[1..]),
        Some("status") => status(&args[1..]),
        Some("cancel") => cancel(&args[1..]),
        Some("coord") => coord(&args[1..]),
        Some("worker") => worker(&args[1..]),
        Some("report") => report(&args[1..]),
        Some("loadgen") => loadgen(&args[1..]),
        Some("help" | "--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => {
            eprintln!("mbcr: unknown command '{other}'\n");
            print!("{USAGE}");
            Ok(ExitCode::from(2))
        }
    }
}

/// Pulls `--flag value` pairs and bare `--switch`es out of an argument
/// list, leaving positionals.
struct Flags<'a> {
    args: &'a [String],
    consumed: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Self {
            args,
            consumed: vec![false; args.len()],
        }
    }

    fn value(&mut self, flag: &str) -> Result<Option<&'a str>, EngineError> {
        for i in 0..self.args.len() {
            if self.args[i] == flag && !self.consumed[i] {
                let value = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| EngineError::Spec(format!("{flag} needs a value")))?;
                self.consumed[i] = true;
                self.consumed[i + 1] = true;
                return Ok(Some(value));
            }
        }
        Ok(None)
    }

    fn switch(&mut self, flag: &str) -> bool {
        for i in 0..self.args.len() {
            if self.args[i] == flag && !self.consumed[i] {
                self.consumed[i] = true;
                return true;
            }
        }
        false
    }

    fn positionals(&self) -> Vec<&'a str> {
        self.args
            .iter()
            .enumerate()
            .filter(|&(i, a)| !self.consumed[i] && !a.starts_with("--"))
            .map(|(_, a)| a.as_str())
            .collect()
    }

    fn reject_unknown(&self) -> Result<(), EngineError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.consumed[i] && a.starts_with("--") {
                return Err(EngineError::Spec(format!("unknown option '{a}'")));
            }
        }
        Ok(())
    }
}

fn parse_u64(flag: &str, text: &str) -> Result<u64, EngineError> {
    text.parse()
        .map_err(|_| EngineError::Spec(format!("{flag}: '{text}' is not an integer")))
}

fn list_benchmarks() -> Result<ExitCode, EngineError> {
    let registry = Registry::malardalen();
    println!("{:<12} {:<26} inputs", "name", "class");
    println!("{}", "-".repeat(60));
    for b in registry.iter() {
        let vectors: Vec<&str> = b.input_vectors.iter().map(|v| v.name.as_str()).collect();
        let inputs = if vectors.is_empty() {
            "default".to_string()
        } else {
            vectors.join(", ")
        };
        println!("{:<12} {:<26} {inputs}", b.name, format!("{:?}", b.class));
    }
    Ok(ExitCode::SUCCESS)
}

fn analyze(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let input = flags.value("--input")?.unwrap_or("default").to_string();
    let geometry = match flags.value("--geometry")? {
        Some(text) => GeometrySpec::parse(text)?,
        None => GeometrySpec::paper_l1(),
    };
    let seed = match flags.value("--seed")? {
        Some(text) => parse_u64("--seed", text)?,
        None => 42,
    };
    let exceedance = match flags.value("--exceedance")? {
        Some(text) => text
            .parse::<f64>()
            .ok()
            .filter(|p| *p > 0.0 && *p < 1.0)
            .ok_or_else(|| EngineError::Spec(format!("--exceedance: bad value '{text}'")))?,
        None => 1e-12,
    };
    let full = flags.switch("--full");
    let json_path = flags.value("--json")?.map(str::to_string);
    flags.reject_unknown()?;
    let positionals = flags.positionals();
    let [bench_name] = positionals.as_slice() else {
        return Err(EngineError::Spec(
            "analyze needs exactly one benchmark name".into(),
        ));
    };

    let registry = Registry::malardalen();
    let benchmark = registry
        .get(bench_name)
        .ok_or_else(|| EngineError::UnknownBenchmark((*bench_name).to_string()))?;
    let inputs = if input == "default" {
        &benchmark.default_input
    } else {
        benchmark
            .input_vectors
            .iter()
            .find(|v| v.name == input)
            .map(|v| &v.inputs)
            .ok_or_else(|| EngineError::UnknownInput {
                benchmark: benchmark.name.to_string(),
                input: input.clone(),
            })?
    };
    let mut builder = AnalysisConfig::builder()
        .seed(seed)
        .l1_geometry(geometry.geometry()?)
        .exceedance(exceedance);
    if !full {
        builder = builder.quick();
    }
    let cfg = builder.build();
    let analysis = analyze_pub_tac(&benchmark.program, inputs, &cfg)
        .map_err(|e| EngineError::Analysis(e.to_string()))?;
    print!("{}", render_report(benchmark.name, &analysis));
    if let Some(path) = json_path {
        std::fs::write(&path, analysis.to_json().to_pretty())?;
        println!("\nfull analysis written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `mbcr paths <bench>`: the static path space, the shipped vectors'
/// observed paths with their Ball–Larus ids and access signatures, and —
/// when the space fits under `--limit` — the full enumeration.
fn paths_cmd(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let limit = match flags.value("--limit")? {
        Some(text) => usize::try_from(parse_u64("--limit", text)?)
            .map_err(|_| EngineError::Spec("--limit: too large".into()))?,
        None => 64,
    };
    flags.reject_unknown()?;
    let positionals = flags.positionals();
    let [bench_name] = positionals.as_slice() else {
        return Err(EngineError::Spec(
            "paths needs exactly one benchmark name".into(),
        ));
    };
    let registry = Registry::malardalen();
    let benchmark = match benchmark_or_exit2(&registry, bench_name) {
        Ok(benchmark) => benchmark,
        Err(code) => return Ok(code),
    };

    let space = PathSpace::of(&benchmark.program);
    let inputs: Vec<_> = benchmark
        .input_vectors
        .iter()
        .map(|v| v.inputs.clone())
        .collect();
    let groups = group_inputs_by_path(&benchmark.program, &inputs)
        .map_err(|e| EngineError::Analysis(e.to_string()))?;

    let static_text = if space.is_saturated() {
        "> 2^128 (saturated)".to_string()
    } else {
        space.num_paths().to_string()
    };
    println!(
        "{}: {static_text} static paths (Ball-Larus)",
        benchmark.name
    );
    let coverage = if space.is_saturated() || space.num_paths() == 0 {
        "n/a".to_string()
    } else {
        #[allow(clippy::cast_precision_loss)]
        let f = groups.len() as f64 / space.num_paths() as f64;
        format!("{f:.4}")
    };
    println!(
        "observed: {} distinct path(s) across {} input vector(s), coverage {coverage}\n",
        groups.len(),
        inputs.len()
    );

    println!("{:>24}  {:>8}  {:>6}  vectors", "bl-id", "instrs", "data");
    for (record, members) in &groups {
        let id = space
            .index_of(record)
            .map_or_else(|_| "-".to_string(), |i| i.to_string());
        let sig = space
            .signature_of(record)
            .map_err(|e| EngineError::Analysis(e.to_string()))?;
        let names: Vec<&str> = members
            .iter()
            .map(|&i| benchmark.input_vectors[i].name.as_str())
            .collect();
        println!(
            "{id:>24}  {:>8}  {:>6}  {}",
            sig.instr_fetches,
            sig.data_accesses,
            names.join(", ")
        );
    }

    if space.is_saturated() || space.num_paths() > limit as u128 {
        println!("\n(enumeration skipped: path space exceeds --limit {limit})");
        return Ok(ExitCode::SUCCESS);
    }
    let observed: std::collections::HashSet<u128> = groups
        .iter()
        .filter_map(|(record, _)| space.index_of(record).ok())
        .collect();
    let all = space
        .enumerate_paths(limit)
        .map_err(|e| EngineError::Analysis(e.to_string()))?;
    println!("\nenumeration ({} paths):", all.len());
    println!("{:>24}  {:>8}  {:>6}  observed", "bl-id", "instrs", "data");
    for path in &all {
        println!(
            "{:>24}  {:>8}  {:>6}  {}",
            path.index,
            path.signature.instr_fetches,
            path.signature.data_accesses,
            if observed.contains(&path.index) {
                "*"
            } else {
                ""
            }
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Resolves a benchmark name, or prints the exit-2 contract: an unknown
/// name lists the valid ones on stderr and exits `2`, so scripts can
/// tell "bad name" (2) from "real findings" (1).
fn benchmark_or_exit2<'r>(registry: &'r Registry, name: &str) -> Result<&'r Benchmark, ExitCode> {
    registry.get(name).ok_or_else(|| {
        eprintln!(
            "mbcr: unknown benchmark '{name}' (valid: {})",
            registry.names().join(", ")
        );
        ExitCode::from(2)
    })
}

/// The machine-readable output format shared by `lint --format json`
/// and `classify --format json`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

impl OutputFormat {
    /// Same exit-2 contract as [`benchmark_or_exit2`]: an unknown format
    /// lists the valid ones on stderr and exits `2`, so scripts can tell
    /// "bad flag" (2) from "real findings" (1).
    fn from_flags(flags: &mut Flags<'_>) -> Result<Result<OutputFormat, ExitCode>, EngineError> {
        match flags.value("--format")? {
            None | Some("text") => Ok(Ok(OutputFormat::Text)),
            Some("json") => Ok(Ok(OutputFormat::Json)),
            Some(other) => {
                eprintln!("mbcr: --format: unknown format '{other}' (valid: text, json)");
                Ok(Err(ExitCode::from(2)))
            }
        }
    }
}

/// One diagnostics row of the `--format json` documents: the stable
/// code, which benchmark it fired on, the construct anchor, the text.
fn diag_json(benchmark: &str, d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".to_string(), d.code.as_str().into()),
        ("benchmark".to_string(), benchmark.into()),
        (
            "construct".to_string(),
            d.construct.map_or(Json::Null, |c| Json::UInt(u64::from(c))),
        ),
        ("message".to_string(), d.message.as_str().into()),
    ])
}

/// `mbcr lint [--all | bench...]`: static PUB-soundness verification via
/// [`mbcr_shard::lint_program`]. Exits nonzero when any benchmark has
/// findings, printing each diagnostic with its stable code (or, with
/// `--format json`, one document with every diagnostic as an object).
fn lint_cmd(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let all = flags.switch("--all");
    let format = match OutputFormat::from_flags(&mut flags)? {
        Ok(format) => format,
        Err(code) => return Ok(code),
    };
    flags.reject_unknown()?;
    let registry = Registry::malardalen();
    let names: Vec<String> = if all {
        registry.names().iter().map(ToString::to_string).collect()
    } else {
        flags
            .positionals()
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    if names.is_empty() {
        return Err(EngineError::Spec(
            "lint needs benchmark names or --all".into(),
        ));
    }
    let cfg = PubConfig::paper();
    let mut findings = 0usize;
    let mut rows = Vec::new();
    for name in &names {
        let benchmark = match benchmark_or_exit2(&registry, name) {
            Ok(benchmark) => benchmark,
            Err(code) => return Ok(code),
        };
        let diags = lint_program(&benchmark.program, &cfg);
        findings += diags.len();
        match format {
            OutputFormat::Text => {
                if diags.is_empty() {
                    println!("{name}: ok");
                } else {
                    for d in &diags {
                        println!("{name}: {d}");
                    }
                }
            }
            OutputFormat::Json => rows.extend(diags.iter().map(|d| diag_json(name, d))),
        }
    }
    if format == OutputFormat::Json {
        let doc = Json::Obj(vec![
            ("schema".to_string(), "mbcr-lint/1".into()),
            (
                "benchmarks".to_string(),
                Json::Arr(names.iter().map(|n| n.as_str().into()).collect()),
            ),
            ("findings".to_string(), Json::UInt(findings as u64)),
            ("diagnostics".to_string(), Json::Arr(rows)),
        ]);
        println!("{}", doc.to_pretty());
    }
    if findings == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("mbcr lint: {findings} finding(s)");
        Ok(ExitCode::from(1))
    }
}

/// `mbcr classify [--all | bench...]`: per-site hit/miss classification
/// from the abstract-interpretation cache analysis, cross-validated
/// against the LRU simulator over the benchmark's shipped input vectors.
/// Any CCA00x soundness finding exits `1`.
fn classify_cmd(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let all = flags.switch("--all");
    let geometry = match flags.value("--geometry")? {
        Some(text) => GeometrySpec::parse(text)?,
        None => GeometrySpec::paper_l1(),
    };
    let limit = match flags.value("--limit")? {
        Some(text) => usize::try_from(parse_u64("--limit", text)?)
            .map_err(|_| EngineError::Spec("--limit: too large".into()))?,
        None => 64,
    };
    let format = match OutputFormat::from_flags(&mut flags)? {
        Ok(format) => format,
        Err(code) => return Ok(code),
    };
    flags.reject_unknown()?;
    let registry = Registry::malardalen();
    let names: Vec<String> = if all {
        registry.names().iter().map(ToString::to_string).collect()
    } else {
        flags
            .positionals()
            .iter()
            .map(ToString::to_string)
            .collect()
    };
    if names.is_empty() {
        return Err(EngineError::Spec(
            "classify needs benchmark names or --all".into(),
        ));
    }
    let g = geometry.geometry()?;
    let mut findings = 0usize;
    let mut docs = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let benchmark = match benchmark_or_exit2(&registry, name) {
            Ok(benchmark) => benchmark,
            Err(code) => return Ok(code),
        };
        let cls = classify(&benchmark.program, g, g);
        let mut inputs: Vec<Inputs> = benchmark
            .input_vectors
            .iter()
            .map(|v| v.inputs.clone())
            .collect();
        if inputs.is_empty() {
            inputs.push(benchmark.default_input.clone());
        }
        let diags = validate_classification(&benchmark.program, &inputs, &cls)
            .map_err(|e| EngineError::Analysis(format!("{name}: {e}")))?;
        findings += diags.len();
        match format {
            OutputFormat::Text => {
                if i > 0 {
                    println!();
                }
                print_classification(name, &geometry, &cls, &diags, inputs.len(), limit);
            }
            OutputFormat::Json => docs.push((
                name.clone(),
                classification_json(name, &cls, &diags, inputs.len()),
            )),
        }
    }
    if format == OutputFormat::Json {
        let doc = Json::Obj(vec![
            ("schema".to_string(), "mbcr-classify/1".into()),
            ("geometry".to_string(), geometry.label().into()),
            ("findings".to_string(), Json::UInt(findings as u64)),
            ("benchmarks".to_string(), Json::Obj(docs)),
        ]);
        println!("{}", doc.to_pretty());
    }
    if findings == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("mbcr classify: {findings} soundness finding(s)");
        Ok(ExitCode::from(1))
    }
}

fn rollup_side_line(side: &mbcr_ir::RollupSide) -> String {
    format!(
        "{} site(s) — AH {}, AM {}, FM {}, NC {}",
        side.sites, side.always_hit, side.always_miss, side.first_miss, side.not_classified
    )
}

/// The human-readable `classify` report: rollup per cache, then the
/// per-site table (truncated at `limit` rows), then the verdict of the
/// simulator cross-validation.
fn print_classification(
    name: &str,
    geometry: &GeometrySpec,
    cls: &mbcr_ir::CacheClassification,
    diags: &mbcr_ir::Diagnostics,
    vectors: usize,
    limit: usize,
) {
    println!("{name} @ {}:", geometry.label());
    println!("  il1: {}", rollup_side_line(&cls.rollup.il1));
    println!("  dl1: {}", rollup_side_line(&cls.rollup.dl1));
    println!(
        "\n  {:>4}  {:<5}  {:<5}  {:>9}  {:<18}  class",
        "site", "cache", "kind", "construct", "loc"
    );
    for row in cls.sites.iter().take(limit) {
        let construct = row
            .site
            .construct
            .map_or_else(|| "-".to_string(), |c| c.to_string());
        println!(
            "  {:>4}  {:<5}  {:<5}  {construct:>9}  {:<18}  {}",
            row.site.id,
            row.site.cache_name(),
            row.site.kind_name(),
            row.site.loc.to_string(),
            row.class
        );
    }
    if cls.sites.len() > limit {
        println!("  ... ({} more; raise --limit)", cls.sites.len() - limit);
    }
    if diags.is_empty() {
        println!("\n  cross-validation: ok ({vectors} input vector(s), no CCA findings)");
    } else {
        for d in diags {
            println!("\n  {name}: {d}");
        }
    }
}

/// One benchmark's entry in the `classify --format json` document.
fn classification_json(
    name: &str,
    cls: &mbcr_ir::CacheClassification,
    diags: &mbcr_ir::Diagnostics,
    vectors: usize,
) -> Json {
    let sites = cls
        .sites
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("site".to_string(), Json::UInt(u64::from(row.site.id))),
                ("cache".to_string(), row.site.cache_name().into()),
                ("kind".to_string(), row.site.kind_name().into()),
                (
                    "construct".to_string(),
                    row.site
                        .construct
                        .map_or(Json::Null, |c| Json::UInt(u64::from(c))),
                ),
                ("loc".to_string(), row.site.loc.to_string().into()),
                ("class".to_string(), row.class.code().into()),
                ("detail".to_string(), row.class.to_string().into()),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "rollup".to_string(),
            mbcr::stage::rollup_to_json(&cls.rollup),
        ),
        ("sites".to_string(), Json::Arr(sites)),
        ("input_vectors".to_string(), Json::UInt(vectors as u64)),
        (
            "diagnostics".to_string(),
            Json::Arr(diags.iter().map(|d| diag_json(name, d)).collect()),
        ),
    ])
}

fn split_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn spec_from_flags(flags: &mut Flags<'_>) -> Result<SweepSpec, EngineError> {
    let mut spec = match flags.value("--spec")? {
        // `--spec -` reads the spec from stdin: `generate-spec | mbcr
        // submit --spec -` pipelines without touching the filesystem.
        Some("-") => {
            let text = io::read_to_string(io::stdin())
                .map_err(|e| EngineError::Spec(format!("reading the spec from stdin: {e}")))?;
            SweepSpec::from_json_text(&text)?
        }
        Some(path) => SweepSpec::load(path)?,
        None => SweepSpec::new("sweep"),
    };
    if let Some(name) = flags.value("--name")? {
        spec.name = name.to_string();
    }
    if let Some(benchmarks) = flags.value("--benchmarks")? {
        spec.benchmarks = split_list(benchmarks);
    }
    if let Some(inputs) = flags.value("--inputs")? {
        spec.inputs = match inputs {
            "default" => InputSelection::Default,
            "all" => InputSelection::All,
            names => InputSelection::Named(split_list(names)),
        };
    }
    if let Some(geometries) = flags.value("--geometries")? {
        spec.geometries = split_list(geometries)
            .iter()
            .map(|g| GeometrySpec::parse(g))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(seeds) = flags.value("--seeds")? {
        spec.seeds = split_list(seeds)
            .iter()
            .map(|s| parse_u64("--seeds", s))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(analyses) = flags.value("--analyses")? {
        spec.analyses = split_list(analyses)
            .iter()
            .map(|a| AnalysisKind::parse(a))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(cap) = flags.value("--max-campaign-runs")? {
        spec.max_campaign_runs = Some(parse_u64("--max-campaign-runs", cap)? as usize);
    }
    if flags.switch("--full") {
        spec.quick = false;
    }
    Ok(spec)
}

fn sweep(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let spec = spec_from_flags(&mut flags)?;
    let out = flags
        .value("--out")?
        .map_or_else(|| format!("mbcr-runs/{}", spec.name), str::to_string);
    let threads = match flags.value("--threads")? {
        Some(text) => parse_u64("--threads", text)? as usize,
        None => 0,
    };
    let checkpoint_interval = match flags.value("--checkpoint-interval")? {
        Some(text) => Some(parse_u64("--checkpoint-interval", text)? as usize),
        None => None,
    };
    let batch_width = match flags.value("--batch-width")? {
        Some(text) => Some(parse_u64("--batch-width", text)? as usize),
        None => None,
    };
    let shards = match flags.value("--shards")? {
        Some(text) => parse_u64("--shards", text)? as usize,
        None => 0,
    };
    let force = flags.switch("--force");
    let prescreen = flags.switch("--prescreen");
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }

    let store = ArtifactStore::open(&out)?;
    let registry = Registry::malardalen();
    println!(
        "sweep '{}': {} benchmark(s) × {} geometr(ies) × {} seed(s) -> {}{}",
        spec.name,
        if spec.benchmarks.is_empty() {
            registry.len()
        } else {
            spec.benchmarks.len()
        },
        spec.geometries.len(),
        spec.seeds.len(),
        store.root().display(),
        if shards > 0 {
            format!(" ({shards} local shard(s))")
        } else {
            String::new()
        },
    );
    let opts = RunOptions {
        threads,
        force,
        checkpoint_interval,
        batch_width,
        prescreen,
    };
    let outcome = if shards > 0 {
        self_hosted_sharded_sweep(&spec, &registry, &store, &opts, shards)?
    } else {
        run_sweep(&spec, &registry, &store, &opts)?
    };
    print_outcome(&outcome, &store);
    Ok(if outcome.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `mbcr sweep --shards N`: bind an ephemeral local coordinator, spawn
/// `N` worker processes of this same binary against it, serve the sweep,
/// then reap the fleet. Results are byte-identical to a plain sweep —
/// the coordinator plans, skips, merges and finalizes with the exact
/// code a single process runs.
fn self_hosted_sharded_sweep(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
    opts: &RunOptions,
    shards: usize,
) -> Result<SweepOutcome, EngineError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(shards);
    for _ in 0..shards {
        children.push(
            std::process::Command::new(&exe)
                .args(["worker", "--connect", &addr, "--jobs", "1"])
                .stdout(std::process::Stdio::null())
                .spawn()?,
        );
    }
    let settings = CoordSettings {
        run: *opts,
        ..CoordSettings::default()
    };
    let outcome = serve(spec, registry, store, &settings, &listener);
    for child in &mut children {
        // Workers exit on the coordinator's Shutdown; the kill only mops
        // up stragglers (and the whole fleet when the sweep failed).
        let _ = child.kill();
        let _ = child.wait();
    }
    outcome
}

/// The trace export formats: Chrome trace events (the default, loadable
/// in `chrome://tracing` and Perfetto) or the raw span-event dump.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Events,
}

impl TraceFormat {
    /// Exit-2 contract as for [`OutputFormat::from_flags`]: unknown
    /// formats list the valid ones on stderr and exit `2`.
    fn from_flags(flags: &mut Flags<'_>) -> Result<Result<TraceFormat, ExitCode>, EngineError> {
        match flags.value("--format")? {
            None | Some("chrome") => Ok(Ok(TraceFormat::Chrome)),
            Some("events") => Ok(Ok(TraceFormat::Events)),
            Some(other) => {
                eprintln!("mbcr: --format: unknown format '{other}' (valid: chrome, events)");
                Ok(Err(ExitCode::from(2)))
            }
        }
    }
}

/// `mbcr trace`: run a sweep with span tracing on and export the merged
/// timeline of every span (stage executions, scheduler claims, campaign
/// chunks) to `--out`. The trace file lands outside the artifact store,
/// which stays byte-identical to an untraced run of the same spec.
fn trace_cmd(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let spec = spec_from_flags(&mut flags)?;
    let out = flags.value("--out")?.unwrap_or("trace.json").to_string();
    let store_dir = flags
        .value("--store")?
        .map_or_else(|| format!("mbcr-runs/{}", spec.name), str::to_string);
    let threads = match flags.value("--threads")? {
        Some(text) => parse_u64("--threads", text)? as usize,
        None => 0,
    };
    let force = flags.switch("--force");
    let format = match TraceFormat::from_flags(&mut flags)? {
        Ok(format) => format,
        Err(code) => return Ok(code),
    };
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }

    let store = ArtifactStore::open(&store_dir)?;
    let registry = Registry::malardalen();
    mbcr_obs::set_enabled(true);
    mbcr_obs::start_capture();
    let opts = RunOptions {
        threads,
        force,
        checkpoint_interval: None,
        batch_width: None,
        prescreen: false,
    };
    let outcome = run_sweep(&spec, &registry, &store, &opts)?;
    let (events, dropped) = mbcr_obs::finish_capture();
    let doc = match format {
        TraceFormat::Chrome => mbcr_obs::chrome_trace(&events),
        TraceFormat::Events => Json::Obj(vec![
            ("schema".to_string(), "mbcr-obs/1".into()),
            ("dropped".to_string(), Json::UInt(dropped)),
            (
                "events".to_string(),
                Json::Arr(events.iter().map(mbcr_obs::SpanEvent::to_json).collect()),
            ),
        ]),
    };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out, format!("{}\n", doc.to_compact()))?;
    print_outcome(&outcome, &store);
    println!(
        "trace: {} span event(s){} -> {out}",
        events.len(),
        if dropped > 0 {
            format!(" ({dropped} dropped)")
        } else {
            String::new()
        },
    );
    Ok(if outcome.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn coord(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let spec = spec_from_flags(&mut flags)?;
    let out = flags
        .value("--out")?
        .map_or_else(|| format!("mbcr-runs/{}", spec.name), str::to_string);
    let listen = flags
        .value("--listen")?
        .ok_or_else(|| EngineError::Spec("coord needs --listen ADDR".into()))?
        .to_string();
    let checkpoint_interval = match flags.value("--checkpoint-interval")? {
        Some(text) => Some(parse_u64("--checkpoint-interval", text)? as usize),
        None => None,
    };
    let batch_width = match flags.value("--batch-width")? {
        Some(text) => Some(parse_u64("--batch-width", text)? as usize),
        None => None,
    };
    let lease_ttl = match flags.value("--lease-ttl")? {
        Some(text) => Duration::from_secs(parse_u64("--lease-ttl", text)?),
        None => CoordSettings::default().lease_ttl,
    };
    let force = flags.switch("--force");
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }

    // Long-lived process: metrics live by default (MBCR_OBS=0 opts out).
    mbcr_obs::enable_for_service();
    let store = ArtifactStore::open(&out)?;
    let registry = Registry::malardalen();
    let listener = TcpListener::bind(&listen)?;
    // Parseable by scripts (and by port-0 users who need the real port).
    println!("coordinator listening on {}", listener.local_addr()?);
    let settings = CoordSettings {
        run: RunOptions {
            threads: 0,
            force,
            checkpoint_interval,
            batch_width,
            prescreen: false,
        },
        lease_ttl,
    };
    let outcome = serve(&spec, &registry, &store, &settings, &listener)?;
    print_outcome(&outcome, &store);
    Ok(if outcome.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `mbcr serve`: the long-lived multi-sweep daemon. Resumes any queue
/// persisted in the store, then accepts worker and client connections
/// until killed.
fn serve_cmd(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let listen = flags
        .value("--listen")?
        .ok_or_else(|| EngineError::Spec("serve needs --listen ADDR".into()))?
        .to_string();
    let out = flags
        .value("--out")?
        .unwrap_or("mbcr-runs/service")
        .to_string();
    let lease_ttl = match flags.value("--lease-ttl")? {
        Some(text) => Duration::from_secs(parse_u64("--lease-ttl", text)?),
        None => CoordSettings::default().lease_ttl,
    };
    let http = flags.value("--http")?.map(str::to_string);
    let spawn_workers = match flags.value("--spawn-workers")? {
        Some(text) => Some(parse_spawn_workers(text)?),
        None => None,
    };
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }

    // Long-lived daemon: metrics live by default (MBCR_OBS=0 opts out),
    // so /v1/metrics?format=prometheus has data to scrape.
    mbcr_obs::enable_for_service();
    let store = ArtifactStore::open(&out)?;
    let registry = Registry::malardalen();
    let listener = TcpListener::bind(&listen)?;
    // Parseable by scripts (and by port-0 users who need the real port).
    println!("service listening on {}", listener.local_addr()?);
    let http = match http {
        Some(addr) => {
            let http = TcpListener::bind(&addr)?;
            println!("http listening on {}", http.local_addr()?);
            Some(http)
        }
        None => None,
    };
    let settings = CoordSettings {
        run: RunOptions::default(),
        lease_ttl,
    };
    let gateway = GatewayOptions {
        http,
        spawn_workers,
    };
    serve_daemon_with(&registry, &store, &settings, &listener, gateway)?;
    Ok(ExitCode::SUCCESS)
}

/// Parses `--spawn-workers MIN..MAX` (`0..4`, `2..2`, …).
fn parse_spawn_workers(text: &str) -> Result<(usize, usize), EngineError> {
    let bad = || EngineError::Spec(format!("--spawn-workers: '{text}' is not MIN..MAX"));
    let (min, max) = text.split_once("..").ok_or_else(bad)?;
    let min: usize = min.parse().map_err(|_| bad())?;
    let max: usize = max.parse().map_err(|_| bad())?;
    if max == 0 || max < min {
        return Err(bad());
    }
    Ok((min, max))
}

/// Connects to a daemon and completes the protocol handshake.
fn client_connect(addr: &str) -> Result<TcpStream, EngineError> {
    let client_error = |message: String| EngineError::Analysis(message);
    let mut stream =
        TcpStream::connect(addr).map_err(|e| client_error(format!("connecting to {addr}: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| client_error(e.to_string()))?;
    protocol::send(
        &mut stream,
        &Message::Hello {
            schema: protocol::wire_schema(),
        },
    )
    .map_err(|e| client_error(format!("handshake with {addr}: {e}")))?;
    match protocol::receive(&mut stream).map_err(|e| client_error(e.to_string()))? {
        Some(Message::Welcome { schema }) if schema == protocol::wire_schema() => Ok(stream),
        Some(Message::Welcome { schema }) => Err(client_error(format!(
            "service speaks '{schema}', this client '{}'",
            protocol::wire_schema()
        ))),
        Some(Message::Reject { reason }) => Err(client_error(format!(
            "service refused the handshake: {reason}"
        ))),
        Some(other) => Err(client_error(format!(
            "expected welcome, got {}",
            other.to_json().to_compact()
        ))),
        None => Err(client_error(
            "service closed the connection during the handshake".to_string(),
        )),
    }
}

/// One request/response exchange with a daemon.
fn client_request(stream: &mut TcpStream, request: &Message) -> Result<Message, EngineError> {
    protocol::send(stream, request).map_err(|e| EngineError::Analysis(e.to_string()))?;
    protocol::receive(stream)
        .map_err(|e| EngineError::Analysis(e.to_string()))?
        .ok_or_else(|| EngineError::Analysis("service closed the connection".to_string()))
}

/// `mbcr submit`: queue a sweep on a running daemon. The sweep id printed
/// on success is durable — it survives daemon restarts and addresses
/// `report --follow`, `status` and `cancel`.
fn submit(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let connect = flags
        .value("--connect")?
        .ok_or_else(|| EngineError::Spec("submit needs --connect ADDR".into()))?
        .to_string();
    let spec = spec_from_flags(&mut flags)?;
    let checkpoint_interval = match flags.value("--checkpoint-interval")? {
        Some(text) => Some(parse_u64("--checkpoint-interval", text)? as usize),
        None => None,
    };
    let priority = match flags.value("--priority")? {
        Some(text) => u32::try_from(parse_u64("--priority", text)?).unwrap_or(u32::MAX),
        None => 1,
    };
    let max_concurrent = match flags.value("--max-concurrent")? {
        Some(text) => Some(parse_u64("--max-concurrent", text)? as usize),
        None => None,
    };
    let force = flags.switch("--force");
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }

    let mut stream = client_connect(&connect)?;
    let request = Message::Submit {
        spec: spec.to_json(),
        force,
        checkpoint_interval,
        priority,
        max_concurrent,
    };
    match client_request(&mut stream, &request)? {
        Message::Submitted { sweep } => {
            println!("submitted {sweep}");
            Ok(ExitCode::SUCCESS)
        }
        Message::Reject { reason } => {
            eprintln!("mbcr: submission rejected: {reason}");
            Ok(ExitCode::from(1))
        }
        other => Err(EngineError::Analysis(format!(
            "unexpected reply: {}",
            other.to_json().to_compact()
        ))),
    }
}

/// `mbcr status`: one row per sweep in the daemon's queue.
fn status(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let connect = flags
        .value("--connect")?
        .ok_or_else(|| EngineError::Spec("status needs --connect ADDR".into()))?
        .to_string();
    let sweep = flags.value("--sweep")?.map(str::to_string);
    flags.reject_unknown()?;

    let targeted = sweep.is_some();
    let mut stream = client_connect(&connect)?;
    match client_request(&mut stream, &Message::Status { sweep })? {
        Message::StatusReport { sweeps } => {
            println!(
                "{:<24} {:<20} {:<9} {:>9} {:>9} {:>8} {:>7}",
                "sweep", "name", "state", "done", "executed", "cached", "failed"
            );
            println!("{}", "-".repeat(92));
            for s in &sweeps {
                println!(
                    "{:<24} {:<20} {:<9} {:>5}/{:<3} {:>9} {:>8} {:>7}",
                    s.id,
                    s.name,
                    s.state.name(),
                    s.done,
                    s.total,
                    s.executed,
                    s.skipped,
                    s.failed
                );
            }
            // Scriptable: `mbcr status --sweep ID` doubles as a health
            // probe for that sweep.
            if targeted
                && sweeps
                    .iter()
                    .any(|s| s.state == SweepState::Canceled || s.failed > 0)
            {
                return Ok(ExitCode::from(1));
            }
            Ok(ExitCode::SUCCESS)
        }
        Message::Reject { reason } => {
            eprintln!("mbcr: {reason}");
            Ok(ExitCode::from(1))
        }
        other => Err(EngineError::Analysis(format!(
            "unexpected reply: {}",
            other.to_json().to_compact()
        ))),
    }
}

/// `mbcr cancel`: cancel one sweep on a daemon.
fn cancel(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let connect = flags
        .value("--connect")?
        .ok_or_else(|| EngineError::Spec("cancel needs --connect ADDR".into()))?
        .to_string();
    let sweep = flags
        .value("--sweep")?
        .ok_or_else(|| EngineError::Spec("cancel needs --sweep ID".into()))?
        .to_string();
    flags.reject_unknown()?;

    let mut stream = client_connect(&connect)?;
    match client_request(&mut stream, &Message::Cancel { sweep })? {
        Message::Cancelled { sweep, state } => {
            println!("{sweep}: {state}");
            Ok(ExitCode::SUCCESS)
        }
        Message::Reject { reason } => {
            eprintln!("mbcr: {reason}");
            Ok(ExitCode::from(1))
        }
        other => Err(EngineError::Analysis(format!(
            "unexpected reply: {}",
            other.to_json().to_compact()
        ))),
    }
}

/// Renders one live progress snapshot (`report --follow`).
fn render_snapshot(snapshot: &SweepSnapshot) {
    println!(
        "--- {} ({}) [{}]: {}/{} jobs done",
        snapshot.id,
        snapshot.name,
        snapshot.state.name(),
        snapshot.jobs.len(),
        snapshot.total,
    );
    if !snapshot.jobs.is_empty() {
        print!(
            "{}",
            render_stage_status(
                snapshot.jobs.iter().map(|(label, status, resumed)| (
                    label.as_str(),
                    status.as_str(),
                    *resumed
                )),
                &[],
            )
        );
    }
    if !snapshot.campaigns.is_empty() {
        print!("{}", render_campaign_progress(&snapshot.campaigns));
    }
}

/// Reconnect pacing for `report --follow`: a lost stream retries with
/// doubling backoff from 250 ms, capped at 5 s; this many *consecutive*
/// failures (any received frame resets the count) give up.
const FOLLOW_RETRY_START: Duration = Duration::from_millis(250);
const FOLLOW_RETRY_CAP: Duration = Duration::from_secs(5);
const FOLLOW_RETRY_LIMIT: u32 = 8;

/// The exit code the follow modes end with: nonzero when any followed
/// sweep was canceled or finished with failed jobs, so `report --follow`
/// doubles as a wait-for-success in scripts and CI.
fn follow_exit(outcomes: &std::collections::HashMap<String, (SweepState, usize)>) -> ExitCode {
    let bad = outcomes
        .values()
        .any(|&(state, failed)| state == SweepState::Canceled || failed > 0);
    if bad {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `mbcr report --connect --follow`: stream a daemon's progress until the
/// chosen sweep(s) complete, reconnecting with capped backoff when the
/// stream dies mid-sweep (daemon restart, transient network) — the
/// registry is durable, so a reconnect resumes exactly where the queue
/// stands.
fn follow_daemon(connect: &str, sweep: Option<String>) -> Result<ExitCode, EngineError> {
    let mut outcomes = std::collections::HashMap::new();
    let mut backoff = FOLLOW_RETRY_START;
    let mut failures = 0u32;
    loop {
        match follow_daemon_once(connect, sweep.clone(), &mut outcomes, &mut failures) {
            Ok(code) => return Ok(code),
            Err(e) => {
                failures += 1;
                if failures > FOLLOW_RETRY_LIMIT {
                    return Err(e);
                }
                eprintln!("mbcr: follow stream lost ({e}); reconnecting in {backoff:?}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(FOLLOW_RETRY_CAP);
            }
        }
    }
}

/// One binary-protocol follow attempt. Frames reaching the snapshot
/// handler reset the caller's consecutive-failure counter; an EOF before
/// `FollowEnd` is the transient-loss signal the caller retries on.
fn follow_daemon_once(
    connect: &str,
    sweep: Option<String>,
    outcomes: &mut std::collections::HashMap<String, (SweepState, usize)>,
    failures: &mut u32,
) -> Result<ExitCode, EngineError> {
    let mut stream = client_connect(connect)?;
    protocol::send(&mut stream, &Message::Follow { sweep })
        .map_err(|e| EngineError::Analysis(e.to_string()))?;
    loop {
        match protocol::receive(&mut stream).map_err(|e| EngineError::Analysis(e.to_string()))? {
            Some(Message::Progress(snapshot)) => {
                *failures = 0;
                outcomes.insert(
                    snapshot.id.clone(),
                    (
                        snapshot.state,
                        snapshot
                            .jobs
                            .iter()
                            .filter(|(_, s, _)| s == "failed")
                            .count(),
                    ),
                );
                render_snapshot(&snapshot);
            }
            Some(Message::FollowEnd) => return Ok(follow_exit(outcomes)),
            None => {
                return Err(EngineError::Analysis(
                    "follow stream closed before the sweep finished".to_string(),
                ))
            }
            Some(Message::Reject { reason }) => {
                eprintln!("mbcr: {reason}");
                return Ok(ExitCode::from(1));
            }
            Some(other) => {
                return Err(EngineError::Analysis(format!(
                    "unexpected frame: {}",
                    other.to_json().to_compact()
                )))
            }
        }
    }
}

/// `mbcr report --connect http://… --follow`: the same follow loop over
/// the gateway's SSE stream, with the same capped-backoff reconnects —
/// [`mbcr_gateway::SseReader`] surfaces a mid-event EOF as
/// `UnexpectedEof`, which lands in the retry path instead of trusting a
/// half-delivered frame.
fn follow_sse(addr: &str, id: &str) -> Result<ExitCode, EngineError> {
    let mut outcomes = std::collections::HashMap::new();
    let mut backoff = FOLLOW_RETRY_START;
    let mut failures = 0u32;
    loop {
        match follow_sse_once(addr, id, &mut outcomes, &mut failures) {
            Ok(code) => return Ok(code),
            Err(e) => {
                failures += 1;
                if failures > FOLLOW_RETRY_LIMIT {
                    return Err(EngineError::Analysis(e.to_string()));
                }
                eprintln!("mbcr: follow stream lost ({e}); reconnecting in {backoff:?}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(FOLLOW_RETRY_CAP);
            }
        }
    }
}

fn follow_sse_once(
    addr: &str,
    id: &str,
    outcomes: &mut std::collections::HashMap<String, (SweepState, usize)>,
    failures: &mut u32,
) -> io::Result<ExitCode> {
    let mut events = mbcr_gateway::open_sse(addr, &format!("/v1/sweeps/{id}/events"))?;
    while let Some(event) = events.next_event()? {
        match event.event.as_str() {
            "progress" => {
                let Some(snapshot) = mbcr_json::parse(&event.data)
                    .ok()
                    .as_ref()
                    .and_then(protocol::snapshot_from_json)
                else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed progress event",
                    ));
                };
                *failures = 0;
                outcomes.insert(
                    snapshot.id.clone(),
                    (
                        snapshot.state,
                        snapshot
                            .jobs
                            .iter()
                            .filter(|(_, s, _)| s == "failed")
                            .count(),
                    ),
                );
                render_snapshot(&snapshot);
            }
            "end" => return Ok(follow_exit(outcomes)),
            _ => {}
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "follow stream closed before the end event",
    ))
}

/// `mbcr report --connect http://…`: the gateway-backed report path.
/// One-shot mode lists `GET /v1/sweeps`; `--follow` streams
/// `GET /v1/sweeps/{id}/events`. Output and exit codes match the binary
/// protocol path row for row.
fn report_http(url: &str, sweep: Option<String>, follow: bool) -> Result<ExitCode, EngineError> {
    let (addr, _) = mbcr_gateway::parse_url(url).ok_or_else(|| {
        EngineError::Spec(format!("'{url}' is not an http://host:port[/path] URL"))
    })?;
    if follow {
        let id = sweep.ok_or_else(|| {
            EngineError::Spec(
                "--follow over http needs --sweep ID (one SSE stream per sweep)".into(),
            )
        })?;
        return follow_sse(&addr, &id);
    }
    let response = mbcr_gateway::request(&addr, "GET", "/v1/sweeps", None)
        .map_err(|e| EngineError::Analysis(format!("GET {url}/v1/sweeps: {e}")))?;
    if response.status != 200 {
        eprintln!("mbcr: HTTP {}: {}", response.status, response.error_text());
        return Ok(ExitCode::from(1));
    }
    let doc = response
        .json()
        .ok_or_else(|| EngineError::Analysis("non-JSON body from /v1/sweeps".to_string()))?;
    let rows = doc
        .get("sweeps")
        .and_then(Json::as_array)
        .ok_or_else(|| EngineError::Analysis("missing 'sweeps' in /v1/sweeps body".to_string()))?;
    let mut sweeps: Vec<_> = rows.iter().filter_map(protocol::status_from_json).collect();
    if let Some(id) = &sweep {
        sweeps.retain(|s| &s.id == id);
        if sweeps.is_empty() {
            eprintln!("mbcr: unknown sweep '{id}'");
            return Ok(ExitCode::from(1));
        }
    }
    for s in &sweeps {
        println!(
            "{} ({}) [{}]: {}/{} done — {} executed, {} cached, {} failed",
            s.id,
            s.name,
            s.state.name(),
            s.done,
            s.total,
            s.executed,
            s.skipped,
            s.failed
        );
    }
    if sweep.is_some()
        && sweeps
            .iter()
            .any(|s| s.state == SweepState::Canceled || s.failed > 0)
    {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn worker(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let connect = flags
        .value("--connect")?
        .ok_or_else(|| EngineError::Spec("worker needs --connect ADDR".into()))?
        .to_string();
    let jobs = match flags.value("--jobs")? {
        Some(text) => parse_u64("--jobs", text)? as usize,
        None => 1,
    };
    flags.reject_unknown()?;
    if let Some(extra) = flags.positionals().first() {
        return Err(EngineError::Spec(format!("unexpected argument '{extra}'")));
    }
    // Workers dump their flight recorder on SIGTERM drain; keep
    // collection on unless the user opted out.
    mbcr_obs::enable_for_service();
    // Not routed through EngineError: its Io variant renders as an
    // artifact-store failure, which a refused connection is not.
    let outcome = match run_worker(&connect, jobs) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("mbcr: worker: {e}");
            return Ok(ExitCode::from(1));
        }
    };
    println!(
        "worker done: {} executed, {} failed",
        outcome.executed, outcome.failed
    );
    Ok(if outcome.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// The per-stage status table, Table 2, counts and failures of a
/// finished sweep — identical output for local, coordinated and
/// self-hosted sharded runs.
fn print_outcome(outcome: &SweepOutcome, store: &ArtifactStore) {
    print!(
        "{}",
        render_stage_status(
            outcome.records.iter().map(|r| {
                (
                    r.label.as_str(),
                    r.status.name(),
                    r.summary
                        .as_ref()
                        .and_then(|s| s.campaign_resumed)
                        .unwrap_or(0),
                )
            }),
            &stage_wall_times(),
        )
    );
    println!();
    print!("{}", render_rows(&outcome.rows));
    println!(
        "\n{} executed, {} cached, {} failed in {:.1}s ({} artifacts under {})",
        outcome.executed,
        outcome.skipped,
        outcome.failed,
        outcome.elapsed.as_secs_f64(),
        outcome.records.len(),
        store.root().display(),
    );
    for record in outcome.records.iter().filter(|r| r.error.is_some()) {
        eprintln!(
            "failed: {} — {}",
            record.label,
            record.error.as_deref().unwrap_or("")
        );
    }
}

fn report(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let out = flags.value("--out")?.map(str::to_string);
    let connect = flags.value("--connect")?.map(str::to_string);
    let sweep = flags.value("--sweep")?.map(str::to_string);
    let follow = flags.switch("--follow");
    flags.reject_unknown()?;

    if let Some(connect) = connect {
        if out.is_some() {
            return Err(EngineError::Spec(
                "report takes --out or --connect, not both".into(),
            ));
        }
        // `--connect http://…` goes through the gateway; a bare
        // `host:port` speaks the binary protocol. Same output, same
        // exit codes.
        if connect.starts_with("http://") {
            return report_http(&connect, sweep, follow);
        }
        if follow {
            return follow_daemon(&connect, sweep);
        }
        // A one-shot snapshot of the daemon's queue.
        let targeted = sweep.is_some();
        let mut stream = client_connect(&connect)?;
        return match client_request(&mut stream, &Message::Status { sweep })? {
            Message::StatusReport { sweeps } => {
                for s in &sweeps {
                    println!(
                        "{} ({}) [{}]: {}/{} done — {} executed, {} cached, {} failed",
                        s.id,
                        s.name,
                        s.state.name(),
                        s.done,
                        s.total,
                        s.executed,
                        s.skipped,
                        s.failed
                    );
                }
                if targeted
                    && sweeps
                        .iter()
                        .any(|s| s.state == SweepState::Canceled || s.failed > 0)
                {
                    return Ok(ExitCode::from(1));
                }
                Ok(ExitCode::SUCCESS)
            }
            Message::Reject { reason } => {
                eprintln!("mbcr: {reason}");
                Ok(ExitCode::from(1))
            }
            other => Err(EngineError::Analysis(format!(
                "unexpected reply: {}",
                other.to_json().to_compact()
            ))),
        };
    }
    if follow {
        return Err(EngineError::Spec("--follow needs --connect ADDR".into()));
    }
    let out = out.ok_or_else(|| EngineError::Spec("report needs --out DIR or --connect".into()))?;

    let store = ArtifactStore::open(&out)?;
    // With --sweep, read the per-sweep scope of a service store (its
    // manifest and table live under sweeps/<id>/, the content at the
    // root).
    let store = match &sweep {
        Some(id) => store.run_scope(id)?,
        None => store,
    };
    let progress = store.campaign_progress();
    let Some(manifest) = store.load_manifest() else {
        // A sweep killed before its first completion leaves no manifest —
        // but its streamed campaign logs still tell how far it got.
        if progress.is_empty() {
            return Err(EngineError::Spec(format!("no manifest under '{out}'")));
        }
        println!(
            "no manifest under '{out}' (sweep interrupted before completion?); \
             streamed campaign state:\n"
        );
        print!("{}", render_campaign_progress(&progress));
        return Ok(ExitCode::SUCCESS);
    };
    let spec_name = manifest
        .get("spec")
        .and_then(|s| s.get("name"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let empty: [Json; 0] = [];
    let jobs: &[Json] = manifest
        .get("jobs")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let summaries: Vec<JobSummary> = jobs
        .iter()
        .filter_map(|j| j.get("summary").and_then(JobSummary::from_json))
        .collect();
    let counts = |k: &str| {
        manifest
            .get("counts")
            .and_then(|c| c.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    println!(
        "run '{}' at {}: {} jobs ({} executed, {} cached, {} failed)\n",
        spec_name,
        store.root().display(),
        jobs.len(),
        counts("executed"),
        counts("skipped"),
        counts("failed"),
    );
    print!(
        "{}",
        render_stage_status(
            jobs.iter().map(|j| {
                (
                    j.get("label").and_then(Json::as_str).unwrap_or("?"),
                    j.get("status").and_then(Json::as_str).unwrap_or("?"),
                    j.get("summary")
                        .and_then(|s| s.get("campaign_resumed"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                )
            }),
            &stage_wall_times(),
        )
    );
    if !progress.is_empty() {
        println!();
        print!("{}", render_campaign_progress(&progress));
    }
    println!();
    print!("{}", render_rows(&aggregate_rows(&summaries)));
    Ok(ExitCode::SUCCESS)
}

/// Per-campaign progress: how many runs of each streamed campaign are
/// durable on disk, as a percentage of the campaign's resolved length —
/// readable mid-sweep, after a kill, or once everything completed.
fn render_campaign_progress(progress: &[mbcr_engine::CampaignProgress]) -> String {
    let mut out = String::from("campaign progress:\n");
    for p in progress {
        // A frame-less log (killed between magic and first frame) has
        // total == 0: that is zero progress, not completion.
        let pct = if p.total == 0 {
            0.0
        } else {
            100.0 * p.collected as f64 / p.total as f64
        };
        out.push_str(&format!(
            "  {:016x}  {:>9} / {:<9} {:>5.1}%\n",
            p.digest, p.collected, p.total, pct
        ));
    }
    out
}

/// Per-stage-kind wall time from the live telemetry registry: the summed
/// `mbcr_stage_execute_seconds{name=<kind>}` observations in nanoseconds.
/// Empty when tracing is off or nothing executed in this process — the
/// table's wall column renders `-` for kinds with no data.
fn stage_wall_times() -> Vec<(String, u64)> {
    let mut walls = Vec::new();
    for ((name, labels), metric) in &mbcr_obs::global().snapshot() {
        if name != "mbcr_stage_execute_seconds" {
            continue;
        }
        if let mbcr_obs::MetricSnapshot::Histogram(h) = metric {
            if let Some((_, kind)) = labels.iter().find(|(key, _)| key == "name") {
                walls.push((kind.clone(), h.sum()));
            }
        }
    }
    walls
}

/// Per-stage status: how many nodes of each stage kind executed (and, of
/// those, resumed from an intra-campaign checkpoint), came from cache, or
/// failed — the sweep's resume state at a glance. `walls` (stage kind →
/// summed execute time in nanoseconds, from [`stage_wall_times`]) fills
/// the wall column; kinds it does not cover render `-`.
fn render_stage_status<'a>(
    rows: impl Iterator<Item = (&'a str, &'a str, u64)>,
    walls: &[(String, u64)],
) -> String {
    // Kind name → [executed, resumed, cached, failed], in first-seen order.
    let mut kinds: Vec<(String, [u64; 4])> = Vec::new();
    for (label, status, resumed_runs) in rows {
        let kind = label.split('/').next().unwrap_or("?").to_string();
        let at = match kinds.iter().position(|(k, _)| *k == kind) {
            Some(at) => at,
            None => {
                kinds.push((kind, [0; 4]));
                kinds.len() - 1
            }
        };
        match status {
            "executed" => {
                kinds[at].1[0] += 1;
                if resumed_runs > 0 {
                    kinds[at].1[1] += 1;
                }
            }
            "skipped" => kinds[at].1[2] += 1,
            "failed" => kinds[at].1[3] += 1,
            _ => {}
        }
    }
    let width = kinds
        .iter()
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(5)
        .max("stage".len());
    let mut out = format!(
        "{:<width$}  executed  resumed  cached  failed  wall\n",
        "stage"
    );
    for (kind, [executed, resumed, cached, failed]) in &kinds {
        let wall = walls
            .iter()
            .find(|(k, _)| k == kind)
            .map_or_else(|| "-".to_string(), |&(_, ns)| fmt_dur_ns(ns));
        out.push_str(&format!(
            "{kind:<width$}  {executed:>8}  {resumed:>7}  {cached:>6}  {failed:>6}  {wall:>8}\n"
        ));
    }
    out
}

/// Renders a nanosecond duration human-readably (`412ns`, `3.2us`,
/// `18ms`, `2.41s`).
fn fmt_dur_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// `mbcr loadgen`: the service-plane load-storm bench. Spawns a daemon
/// (`serve --http … --spawn-workers …`), submits a storm of overlapping
/// sweeps over HTTP while many SSE followers stream their progress, and
/// reports what the gateway is for: dedup hit rate across the storm,
/// time-to-first-event under follower load, fair-share claim spread, and
/// the bytes cache-aware placement kept off the wire.
fn loadgen(args: &[String]) -> Result<ExitCode, EngineError> {
    let mut flags = Flags::new(args);
    let sweeps = match flags.value("--sweeps")? {
        Some(text) => (parse_u64("--sweeps", text)? as usize).max(1),
        None => 6,
    };
    let followers = match flags.value("--followers")? {
        Some(text) => parse_u64("--followers", text)? as usize,
        None => 8,
    };
    let spawn = flags
        .value("--spawn-workers")?
        .unwrap_or("1..2")
        .to_string();
    parse_spawn_workers(&spawn)?;
    let out = flags
        .value("--out")?
        .unwrap_or("mbcr-runs/loadgen")
        .to_string();
    let full = flags.switch("--full");
    flags.reject_unknown()?;

    let exe = std::env::current_exe().map_err(|e| EngineError::Analysis(e.to_string()))?;
    let mut daemon = Command::new(exe)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--http",
            "127.0.0.1:0",
            "--spawn-workers",
            &spawn,
            "--out",
            &out,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| EngineError::Analysis(format!("spawning the daemon: {e}")))?;
    // The daemon under test dies with the bench, success or failure; its
    // registry is durable, so a re-run against the same --out resumes
    // rather than redoing finished work.
    let result = loadgen_run(&mut daemon, sweeps, followers, full);
    let _ = daemon.kill();
    let _ = daemon.wait();
    result
}

fn loadgen_run(
    daemon: &mut Child,
    sweeps: usize,
    followers: usize,
    full: bool,
) -> Result<ExitCode, EngineError> {
    use std::io::BufRead;
    let fail = |message: String| EngineError::Analysis(message);
    let stdout = daemon.stdout.take().expect("daemon stdout is piped");
    let mut lines = io::BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    while addr.is_none() {
        line.clear();
        if lines
            .read_line(&mut line)
            .map_err(|e| fail(e.to_string()))?
            == 0
        {
            return Err(fail(
                "the daemon exited before printing its http address".into(),
            ));
        }
        if let Some(http) = line.trim().strip_prefix("http listening on ") {
            addr = Some(http.to_string());
        }
    }
    let addr = addr.expect("set by the loop above");
    // Keep draining the daemon's stdout so it can never block on a full
    // pipe mid-storm.
    std::thread::spawn(move || {
        let _ = io::copy(&mut lines, &mut io::sink());
    });

    // Request latencies go through mbcr-obs histograms so the report can
    // quote real quantiles instead of min/median/max over a tiny sample.
    let http_hist = mbcr_obs::Histogram::new();

    // The storm: overlapping sweeps alternating between two benchmarks.
    // Seed 11 is shared by every sweep on the same benchmark — that is
    // the cross-sweep dedup overlap — while the second seed is unique
    // work that keeps every sweep competing for claims.
    let cap = if full { 60_000 } else { 600 };
    let mut ids = Vec::new();
    for i in 0..sweeps {
        let mut spec = SweepSpec::new(format!("storm-{i:02}"));
        spec.benchmarks = vec![if i % 2 == 0 { "bs" } else { "cnt" }.to_string()];
        spec.seeds = vec![11, 100 + i as u64];
        spec.analyses = vec![AnalysisKind::PubTac];
        spec.quick = !full;
        spec.max_campaign_runs = Some(cap);
        let body = Json::Obj(vec![
            ("spec".to_string(), spec.to_json()),
            ("checkpoint_interval".to_string(), Json::UInt(200)),
            ("priority".to_string(), Json::UInt((i % 3 + 1) as u64)),
        ]);
        let posted = Instant::now();
        let response = mbcr_gateway::request(&addr, "POST", "/v1/sweeps", Some(&body))
            .map_err(|e| fail(format!("POST /v1/sweeps: {e}")))?;
        http_hist.record(dur_ns(posted.elapsed()));
        if response.status != 201 {
            return Err(fail(format!(
                "POST /v1/sweeps: HTTP {}: {}",
                response.status,
                response.error_text()
            )));
        }
        let id = response
            .json()
            .as_ref()
            .and_then(|doc| doc.get("sweep"))
            .and_then(Json::as_str)
            .ok_or_else(|| fail("no 'sweep' id in the submit response".into()))?
            .to_string();
        ids.push(id);
    }
    println!(
        "loadgen: {} overlapping sweeps submitted over http://{addr}, {} SSE followers",
        ids.len(),
        followers
    );

    // Followers stream while the storm runs; the main thread polls the
    // status endpoint until every submitted sweep is terminal.
    let follower_results: Vec<io::Result<(Option<Duration>, u64)>> =
        std::thread::scope(|scope| -> Result<_, EngineError> {
            let handles: Vec<_> = (0..followers)
                .map(|f| {
                    let addr = addr.clone();
                    let id = ids[f % ids.len()].clone();
                    scope.spawn(move || follow_first_event(&addr, &id))
                })
                .collect();
            poll_until_terminal(&addr, &ids, &http_hist)?;
            Ok(handles
                .into_iter()
                .map(|h| h.join().expect("follower panicked"))
                .collect())
        })?;

    let ttfe_hist = mbcr_obs::Histogram::new();
    for result in follower_results.iter().flatten() {
        if let (Some(first), _) = result {
            ttfe_hist.record(dur_ns(*first));
        }
    }

    let metrics = mbcr_gateway::request(&addr, "GET", "/v1/metrics", None)
        .map_err(|e| fail(format!("GET /v1/metrics: {e}")))?
        .json()
        .ok_or_else(|| fail("non-JSON body from /v1/metrics".into()))?;
    print!(
        "{}",
        loadgen_report(
            &metrics,
            &ids,
            &follower_results,
            &http_hist.snapshot(),
            &ttfe_hist.snapshot(),
        )
    );
    Ok(ExitCode::SUCCESS)
}

/// A `Duration` as the nanosecond unit mbcr-obs histograms record.
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One SSE follower of the load storm: time from connect to the first
/// `progress` event (`None` if the stream ended without one), plus the
/// number of events received.
fn follow_first_event(addr: &str, id: &str) -> io::Result<(Option<Duration>, u64)> {
    let start = Instant::now();
    let mut events = mbcr_gateway::open_sse(addr, &format!("/v1/sweeps/{id}/events"))?;
    let mut first = None;
    let mut count = 0u64;
    while let Some(event) = events.next_event()? {
        count += 1;
        match event.event.as_str() {
            "progress" if first.is_none() => first = Some(start.elapsed()),
            "end" => break,
            _ => {}
        }
    }
    Ok((first, count))
}

/// Polls `GET /v1/sweeps` until every id in `ids` reports a terminal
/// state (or ten minutes pass), recording each request's latency.
fn poll_until_terminal(
    addr: &str,
    ids: &[String],
    http_hist: &mbcr_obs::Histogram,
) -> Result<(), EngineError> {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let sent = Instant::now();
        let response = mbcr_gateway::request(addr, "GET", "/v1/sweeps", None)
            .map_err(|e| EngineError::Analysis(format!("GET /v1/sweeps: {e}")))?;
        http_hist.record(dur_ns(sent.elapsed()));
        let rows: Vec<_> = response
            .json()
            .as_ref()
            .and_then(|doc| doc.get("sweeps"))
            .and_then(Json::as_array)
            .map(|rows| rows.iter().filter_map(protocol::status_from_json).collect())
            .unwrap_or_default();
        if ids
            .iter()
            .all(|id| rows.iter().any(|s| &s.id == id && s.state.terminal()))
        {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(EngineError::Analysis(
                "loadgen timed out waiting for the storm to finish".into(),
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Renders the loadgen report from the daemon's `/v1/metrics` document,
/// the followers' measurements, and the bench's latency histograms.
fn loadgen_report(
    metrics: &Json,
    ids: &[String],
    followers: &[io::Result<(Option<Duration>, u64)>],
    http: &mbcr_obs::HistogramSnapshot,
    ttfe: &mbcr_obs::HistogramSnapshot,
) -> String {
    let empty: [Json; 0] = [];
    let rows: &[Json] = metrics
        .get("sweeps")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let field = |row: &Json, key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
    let (mut total, mut skipped) = (0u64, 0u64);
    let mut claims: Vec<u64> = Vec::new();
    for row in rows.iter().filter(|row| {
        row.get("id")
            .and_then(Json::as_str)
            .is_some_and(|id| ids.iter().any(|ours| ours == id))
    }) {
        total += field(row, "total");
        skipped += field(row, "skipped");
        claims.push(field(row, "claims"));
    }
    let parked = metrics
        .get("dedup_parked")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let affinity = |key: &str| {
        metrics
            .get("affinity")
            .and_then(|a| a.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let events: u64 = followers
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|(_, n)| *n))
        .sum();
    let errors = followers.iter().filter(|r| r.is_err()).count();

    let mut out = String::from("loadgen report:\n");
    out.push_str(&format!(
        "  followers: {} streams, {events} events delivered, {errors} stream errors\n",
        followers.len(),
    ));
    // Quantiles are log-bucket upper bounds from mbcr-obs — coarse by
    // design, stable across sample counts.
    if ttfe.count() == 0 {
        out.push_str("  time-to-first-event: no progress events observed\n");
    } else {
        out.push_str(&format!(
            "  time-to-first-event: p50 {} / p95 {} / p99 {} over {} follower(s), max {}\n",
            fmt_dur_ns(ttfe.quantile(0.5)),
            fmt_dur_ns(ttfe.quantile(0.95)),
            fmt_dur_ns(ttfe.quantile(0.99)),
            ttfe.count(),
            fmt_dur_ns(ttfe.max()),
        ));
    }
    out.push_str(&format!(
        "  http requests: {} sent, latency p50 {} / p95 {} / p99 {}\n",
        http.count(),
        fmt_dur_ns(http.quantile(0.5)),
        fmt_dur_ns(http.quantile(0.95)),
        fmt_dur_ns(http.quantile(0.99)),
    ));
    let pct = if total == 0 {
        0.0
    } else {
        100.0 * skipped as f64 / total as f64
    };
    out.push_str(&format!(
        "  dedup: {skipped}/{total} jobs served from cache ({pct:.1}%), \
         {parked} claims parked behind in-flight stages\n"
    ));
    out.push_str(&format!(
        "  fairness: claims per sweep min {} / max {}\n",
        claims.iter().min().copied().unwrap_or(0),
        claims.iter().max().copied().unwrap_or(0),
    ));
    out.push_str(&format!(
        "  affinity: shipped {} bytes, elided {} bytes\n",
        affinity("shipped_bytes"),
        affinity("elided_bytes"),
    ));
    out
}
