//! Criterion performance benches for the EVT statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use mbcr_evt::{fit_exp_tail, fit_gumbel, Eccdf, IidReport, TailConfig};
use mbcr_rng::{Rng64, Xoshiro256PlusPlus};
use std::hint::black_box;

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256PlusPlus::from_seed(seed);
    (0..n).map(|_| 2000.0 + rng.exponential(0.01)).collect()
}

fn bench_fits(c: &mut Criterion) {
    let s = sample(10_000, 1);
    c.bench_function("fit_exp_tail_10k", |b| {
        b.iter(|| black_box(fit_exp_tail(&s, &TailConfig::default()).expect("fit")));
    });
    c.bench_function("fit_gumbel_10k_b50", |b| {
        b.iter(|| black_box(fit_gumbel(&s, 50).expect("fit")));
    });
}

fn bench_eccdf(c: &mut Criterion) {
    let s = sample(100_000, 2);
    c.bench_function("eccdf_build_100k", |b| {
        b.iter(|| black_box(Eccdf::new(&s)));
    });
    let e = Eccdf::new(&s);
    c.bench_function("eccdf_quantile", |b| {
        b.iter(|| black_box(e.quantile(1e-3)));
    });
}

fn bench_iid(c: &mut Criterion) {
    let s = sample(5_000, 3);
    c.bench_function("iid_report_5k", |b| {
        b.iter(|| black_box(IidReport::evaluate(&s)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fits, bench_eccdf, bench_iid
}
criterion_main!(benches);
