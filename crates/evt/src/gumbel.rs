//! Gumbel (GEV type I) fitting via block maxima and probability-weighted
//! moments — the classical EVT route, provided alongside the exponential
//! tail for the Gumbel-vs-exponential comparison discussed in the paper's
//! related work (Palma et al., RTSS'17).

use crate::exp_tail::EvtError;
use crate::stats::mean;

/// Euler–Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A Gumbel distribution fitted to block maxima.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GumbelFit {
    /// Location parameter (of the block-maximum distribution).
    pub mu: f64,
    /// Scale parameter.
    pub sigma: f64,
    /// Block size used.
    pub block_size: usize,
    /// Number of blocks.
    pub blocks: usize,
}

impl GumbelFit {
    /// The pWCET value at **per-run** exceedance probability `p`.
    ///
    /// The fitted distribution models block maxima; a per-run exceedance of
    /// `p` corresponds to a per-block exceedance of
    /// `1 − (1 − p)^B ≈ B·p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "exceedance probability must be in (0, 1)"
        );
        let pb = (1.0 - (1.0 - p).powi(self.block_size as i32)).clamp(f64::MIN_POSITIVE, 1.0);
        // Gumbel CDF: F(x) = exp(-exp(-(x-mu)/sigma)); invert 1 - F = pb.
        self.mu - self.sigma * (-(1.0 - pb).ln()).ln()
    }

    /// Modelled per-run exceedance probability of `x`.
    #[must_use]
    pub fn exceedance(&self, x: f64) -> f64 {
        let f_block = (-(-(x - self.mu) / self.sigma).exp()).exp();
        // Per-run: 1 - F_block^(1/B).
        1.0 - f_block.powf(1.0 / self.block_size as f64)
    }
}

/// Fits a Gumbel distribution to block maxima of `sample` using
/// probability-weighted moments (Hosking's estimators):
///
/// `σ = (2·b₁ − b₀) / ln 2`, `μ = b₀ − γ·σ`.
///
/// # Errors
///
/// * [`EvtError::NotEnoughData`] if fewer than 20 blocks are available;
/// * [`EvtError::DegenerateSample`] if the maxima have no spread.
pub fn fit_gumbel(sample: &[f64], block_size: usize) -> Result<GumbelFit, EvtError> {
    let block_size = block_size.max(1);
    let blocks = sample.len() / block_size;
    if blocks < 20 {
        return Err(EvtError::NotEnoughData {
            needed: 20 * block_size,
            got: sample.len(),
        });
    }
    let mut maxima: Vec<f64> = (0..blocks)
        .map(|b| {
            sample[b * block_size..(b + 1) * block_size]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    maxima.sort_by(f64::total_cmp);

    let n = maxima.len() as f64;
    let b0 = mean(&maxima);
    let b1 = maxima
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 / (n - 1.0)) * x)
        .sum::<f64>()
        / n;
    let sigma = (2.0 * b1 - b0) / std::f64::consts::LN_2;
    if sigma.is_nan() || sigma <= 0.0 {
        return Err(EvtError::DegenerateSample);
    }
    let mu = b0 - EULER_GAMMA * sigma;
    Ok(GumbelFit {
        mu,
        sigma,
        block_size,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_rng::{Rng64, Xoshiro256PlusPlus};

    #[test]
    fn recovers_gumbel_parameters() {
        let (mu, sigma) = (1000.0, 25.0);
        let mut rng = Xoshiro256PlusPlus::from_seed(17);
        // Sample Gumbel directly with block size 1: maxima of one value.
        let sample: Vec<f64> = (0..50_000).map(|_| rng.gumbel(mu, sigma)).collect();
        let fit = fit_gumbel(&sample, 1).unwrap();
        assert!((fit.mu - mu).abs() < 1.0, "mu = {}", fit.mu);
        assert!((fit.sigma - sigma).abs() < 1.0, "sigma = {}", fit.sigma);
    }

    #[test]
    fn block_maxima_of_exponential_look_gumbel() {
        // Max of B exponentials(rate) ~ Gumbel(ln(B)/rate, 1/rate).
        let rate = 0.1;
        let block = 50usize;
        let mut rng = Xoshiro256PlusPlus::from_seed(5);
        let sample: Vec<f64> = (0..100_000).map(|_| rng.exponential(rate)).collect();
        let fit = fit_gumbel(&sample, block).unwrap();
        assert!(
            (fit.sigma - 1.0 / rate).abs() < 1.5,
            "sigma = {}",
            fit.sigma
        );
        assert!(
            (fit.mu - (block as f64).ln() / rate).abs() < 3.0,
            "mu = {}",
            fit.mu
        );
    }

    #[test]
    fn quantile_extrapolates_monotonically() {
        let mut rng = Xoshiro256PlusPlus::from_seed(23);
        let sample: Vec<f64> = (0..20_000).map(|_| 100.0 + rng.exponential(0.05)).collect();
        let fit = fit_gumbel(&sample, 20).unwrap();
        let q = [1e-6, 1e-9, 1e-12].map(|p| fit.quantile(p));
        assert!(q[0] < q[1] && q[1] < q[2]);
        assert!(q[0] > fit.mu);
    }

    #[test]
    fn exceedance_roughly_inverts_quantile() {
        let mut rng = Xoshiro256PlusPlus::from_seed(29);
        let sample: Vec<f64> = (0..20_000).map(|_| rng.gumbel(500.0, 10.0)).collect();
        let fit = fit_gumbel(&sample, 10).unwrap();
        for p in [1e-5, 1e-8] {
            let x = fit.quantile(p);
            let back = fit.exceedance(x);
            assert!((back - p).abs() / p < 0.05, "p = {p}, back = {back}");
        }
    }

    #[test]
    fn not_enough_blocks_errors() {
        let sample = vec![1.0; 100];
        assert!(matches!(
            fit_gumbel(&sample, 10).unwrap_err(),
            EvtError::NotEnoughData { .. }
        ));
    }

    #[test]
    fn degenerate_maxima_error() {
        let sample = vec![7.0; 1000];
        assert_eq!(
            fit_gumbel(&sample, 10).unwrap_err(),
            EvtError::DegenerateSample
        );
    }
}

mbcr_json::impl_serialize_struct!(GumbelFit {
    mu,
    sigma,
    block_size,
    blocks
});
