//! Mid-campaign checkpoint/resume: the tentpole guarantees of the
//! streamed campaign chunk log.
//!
//! * a torn or truncated final chunk is discarded and is never a cache
//!   hit — the campaign stage re-executes and resumes from the valid
//!   prefix;
//! * an interrupted-then-resumed campaign is bit-identical to an
//!   uninterrupted `campaign()` at *any* interrupt byte and thread
//!   count, and even reconstructs the log file byte-for-byte (frames are
//!   aligned to the absolute checkpoint grid, not to where the resume
//!   happened to start);
//! * a killed `mbcr sweep` re-simulates at most one checkpoint interval
//!   and reproduces every artifact of a never-killed sweep exactly.

use std::fs;
use std::path::PathBuf;

use mbcr::stage::{AnalysisSession, PipelineKind, StageDigests, StageKind, StageStatus};
use mbcr::AnalysisConfig;
use mbcr_engine::{
    expand, run_sweep, AnalysisKind, ArtifactStore, JobStatus, Registry, RunOptions, SampleLog,
    StageStore as _, SweepSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-resume-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic byte-offset generator (SplitMix64) so the interrupt
/// sweep probes reproducible, scattered cut points.
fn cuts(len: usize, count: usize, mut state: u64) -> Vec<usize> {
    let mut out = vec![0, 4, 8, 9, len.saturating_sub(1)];
    for _ in 0..count {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        out.push((z ^ (z >> 31)) as usize % len);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Property: for any interrupt byte offset in the campaign chunk log and
/// any thread count, a resumed session produces the same sample as the
/// uninterrupted run — and completes the log to the same bytes.
#[test]
fn interrupted_campaign_resumes_bit_identically_at_any_cut_point() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg = AnalysisConfig::builder()
        .seed(3)
        .quick()
        .threads(2)
        .checkpoint_interval(128)
        .build();

    // Ground truth: a storeless (never-checkpointed) run.
    let truth = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg)
        .finish_pub_tac()
        .expect("storeless session");
    assert!(
        truth.sample.len() > truth.r_pub,
        "the cell must have a TAC-extended campaign tail to interrupt"
    );

    let dir = tmp_dir("any-cut");
    let store = ArtifactStore::open(&dir).expect("open store");
    let cold = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg)
        .with_store(&store)
        .finish_pub_tac()
        .expect("cold session");
    assert_eq!(cold.sample, truth.sample);

    let digests = StageDigests::compute(&b.program, &b.default_input, &cfg, PipelineKind::PubTac);
    let digest = digests.get(StageKind::Campaign).expect("campaign digest");
    let log_path = store.stage_samples_path(digest);
    let pristine = fs::read(&log_path).expect("pristine log bytes");

    for cut in cuts(pristine.len(), 10, 0xC0FFEE) {
        for threads in [1usize, 3] {
            fs::write(&log_path, &pristine[..cut]).expect("interrupt the log");
            let valid_prefix = SampleLog::at(&log_path)
                .load()
                .map_or(0, |c| c.samples.len());
            assert!(
                valid_prefix <= truth.sample.len(),
                "a truncated log never decodes beyond the campaign"
            );

            let recfg = AnalysisConfig {
                threads,
                ..cfg.clone()
            };
            let mut session =
                AnalysisSession::pub_tac(&b.program, &b.default_input, &recfg).with_store(&store);
            session.advance(StageKind::Campaign).expect("resume");
            assert_eq!(
                session.status(StageKind::Campaign),
                Some(StageStatus::Computed),
                "cut {cut}: a truncated log under the completion marker \
                 must never be a cache hit"
            );
            if valid_prefix > truth.r_pub {
                assert_eq!(
                    session.campaign_resumed_runs(),
                    Some(valid_prefix),
                    "cut {cut}: the valid log prefix seeds the resume"
                );
            }
            assert_eq!(
                session.campaign_sample(),
                Some(truth.sample.as_slice()),
                "cut {cut}, threads {threads}: resume must be bit-identical"
            );
            assert_eq!(
                fs::read(&log_path).expect("resumed log bytes"),
                pristine,
                "cut {cut}, threads {threads}: the completed log must \
                 reconstruct the uninterrupted byte stream"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Changing `checkpoint_interval` across a resume must never fail or
/// change results — including the once-lethal shape where the existing
/// log is shorter than the convergence prefix, so the resumed writer
/// re-frames runs the old interval already made durable (partial-overlap
/// appends keep the durable prefix and extend it).
#[test]
fn interval_change_across_resume_is_harmless() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg_at = |interval: usize| {
        AnalysisConfig::builder()
            .seed(3)
            .quick()
            .threads(2)
            .checkpoint_interval(interval)
            .build()
    };
    let truth = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg_at(128))
        .finish_pub_tac()
        .expect("storeless session");

    let cfg = cfg_at(128);
    let digests = StageDigests::compute(&b.program, &b.default_input, &cfg, PipelineKind::PubTac);
    let digest = digests.get(StageKind::Campaign).expect("campaign digest");
    for (seed_runs, new_interval) in [
        (128, 300),             // log shorter than the converge prefix, coarser grid
        (128, 0),               // ... and checkpoints disabled
        (truth.r_pub + 64, 96), // log past the prefix, misaligned finer grid
    ] {
        let dir = tmp_dir(&format!("interval-change-{seed_runs}-{new_interval}"));
        let store = ArtifactStore::open(&dir).expect("open store");
        store
            .append_samples(digest, 0, truth.sample.len(), &truth.sample[..seed_runs])
            .expect("seed the log under the old interval");
        let recfg = cfg_at(new_interval);
        let mut session =
            AnalysisSession::pub_tac(&b.program, &b.default_input, &recfg).with_store(&store);
        session
            .advance(StageKind::Campaign)
            .expect("an interval change must never fail the campaign");
        assert_eq!(
            session.campaign_sample(),
            Some(truth.sample.as_slice()),
            "seed_runs={seed_runs}, new_interval={new_interval}"
        );
        assert_eq!(
            store.load_samples(digest).expect("completed log"),
            truth.sample,
            "the log ends complete whatever the grids were"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A CRC-valid log whose *content* diverges from its digest (corruption
/// past the CRC, a foreign file) is discarded and rewritten from scratch
/// — not left behind to poison every later warm run.
#[test]
fn divergent_log_content_is_reset_and_rewritten() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg = AnalysisConfig::builder()
        .seed(9)
        .quick()
        .threads(2)
        .checkpoint_interval(256)
        .build();
    let dir = tmp_dir("divergent");
    let store = ArtifactStore::open(&dir).expect("open store");
    let cold = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg)
        .with_store(&store)
        .finish_pub_tac()
        .expect("cold session");
    let digests = StageDigests::compute(&b.program, &b.default_input, &cfg, PipelineKind::PubTac);
    let digest = digests.get(StageKind::Campaign).expect("campaign digest");

    // Plant a well-formed log with wrong sample values under the digest.
    store.reset_samples(digest).expect("drop the real log");
    let mut wrong = cold.sample.clone();
    for v in &mut wrong {
        *v ^= 1;
    }
    store
        .append_samples(digest, 0, wrong.len(), &wrong)
        .expect("plant divergent log");

    let mut session =
        AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg).with_store(&store);
    session.advance(StageKind::Campaign).expect("recover");
    assert_eq!(
        session.status(StageKind::Campaign),
        Some(StageStatus::Computed),
        "divergent content is never a cache hit"
    );
    assert_eq!(session.campaign_sample(), Some(cold.sample.as_slice()));
    assert_eq!(
        store.load_samples(digest).expect("rewritten log"),
        cold.sample,
        "the poisoned log must be replaced by the true sample, so the \
         next warm run is a cache hit again"
    );
    let mut warm = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg).with_store(&store);
    warm.advance(StageKind::Campaign).expect("warm");
    assert_eq!(warm.status(StageKind::Campaign), Some(StageStatus::Cached));
    let _ = fs::remove_dir_all(&dir);
}

/// The engine-level kill story: a sweep killed mid-campaign re-runs to a
/// store byte-identical to a never-killed sweep, re-simulating at most
/// one checkpoint interval.
#[test]
fn killed_sweep_resumes_within_one_interval_and_reproduces_artifacts() {
    const INTERVAL: usize = 256;
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("resume-e2e")
        .benchmarks(["bs"])
        .seeds([31])
        .analyses([AnalysisKind::PubTac]);
    let opts = RunOptions {
        threads: 4,
        force: false,
        checkpoint_interval: Some(INTERVAL),
        ..RunOptions::default()
    };

    // Reference: a sweep that was never interrupted.
    let dir_a = tmp_dir("clean");
    let store_a = ArtifactStore::open(&dir_a).expect("open clean store");
    let clean = run_sweep(&spec, &registry, &store_a, &opts).expect("clean sweep");
    assert_eq!(clean.failed, 0);

    // Same sweep in a second store, then simulate a SIGKILL mid-campaign:
    // tear the chunk log inside its final frame and delete everything the
    // killed process would not have written yet (the campaign completion
    // marker, the downstream fit artifacts, manifest and table).
    let dir_b = tmp_dir("killed");
    let store_b = ArtifactStore::open(&dir_b).expect("open killed store");
    run_sweep(&spec, &registry, &store_b, &opts).expect("to-be-killed sweep");
    let graph = expand(&spec, &registry).expect("expand");
    let digest_of = |stage: StageKind| {
        graph
            .jobs
            .iter()
            .enumerate()
            .find(|(_, j)| j.kind.stage() == Some(stage))
            .and_then(|(i, _)| graph.digests[i])
            .expect("stage digest")
    };
    let campaign_digest = digest_of(StageKind::Campaign);
    let log_path = store_b.stage_samples_path(campaign_digest);
    let pristine = fs::read(&log_path).expect("log bytes");
    let total = store_b
        .load_samples(campaign_digest)
        .expect("complete log")
        .len();
    fs::write(&log_path, &pristine[..pristine.len() - 7]).expect("tear the final frame");
    let valid = store_b
        .load_samples(campaign_digest)
        .expect("torn log still loads")
        .len();
    assert!(valid < total, "the torn final frame must be discarded");
    assert!(
        total - valid <= INTERVAL,
        "at most one checkpoint interval may be lost"
    );
    fs::remove_file(store_b.stage_path(campaign_digest)).expect("drop completion marker");
    fs::remove_file(store_b.stage_path(digest_of(StageKind::Fit))).expect("drop fit artifact");
    fs::remove_dir_all(dir_b.join("jobs")).expect("drop job artifacts");
    fs::remove_file(store_b.manifest_path()).expect("drop manifest");
    fs::remove_file(store_b.table2_path()).expect("drop table2");

    // The re-run resumes: upstream stages cached, the campaign executes
    // again but restores everything up to the last checkpoint.
    let resumed = run_sweep(&spec, &registry, &store_b, &opts).expect("resumed sweep");
    assert_eq!(resumed.failed, 0);
    for record in &resumed.records {
        let stage = record.label.split('/').next().unwrap_or("?");
        let expect_executed = matches!(stage, "pub_tac:campaign" | "pub_tac:fit");
        let expected = if expect_executed {
            JobStatus::Executed
        } else {
            JobStatus::Skipped
        };
        assert_eq!(record.status, expected, "{}", record.label);
        if stage == "pub_tac:campaign" {
            let summary = record.summary.as_ref().expect("campaign summary");
            assert_eq!(
                summary.campaign_resumed,
                Some(valid as u64),
                "the status table must report the checkpoint resume"
            );
        }
    }

    // Every sample-bearing artifact is byte-identical to the clean run.
    assert_eq!(
        fs::read(&log_path).expect("resumed log"),
        fs::read(store_a.stage_samples_path(campaign_digest)).expect("clean log"),
        "chunk logs must match byte-for-byte"
    );
    let fit_key = &resumed
        .records
        .iter()
        .find(|r| r.label.starts_with("pub_tac:fit/"))
        .expect("fit record")
        .key;
    assert_eq!(
        fs::read(store_b.sample_path(fit_key)).expect("resumed job log"),
        fs::read(store_a.sample_path(fit_key)).expect("clean job log"),
        "job sample logs must match byte-for-byte"
    );
    assert_eq!(
        fs::read_to_string(store_b.table2_path()).expect("resumed table2"),
        fs::read_to_string(store_a.table2_path()).expect("clean table2"),
        "the resumed sweep reproduces Table 2 exactly"
    );
    assert_eq!(resumed.rows, clean.rows);

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// A completion marker whose chunk log disappeared entirely (pruned
/// `stages/*.samples.slog`) is not a cache hit either: the campaign
/// re-simulates from the convergence boundary and regrows the log.
#[test]
fn pruned_chunk_log_regenerates_instead_of_reporting_cached() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("pruned-slog")
        .benchmarks(["bs"])
        .seeds([17])
        .analyses([AnalysisKind::PubTac]);
    let opts = RunOptions {
        threads: 2,
        force: false,
        checkpoint_interval: Some(512),
        ..RunOptions::default()
    };
    let dir = tmp_dir("pruned-slog");
    let store = ArtifactStore::open(&dir).expect("open store");
    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.failed, 0);

    let graph = expand(&spec, &registry).expect("expand");
    let campaign_digest = graph
        .jobs
        .iter()
        .enumerate()
        .find(|(_, j)| j.kind.stage() == Some(StageKind::Campaign))
        .and_then(|(i, _)| graph.digests[i])
        .expect("campaign digest");
    let before = fs::read(store.stage_samples_path(campaign_digest)).expect("log bytes");
    fs::remove_file(store.stage_samples_path(campaign_digest)).expect("prune log");

    let rerun = run_sweep(&spec, &registry, &store, &opts).expect("rerun");
    assert_eq!(rerun.failed, 0);
    let campaign = rerun
        .records
        .iter()
        .find(|r| r.label.starts_with("pub_tac:campaign/"))
        .expect("campaign record");
    assert_eq!(
        campaign.status,
        JobStatus::Executed,
        "a marker without its log must re-execute"
    );
    assert_eq!(
        campaign.summary.as_ref().and_then(|s| s.campaign_resumed),
        Some(0),
        "nothing to resume from: the log was gone"
    );
    assert_eq!(
        fs::read(store.stage_samples_path(campaign_digest)).expect("regrown log"),
        before,
        "the regrown log is byte-identical"
    );
    assert_eq!(rerun.rows, cold.rows);
    let _ = fs::remove_dir_all(&dir);
}
