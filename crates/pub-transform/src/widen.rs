//! Widening of path-dependent data accesses.
//!
//! See [`WidenPolicy`](crate::WidenPolicy) for the motivation. The pass has
//! two halves:
//!
//! 1. a **taint fixpoint** marking every variable whose value can depend on
//!    branch decisions: variables assigned inside a conditional branch, plus
//!    anything data-flow-reachable from them;
//! 2. a **widening rewrite** that prefixes every statement containing a
//!    data reference with a tainted index by a [`Stmt::Touch`] covering one
//!    element per cache line of each such array — so all paths touch the
//!    same line set, restoring the exchangeability that branch equalization
//!    relies on.
//!
//! Widening happens *before* branch equalization; the inserted touches are
//! ordinary statements that the equalizer then mirrors into sibling
//! branches like any other footprint.

use std::collections::HashSet;

use mbcr_ir::{ArrayDecl, ArrayId, Expr, Stmt, Var, ARRAY_ALIGN, ELEM_BYTES};

/// Elements per cache line (arrays are line-aligned).
const ELEMS_PER_LINE: u32 = (ARRAY_ALIGN / ELEM_BYTES) as u32;

/// Computes the set of path-dependent ("tainted") variables of a program
/// body.
///
/// Seed: every variable assigned inside an `if` branch (including loop
/// induction variables declared there). Propagation: any variable assigned
/// from an expression referencing a tainted variable, and any `for`
/// variable whose bounds reference one, until fixpoint.
#[must_use]
pub fn path_dependent_vars(stmts: &[Stmt]) -> HashSet<Var> {
    let mut tainted: HashSet<Var> = HashSet::new();
    seed(stmts, false, &mut tainted);
    // Propagate to a fixpoint; bounded by the variable count.
    loop {
        let before = tainted.len();
        propagate(stmts, &mut tainted);
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

fn seed(stmts: &[Stmt], in_branch: bool, tainted: &mut HashSet<Var>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, _) => {
                if in_branch {
                    tainted.insert(*v);
                }
            }
            Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                seed(then_branch, true, tainted);
                seed(else_branch, true, tainted);
            }
            Stmt::While { body, .. } => seed(body, in_branch, tainted),
            Stmt::For { var, body, .. } => {
                if in_branch {
                    tainted.insert(*var);
                }
                seed(body, in_branch, tainted);
            }
        }
    }
}

fn expr_uses_tainted(e: &Expr, tainted: &HashSet<Var>) -> bool {
    match e {
        Expr::Const(_) => false,
        Expr::Var(v) => tainted.contains(v),
        Expr::Load(_, idx) => expr_uses_tainted(idx, tainted),
        Expr::Un(_, e) => expr_uses_tainted(e, tainted),
        Expr::Bin(_, l, r) => expr_uses_tainted(l, tainted) || expr_uses_tainted(r, tainted),
    }
}

fn propagate(stmts: &[Stmt], tainted: &mut HashSet<Var>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                if expr_uses_tainted(e, tainted) {
                    tainted.insert(*v);
                }
            }
            Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                propagate(then_branch, tainted);
                propagate(else_branch, tainted);
            }
            Stmt::While { body, .. } => propagate(body, tainted),
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                if expr_uses_tainted(from, tainted) || expr_uses_tainted(to, tainted) {
                    tainted.insert(*var);
                }
                propagate(body, tainted);
            }
        }
    }
}

/// Collects the arrays accessed through tainted index expressions anywhere
/// in a statement's own expressions (conditions included; nested bodies are
/// handled by the recursive rewrite).
fn tainted_arrays_of_stmt(s: &Stmt, tainted: &HashSet<Var>) -> Vec<ArrayId> {
    let mut out: Vec<ArrayId> = Vec::new();
    let mut visit_expr = |e: &Expr| {
        e.for_each_load(&mut |array, index| {
            if expr_uses_tainted(index, tainted) && !out.contains(&array) {
                out.push(array);
            }
        });
    };
    match s {
        Stmt::Assign(_, e) => visit_expr(e),
        Stmt::Store {
            array,
            index,
            value,
        } => {
            visit_expr(index);
            visit_expr(value);
            if expr_uses_tainted(index, tainted) && !out.contains(array) {
                out.push(*array);
            }
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => visit_expr(cond),
        Stmt::For { from, to, .. } => {
            visit_expr(from);
            visit_expr(to);
        }
        Stmt::Touch { .. } | Stmt::Nop { .. } => {}
    }
    out
}

/// One touch covering every cache line of `decl` (one element per line).
fn full_array_touch(array: ArrayId, decl: &ArrayDecl) -> Stmt {
    let refs: Vec<(ArrayId, Expr)> = (0..decl.len)
        .step_by(ELEMS_PER_LINE as usize)
        .map(|k| (array, Expr::c(i64::from(k))))
        .collect();
    Stmt::Touch { refs, pad: 0 }
}

/// Rewrites a body, prefixing statements with tainted-index accesses by
/// full-array touches. Returns the new body and the number of touches
/// inserted.
#[must_use]
pub fn widen_body(
    stmts: &[Stmt],
    tainted: &HashSet<Var>,
    arrays: &[ArrayDecl],
) -> (Vec<Stmt>, usize) {
    let mut out = Vec::with_capacity(stmts.len());
    let mut inserted = 0usize;
    for s in stmts {
        for array in tainted_arrays_of_stmt(s, tainted) {
            out.push(full_array_touch(array, &arrays[array.0 as usize]));
            inserted += 1;
        }
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (t, nt) = widen_body(then_branch, tainted, arrays);
                let (e, ne) = widen_body(else_branch, tainted, arrays);
                inserted += nt + ne;
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: t,
                    else_branch: e,
                });
            }
            Stmt::While {
                cond,
                max_iter,
                body,
            } => {
                let (b, n) = widen_body(body, tainted, arrays);
                inserted += n;
                out.push(Stmt::While {
                    cond: cond.clone(),
                    max_iter: *max_iter,
                    body: b,
                });
            }
            Stmt::For {
                var,
                from,
                to,
                max_iter,
                body,
            } => {
                let (b, n) = widen_body(body, tainted, arrays);
                inserted += n;
                out.push(Stmt::For {
                    var: *var,
                    from: from.clone(),
                    to: to.clone(),
                    max_iter: *max_iter,
                    body: b,
                });
            }
            other => out.push(other.clone()),
        }
    }
    (out, inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::ProgramBuilder;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn vars_assigned_in_branches_are_tainted() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let body = vec![
            Stmt::Assign(x, c(1)), // top level: clean
            Stmt::if_(
                Expr::var(x).gt(c(0)),
                vec![Stmt::Assign(y, c(2))], // in branch: tainted
                vec![],
            ),
            Stmt::Assign(z, Expr::var(y).add(c(1))), // flows from tainted
        ];
        let tainted = path_dependent_vars(&body);
        assert!(!tainted.contains(&x));
        assert!(tainted.contains(&y));
        assert!(
            tainted.contains(&z),
            "taint must propagate through assignments"
        );
    }

    #[test]
    fn for_vars_with_clean_bounds_stay_clean() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let s = b.var("s");
        let a = b.array("a", 16);
        let body = vec![Stmt::for_(
            i,
            c(0),
            c(8),
            8,
            vec![Stmt::Assign(
                s,
                Expr::var(s).add(Expr::load(a, Expr::var(i))),
            )],
        )];
        let tainted = path_dependent_vars(&body);
        assert!(
            tainted.is_empty(),
            "single-path code has no taint: {tainted:?}"
        );
    }

    #[test]
    fn widening_covers_each_line_once() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 20); // 20 elements = 3 lines (8 per line)
        let m = b.var("m");
        let y = b.var("y");
        let body = vec![
            Stmt::if_(Expr::var(y).gt(c(0)), vec![Stmt::Assign(m, c(5))], vec![]),
            Stmt::Assign(y, Expr::load(a, Expr::var(m))), // tainted index
        ];
        let p = b.build().unwrap();
        let tainted = path_dependent_vars(&body);
        assert!(tainted.contains(&m));
        let (widened, inserted) = widen_body(&body, &tainted, p.arrays());
        assert_eq!(inserted, 1);
        // The touch precedes the load and covers indices 0, 8, 16.
        let Stmt::Touch { refs, .. } = &widened[1] else {
            panic!(
                "expected touch before the tainted access, got {:?}",
                widened[1]
            );
        };
        let idxs: Vec<i64> = refs
            .iter()
            .map(|(_, e)| match e {
                Expr::Const(v) => *v,
                other => panic!("constant index expected, got {other}"),
            })
            .collect();
        assert_eq!(idxs, vec![0, 8, 16]);
    }

    #[test]
    fn clean_indices_are_not_widened() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 16);
        let i = b.var("i");
        let s = b.var("s");
        let body = vec![Stmt::for_(
            i,
            c(0),
            c(8),
            8,
            vec![Stmt::Assign(
                s,
                Expr::var(s).add(Expr::load(a, Expr::var(i))),
            )],
        )];
        let p = b.build().unwrap();
        let tainted = path_dependent_vars(&body);
        let (widened, inserted) = widen_body(&body, &tainted, p.arrays());
        assert_eq!(inserted, 0);
        assert_eq!(widened.len(), body.len());
    }

    #[test]
    fn store_with_tainted_index_is_widened() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let j = b.var("j");
        let y = b.var("y");
        let body = vec![
            Stmt::if_(Expr::var(y).gt(c(0)), vec![Stmt::Assign(j, c(3))], vec![]),
            Stmt::store(a, Expr::var(j), c(1)),
        ];
        let p = b.build().unwrap();
        let tainted = path_dependent_vars(&body);
        let (_, inserted) = widen_body(&body, &tainted, p.arrays());
        assert_eq!(inserted, 1);
    }
}
