//! Static access signatures: the token sequences PUB equalizes.
//!
//! A statement's **token** is its architectural footprint: the ordered data
//! references it emits (array + index expression) plus its instruction
//! count. A branch's **signature** is the list of per-statement token runs,
//! with loops unrolled to their declared bounds — the paper's assumption
//! that analysis inputs trigger the highest loop bounds, made explicit.
//!
//! Two statements with equal tokens are architecturally exchangeable under
//! random placement (same data lines touched in the same order, same number
//! of sequential instruction fetches), even if they compute different
//! values. That is the equality PUB's merge uses.

use mbcr_ir::{ArrayId, Expr, Stmt};

/// One data reference: which array, and the index expression that selects
/// the element.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRef {
    /// Referenced array.
    pub array: ArrayId,
    /// Index expression (compared structurally).
    pub index: Expr,
}

/// The architectural footprint of one executed statement occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Ordered data references (loads in evaluation order; a store's target
    /// comes last, matching the interpreter's emission order).
    pub data: Vec<DataRef>,
    /// Number of instruction fetches.
    pub instrs: u32,
}

impl Token {
    /// Total data references.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data.len()
    }
}

/// The footprint of one whole statement (loops unrolled to `max_iter`,
/// conditionals assumed equalized — callers must transform innermost
/// constructs first).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StmtSig(pub Vec<Token>);

impl StmtSig {
    /// Total instruction count of the statement.
    #[must_use]
    pub fn instr_total(&self) -> u64 {
        self.0.iter().map(|t| u64::from(t.instrs)).sum()
    }

    /// Total data-reference count of the statement.
    #[must_use]
    pub fn data_total(&self) -> u64 {
        self.0.iter().map(|t| t.data.len() as u64).sum()
    }
}

fn expr_loads(e: &Expr, out: &mut Vec<DataRef>) {
    e.for_each_load(&mut |array, index| {
        out.push(DataRef {
            array,
            index: index.clone(),
        });
    });
}

/// Computes the footprint of a statement.
///
/// For conditionals the **then**-branch signature is used; this is only
/// correct once the conditional has been equalized (both branches share one
/// flattened token sequence), which the PUB transformation guarantees by
/// processing constructs innermost-first.
#[must_use]
pub fn stmt_sig(s: &Stmt) -> StmtSig {
    let mut tokens = Vec::new();
    push_stmt_tokens(s, &mut tokens);
    StmtSig(tokens)
}

/// Signature of a statement list (concatenated per-statement signatures).
#[must_use]
pub fn seq_sig(stmts: &[Stmt]) -> Vec<StmtSig> {
    stmts.iter().map(stmt_sig).collect()
}

fn push_stmt_tokens(s: &Stmt, out: &mut Vec<Token>) {
    match s {
        Stmt::Assign(_, e) => {
            let mut data = Vec::new();
            expr_loads(e, &mut data);
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let mut data = Vec::new();
            expr_loads(index, &mut data);
            expr_loads(value, &mut data);
            data.push(DataRef {
                array: *array,
                index: index.clone(),
            });
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
        }
        Stmt::Touch { refs, .. } => {
            let data = refs
                .iter()
                .map(|(array, index)| DataRef {
                    array: *array,
                    index: index.clone(),
                })
                .collect();
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
        }
        Stmt::Nop { count } => {
            out.push(Token {
                data: Vec::new(),
                instrs: *count,
            });
        }
        Stmt::If {
            cond, then_branch, ..
        } => {
            let mut data = Vec::new();
            expr_loads(cond, &mut data);
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
            // Assumes equalized branches: both flatten identically.
            for inner in then_branch {
                push_stmt_tokens(inner, out);
            }
        }
        Stmt::While {
            cond,
            max_iter,
            body,
        } => {
            let header = {
                let mut data = Vec::new();
                expr_loads(cond, &mut data);
                Token {
                    data,
                    instrs: s.own_instr_count(),
                }
            };
            out.push(header.clone());
            for _ in 0..*max_iter {
                for inner in body {
                    push_stmt_tokens(inner, out);
                }
                out.push(header.clone());
            }
        }
        Stmt::For {
            from,
            to,
            max_iter,
            body,
            ..
        } => {
            let init = {
                let mut data = Vec::new();
                expr_loads(from, &mut data);
                expr_loads(to, &mut data);
                Token {
                    data,
                    instrs: s.own_instr_count(),
                }
            };
            let iter = Token {
                data: Vec::new(),
                instrs: 2,
            };
            out.push(init);
            out.push(iter.clone());
            for _ in 0..*max_iter {
                for inner in body {
                    push_stmt_tokens(inner, out);
                }
                out.push(iter.clone());
            }
        }
    }
}

/// Materializes a signature as functionally-innocuous statements emitting
/// exactly the same footprint: one [`Stmt::Touch`] per data-carrying token,
/// one [`Stmt::Nop`] per instruction-only token.
#[must_use]
pub fn materialize(sig: &StmtSig) -> Vec<Stmt> {
    sig.0
        .iter()
        .map(|t| {
            if t.data.is_empty() {
                Stmt::Nop { count: t.instrs }
            } else {
                let refs: Vec<(ArrayId, Expr)> =
                    t.data.iter().map(|d| (d.array, d.index.clone())).collect();
                let pad = t.instrs.saturating_sub(refs.len() as u32);
                Stmt::Touch { refs, pad }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{ProgramBuilder, Var};

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn assign_token_orders_loads() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let d = b.array("d", 4);
        let x = b.var("x");
        // x = a[d[0]] + a[1]: loads d[0], a[d[0]], a[1]; 4 instrs.
        let s = Stmt::Assign(
            x,
            Expr::load(a, Expr::load(d, c(0))).add(Expr::load(a, c(1))),
        );
        let sig = stmt_sig(&s);
        assert_eq!(sig.0.len(), 1);
        let tok = &sig.0[0];
        // a[d[0]] = 5, a[1] = 3, add = 1, move = 1.
        assert_eq!(tok.instrs, 10);
        let arrays: Vec<ArrayId> = tok.data.iter().map(|r| r.array).collect();
        assert_eq!(arrays, vec![d, a, a]);
    }

    #[test]
    fn store_target_comes_last() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let _ = b.var("x");
        let s = Stmt::store(a, c(0), Expr::load(a, c(1)));
        let sig = stmt_sig(&s);
        let tok = &sig.0[0];
        assert_eq!(tok.data.len(), 2);
        assert_eq!(tok.data[1].index, c(0), "store target last");
    }

    #[test]
    fn while_unrolls_to_bound() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        let s = Stmt::while_(
            Expr::var(x).lt(c(3)),
            3,
            vec![Stmt::Assign(x, Expr::load(a, c(0)))],
        );
        let sig = stmt_sig(&s);
        // header + 3 * (body + header) = 7 tokens.
        assert_eq!(sig.0.len(), 7);
        // header = cmp(2)+branch(1) = 3; body assign = load(3)+move(1) = 4.
        assert_eq!(sig.instr_total(), 4 * 3 + 3 * 4);
        assert_eq!(sig.data_total(), 3);
    }

    #[test]
    fn for_unrolls_with_init_and_iter() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let s = Stmt::for_(i, c(0), c(2), 2, vec![Stmt::Nop { count: 5 }]);
        let sig = stmt_sig(&s);
        // init, iter, (body, iter) * 2 = 6 tokens.
        assert_eq!(sig.0.len(), 6);
        // init = li+li+set = 3; iter = inc+cmp = 2; body = 5-instr nop.
        assert_eq!(sig.instr_total(), 3 + 2 + 2 * (5 + 2));
    }

    #[test]
    fn materialize_roundtrips_footprint() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        let stmts = vec![
            Stmt::Assign(x, Expr::load(a, Expr::var(Var(0)))),
            Stmt::Nop { count: 2 },
        ];
        let sigs = seq_sig(&stmts);
        for (orig, sig) in stmts.iter().zip(&sigs) {
            let mat = materialize(sig);
            let mat_sig: Vec<StmtSig> = seq_sig(&mat);
            let flat: Vec<Token> = mat_sig.into_iter().flat_map(|s| s.0).collect();
            assert_eq!(&flat, &sig.0, "materialized footprint differs for {orig:?}");
            assert!(mat.iter().all(Stmt::is_innocuous));
        }
    }

    #[test]
    fn equal_tokens_from_different_statements() {
        // x = a[i] (assign, 3 instrs) vs touch a[i] with 2 pads: same token.
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        let i = b.var("i");
        let assign = Stmt::Assign(x, Expr::load(a, Expr::var(i)));
        let touch = Stmt::Touch {
            refs: vec![(a, Expr::var(i))],
            pad: 2,
        };
        assert_eq!(stmt_sig(&assign), stmt_sig(&touch));
    }
}
