//! Jobs: the unit of scheduling, keying and caching.
//!
//! A [`JobSpec`] is one analysis of one benchmark under one geometry and
//! seed. Its [`key`](JobSpec::key) is a content hash over everything that
//! affects the result — benchmark, input, kind, and the full
//! [`AnalysisConfig` digest](mbcr::AnalysisConfig::digest) — so a cached
//! artifact is reusable exactly when a re-run would reproduce it
//! bit-for-bit, and any knob change invalidates it.

use mbcr::stage::StageKind;
use mbcr_json::{fnv1a, impl_serialize_struct, Json, FNV_OFFSET};
use mbcr_rng::derive_seed;

use crate::{AnalysisKind, GeometrySpec};

/// Schema tag baked into job keys and artifacts; bump on layout changes to
/// invalidate old artifact stores wholesale.
pub const SCHEMA: &str = "mbcr-engine/3";

/// What one job computes. Since the stage-graph redesign the engine
/// schedules at *stage* granularity: one node per pipeline stage, plus the
/// cross-input Corollary 2 combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// One stage of one analysis.
    Stage {
        /// Which analysis the stage belongs to ([`AnalysisKind::Original`]
        /// or [`AnalysisKind::PubTac`]).
        analysis: AnalysisKind,
        /// The pipeline stage.
        stage: StageKind,
        /// Input-vector name (`None` for input-independent stages — the
        /// PUB transform and every original-pipeline stage, which analyses
        /// the benchmark default input).
        input: Option<String>,
    },
    /// Corollary 2 min-combination over the cell's per-input fit results.
    MultipathCombine,
}

impl JobKind {
    /// A stage node of the pub_tac pipeline for one input vector.
    #[must_use]
    pub fn pub_tac_stage(stage: StageKind, input: impl Into<String>) -> Self {
        JobKind::Stage {
            analysis: AnalysisKind::PubTac,
            stage,
            input: Some(input.into()),
        }
    }

    /// A stage node of the original-program pipeline.
    #[must_use]
    pub fn original_stage(stage: StageKind) -> Self {
        JobKind::Stage {
            analysis: AnalysisKind::Original,
            stage,
            input: None,
        }
    }

    /// Stable spelling for keys, manifests and reports
    /// (`"pub_tac:campaign"`, `"original:converge"`, `"multipath"`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            JobKind::Stage {
                analysis, stage, ..
            } => format!("{}:{}", analysis.name(), stage.name()),
            JobKind::MultipathCombine => AnalysisKind::Multipath.name().to_string(),
        }
    }

    /// The kind recorded in result summaries: terminal fit stages report
    /// as their analysis (their summary *is* the complete analysis result,
    /// which the Table 2 aggregation consumes), everything else as its
    /// stage-qualified name.
    #[must_use]
    pub fn summary_kind(&self) -> String {
        match self {
            JobKind::Stage {
                analysis,
                stage: StageKind::Fit,
                ..
            } => analysis.name().to_string(),
            other => other.name(),
        }
    }

    /// The logical analysis a stage node belongs to.
    #[must_use]
    pub fn analysis(&self) -> AnalysisKind {
        match self {
            JobKind::Stage { analysis, .. } => *analysis,
            JobKind::MultipathCombine => AnalysisKind::Multipath,
        }
    }

    /// The pipeline stage, for stage nodes.
    #[must_use]
    pub fn stage(&self) -> Option<StageKind> {
        match self {
            JobKind::Stage { stage, .. } => Some(*stage),
            JobKind::MultipathCombine => None,
        }
    }

    /// The input-vector name, when the kind has one.
    #[must_use]
    pub fn input(&self) -> Option<&str> {
        match self {
            JobKind::Stage { input, .. } => input.as_deref(),
            JobKind::MultipathCombine => None,
        }
    }
}

/// One schedulable analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name (resolved against the registry at execution time).
    pub benchmark: String,
    /// Cache geometry of this cell.
    pub geometry: GeometrySpec,
    /// The sweep's master seed for this cell.
    pub master_seed: u64,
    /// What to compute.
    pub kind: JobKind,
}

impl JobSpec {
    /// Human-readable identity, unique within a sweep
    /// (`"pub_tac:campaign/bs:v3/4096B-2w-32B/s42"`).
    #[must_use]
    pub fn label(&self) -> String {
        let input = self
            .kind
            .input()
            .map(|i| format!(":{i}"))
            .unwrap_or_default();
        format!(
            "{}/{}{}/{}/s{}",
            self.kind.name(),
            self.benchmark,
            input,
            self.geometry.label(),
            self.master_seed
        )
    }

    /// The job's campaign seed: derived from the master seed and the job's
    /// *analysis* identity with [`mbcr_rng::derive_seed`], so every logical
    /// analysis draws a decorrelated, reproducible seed stream no matter
    /// how the sweep is scheduled or partitioned. Every stage node of one
    /// analysis shares this seed — that is what makes their stage digests
    /// line up into one resumable pipeline.
    #[must_use]
    pub fn job_seed(&self) -> u64 {
        let identity = format!(
            "{}/{}{}{}",
            self.kind.analysis().name(),
            self.benchmark,
            self.kind
                .input()
                .map(|i| format!(":{i}"))
                .unwrap_or_default(),
            self.geometry.label(),
        );
        derive_seed(self.master_seed, fnv1a(FNV_OFFSET, &identity))
    }

    /// Content-hash artifact key: 32 hex chars over the schema tag, the
    /// job label and `config_digest`. Two jobs share a key exactly when
    /// they would produce identical artifacts.
    #[must_use]
    pub fn key(&self, config_digest: u64) -> String {
        let canonical = format!("{SCHEMA}|{}|{config_digest:016x}", self.label());
        let lo = fnv1a(FNV_OFFSET, &canonical);
        let hi = fnv1a(0x6C62_272E_07BB_0142, &canonical);
        format!("{hi:016x}{lo:016x}")
    }

    /// The job's wire form — everything a remote executor needs to
    /// reconstruct the `JobSpec` (and therefore its
    /// [`job_seed`](JobSpec::job_seed) and digests) exactly.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("benchmark".to_string(), self.benchmark.as_str().into()),
            (
                "geometry".to_string(),
                mbcr_json::Serialize::to_json(&self.geometry),
            ),
            ("master_seed".to_string(), Json::UInt(self.master_seed)),
            ("analysis".to_string(), self.kind.analysis().name().into()),
        ];
        if let JobKind::Stage { stage, input, .. } = &self.kind {
            members.push(("stage".to_string(), stage.name().into()));
            members.push(("input".to_string(), mbcr_json::Serialize::to_json(input)));
        }
        Json::Obj(members)
    }

    /// Inverse of [`JobSpec::to_json`]. `None` on missing or malformed
    /// fields — the receiver treats such a frame as a protocol error.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        let benchmark = v.get("benchmark")?.as_str()?.to_string();
        let geometry = crate::GeometrySpec::from_json(v.get("geometry")?).ok()?;
        let master_seed = v.get("master_seed")?.as_u64()?;
        let analysis = crate::AnalysisKind::parse(v.get("analysis")?.as_str()?).ok()?;
        let kind = match analysis {
            crate::AnalysisKind::Multipath => JobKind::MultipathCombine,
            analysis => JobKind::Stage {
                analysis,
                stage: StageKind::parse(v.get("stage")?.as_str()?)?,
                input: match v.get("input") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(other.as_str()?.to_string()),
                },
            },
        };
        Some(Self {
            benchmark,
            geometry,
            master_seed,
            kind,
        })
    }
}

/// The DAG a [`crate::SweepSpec`] expands into: `deps[i]` lists the job
/// indices that must complete before job `i` may run (a campaign node
/// depends on its converge and TAC nodes; a multipath combine node on its
/// cell's per-input fit nodes).
///
/// The graph is **content-addressed and deduplicated**: `digests[i]` holds
/// a stage node's content digest (see [`mbcr::stage::StageDigests`]), and
/// two would-be nodes with the same digest collapse into one — seed-free
/// stages (the PUB transform, the path trace) are shared across every seed
/// and geometry of a sweep.
#[derive(Debug, Clone, Default)]
pub struct JobGraph {
    /// The jobs, in deterministic expansion order.
    pub jobs: Vec<JobSpec>,
    /// Dependency edges, parallel to `jobs`.
    pub deps: Vec<Vec<usize>>,
    /// Per-job stage digest (`None` for combine nodes, whose identity is
    /// the hash of their dependencies' keys).
    pub digests: Vec<Option<u64>>,
}

impl JobGraph {
    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// The flat, numeric summary of one finished job — what the manifest, the
/// Table 2 aggregation and downstream combine jobs consume without
/// re-reading full artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Artifact key.
    pub key: String,
    /// Job kind name (the analysis name for terminal fit/combine nodes,
    /// which carry complete results; stage-qualified otherwise).
    pub kind: String,
    /// The pipeline stage, for stage nodes.
    pub stage: Option<String>,
    /// Benchmark name.
    pub benchmark: String,
    /// Input-vector name, when the kind has one.
    pub input: Option<String>,
    /// Geometry label.
    pub geometry: String,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// The derived per-job campaign seed.
    pub job_seed: u64,
    /// `R_orig` (original jobs).
    pub r_orig: Option<u64>,
    /// `R_pub` (pub_tac jobs).
    pub r_pub: Option<u64>,
    /// `R_tac` (pub_tac jobs).
    pub r_tac: Option<u64>,
    /// `R_pub+tac` (pub_tac jobs).
    pub r_pub_tac: Option<u64>,
    /// Executed campaign length (pub_tac jobs).
    pub campaign_runs: Option<u64>,
    /// Whether the campaign hit the configured cap.
    pub campaign_capped: Option<bool>,
    /// Leading campaign runs restored from a checkpoint log instead of
    /// simulated (campaign stage nodes that executed; `0` when the
    /// campaign started from the convergence boundary).
    pub campaign_resumed: Option<u64>,
    /// Whether MBPTA convergence was reached (original jobs).
    pub converged: Option<bool>,
    /// Headline pWCET at the spec's exceedance probability.
    pub pwcet: f64,
    /// PUB-only pWCET (pub_tac jobs — the paper's "PUB" column).
    pub pwcet_pub: Option<f64>,
    /// Input achieving the combined minimum (multipath jobs).
    pub best_input: Option<String>,
    /// Replayed trace length.
    pub trace_len: Option<u64>,
}

impl_serialize_struct!(JobSummary {
    key,
    kind,
    stage,
    benchmark,
    input,
    geometry,
    master_seed,
    job_seed,
    r_orig,
    r_pub,
    r_tac,
    r_pub_tac,
    campaign_runs,
    campaign_capped,
    campaign_resumed,
    converged,
    pwcet,
    pwcet_pub,
    best_input,
    trace_len,
});

impl JobSummary {
    /// An all-`None` summary for `kind` (callers fill in what they have).
    #[must_use]
    pub fn empty(key: String, job: &JobSpec) -> Self {
        Self {
            key,
            kind: job.kind.summary_kind(),
            stage: job.kind.stage().map(|s| s.name().to_string()),
            benchmark: job.benchmark.clone(),
            input: job.kind.input().map(str::to_string),
            geometry: job.geometry.label(),
            master_seed: job.master_seed,
            job_seed: job.job_seed(),
            r_orig: None,
            r_pub: None,
            r_tac: None,
            r_pub_tac: None,
            campaign_runs: None,
            campaign_capped: None,
            campaign_resumed: None,
            converged: None,
            pwcet: f64::NAN,
            pwcet_pub: None,
            best_input: None,
            trace_len: None,
        }
    }

    /// Reads a summary back from its JSON form.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        let str_field = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_string);
        let opt_u64 = |k: &str| v.get(k).and_then(Json::as_u64);
        Some(Self {
            key: str_field("key")?,
            kind: str_field("kind")?,
            stage: str_field("stage"),
            benchmark: str_field("benchmark")?,
            input: str_field("input"),
            geometry: str_field("geometry")?,
            master_seed: opt_u64("master_seed")?,
            job_seed: opt_u64("job_seed")?,
            r_orig: opt_u64("r_orig"),
            r_pub: opt_u64("r_pub"),
            r_tac: opt_u64("r_tac"),
            r_pub_tac: opt_u64("r_pub_tac"),
            campaign_runs: opt_u64("campaign_runs"),
            campaign_capped: v.get("campaign_capped").and_then(Json::as_bool),
            campaign_resumed: opt_u64("campaign_resumed"),
            converged: v.get("converged").and_then(Json::as_bool),
            pwcet: v.get("pwcet").and_then(Json::as_f64).unwrap_or(f64::NAN),
            pwcet_pub: v.get("pwcet_pub").and_then(Json::as_f64),
            best_input: str_field("best_input"),
            trace_len: opt_u64("trace_len"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kind: JobKind) -> JobSpec {
        JobSpec {
            benchmark: "bs".into(),
            geometry: GeometrySpec::paper_l1(),
            master_seed: 42,
            kind,
        }
    }

    #[test]
    fn labels_are_unique_per_dimension() {
        let a = job(JobKind::pub_tac_stage(StageKind::Campaign, "v1"));
        let mut b = a.clone();
        b.benchmark = "crc".into();
        let mut c = a.clone();
        c.geometry = GeometrySpec {
            size_bytes: 2048,
            ways: 2,
            line_size: 32,
        };
        let mut d = a.clone();
        d.kind = JobKind::pub_tac_stage(StageKind::Campaign, "v3");
        let mut e = a.clone();
        e.kind = JobKind::pub_tac_stage(StageKind::Fit, "v1");
        let labels: std::collections::HashSet<String> =
            [&a, &b, &c, &d, &e].iter().map(|j| j.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn job_seed_is_deterministic_and_identity_sensitive() {
        let a = job(JobKind::original_stage(StageKind::Converge));
        assert_eq!(a.job_seed(), a.job_seed());
        let mut other_bench = a.clone();
        other_bench.benchmark = "fir".into();
        assert_ne!(a.job_seed(), other_bench.job_seed());
        let mut other_seed = a.clone();
        other_seed.master_seed = 43;
        assert_ne!(a.job_seed(), other_seed.job_seed());
    }

    #[test]
    fn stage_nodes_of_one_analysis_share_the_seed() {
        // Every stage of one logical analysis must see the same campaign
        // seed — that is what lines their digests up into one pipeline.
        let converge = job(JobKind::pub_tac_stage(StageKind::Converge, "v1"));
        let campaign = job(JobKind::pub_tac_stage(StageKind::Campaign, "v1"));
        assert_eq!(converge.job_seed(), campaign.job_seed());
        // ...but a different input is a different analysis.
        let other = job(JobKind::pub_tac_stage(StageKind::Converge, "v3"));
        assert_ne!(converge.job_seed(), other.job_seed());
    }

    #[test]
    fn key_tracks_config_digest() {
        let a = job(JobKind::original_stage(StageKind::Fit));
        assert_eq!(a.key(1), a.key(1));
        assert_ne!(a.key(1), a.key(2));
        assert_eq!(a.key(7).len(), 32);
        assert!(a.key(7).bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn summary_kind_reports_fit_nodes_as_their_analysis() {
        assert_eq!(
            JobKind::pub_tac_stage(StageKind::Fit, "v1").summary_kind(),
            "pub_tac"
        );
        assert_eq!(
            JobKind::original_stage(StageKind::Fit).summary_kind(),
            "original"
        );
        assert_eq!(
            JobKind::pub_tac_stage(StageKind::Campaign, "v1").summary_kind(),
            "pub_tac:campaign"
        );
        assert_eq!(JobKind::MultipathCombine.summary_kind(), "multipath");
    }

    #[test]
    fn summary_json_roundtrip() {
        let j = job(JobKind::pub_tac_stage(StageKind::Fit, "v1"));
        let mut s = JobSummary::empty(j.key(9), &j);
        s.r_pub = Some(300);
        s.r_tac = Some(17_000);
        s.pwcet = 12_345.5;
        s.campaign_capped = Some(true);
        let text = mbcr_json::Serialize::to_json(&s).to_compact();
        let back = JobSummary::from_json(&mbcr_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nan_pwcet_survives_roundtrip_as_nan() {
        let j = job(JobKind::original_stage(StageKind::Fit));
        let s = JobSummary::empty(j.key(1), &j);
        let text = mbcr_json::Serialize::to_json(&s).to_compact();
        let back = JobSummary::from_json(&mbcr_json::parse(&text).unwrap()).unwrap();
        assert!(back.pwcet.is_nan());
    }
}
