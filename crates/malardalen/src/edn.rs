//! `edn` — EDN signal-processing kernels: vector multiply-accumulate and an
//! inner-product FIR (Mälardalen `edn.c`, scaled to 64-element vectors).
//!
//! Single path: fixed loop bounds, no data-dependent branches. All
//! execution-time variability on the randomized platform comes from cache
//! layout.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Vector length (scaled down from 100/150).
pub const N: u32 = 64;
/// FIR taps in the `fir_no_eq` kernel.
pub const TAPS: u32 = 8;

/// Builds the `edn` program: `vec_mpy1`, `mac` and a small `fir` pass.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("edn");
    let a = b.array("a", N);
    let bb = b.array("b", N);
    let y = b.array("y", N);
    let i = b.var("i");
    let j = b.var("j");
    let sum = b.var("sum");
    let acc = b.var("acc");

    let n = i64::from(N);
    // vec_mpy1: a[i] += (b[i] * 18) >> 15
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(n),
        N,
        vec![Stmt::store(
            a,
            Expr::var(i),
            Expr::load(a, Expr::var(i)).add(
                Expr::load(bb, Expr::var(i))
                    .mul(Expr::c(18))
                    .shr(Expr::c(15)),
            ),
        )],
    ));
    // mac: sum += a[i] * b[i]
    b.push(Stmt::Assign(sum, Expr::c(0)));
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(n),
        N,
        vec![Stmt::Assign(
            sum,
            Expr::var(sum).add(Expr::load(a, Expr::var(i)).mul(Expr::load(bb, Expr::var(i)))),
        )],
    ));
    // fir_no_eq: y[i] = sum_j a[i+j] * b[j]
    let outs = i64::from(N - TAPS);
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(outs),
        N - TAPS,
        vec![
            Stmt::Assign(acc, Expr::c(0)),
            Stmt::for_(
                j,
                Expr::c(0),
                Expr::c(i64::from(TAPS)),
                TAPS,
                vec![Stmt::Assign(
                    acc,
                    Expr::var(acc).add(
                        Expr::load(a, Expr::var(i).add(Expr::var(j)))
                            .mul(Expr::load(bb, Expr::var(j))),
                    ),
                )],
            ),
            Stmt::store(y, Expr::var(i), Expr::var(acc).shr(Expr::c(3))),
        ],
    ));
    b.push(Stmt::store(
        y,
        Expr::c(i64::from(N) - 1),
        Expr::var(sum).and(Expr::c(0x7FFF_FFFF)),
    ));
    b.build().expect("edn is well-formed")
}

/// Default input: fixed pseudo-signal contents.
#[must_use]
pub fn default_input() -> Inputs {
    let p = program();
    let a = p.array_by_name("a").expect("a");
    let bb = p.array_by_name("b").expect("b");
    Inputs::new()
        .with_array(a, (0..N).map(|k| i64::from(k % 23) - 11).collect())
        .with_array(bb, (0..N).map(|k| i64::from(k * 5 % 31) - 15).collect())
}

/// Single-path: one canonical vector.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    vec![NamedInput {
        name: "default".into(),
        inputs: default_input(),
    }]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "edn",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn mac_matches_reference() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        // Reference on the same data.
        let mut a: Vec<i64> = (0..N).map(|k| i64::from(k % 23) - 11).collect();
        let b: Vec<i64> = (0..N).map(|k| i64::from(k * 5 % 31) - 15).collect();
        for k in 0..N as usize {
            a[k] += (b[k] * 18) >> 15;
        }
        let sum: i64 = (0..N as usize).map(|k| a[k] * b[k]).sum();
        assert_eq!(run.state.var(p.var_by_name("sum").unwrap()), sum);
    }

    #[test]
    fn is_single_path() {
        let p = program();
        // Two different data sets must traverse the same path.
        let alt = {
            let a = p.array_by_name("a").unwrap();
            let bb = p.array_by_name("b").unwrap();
            Inputs::new()
                .with_array(a, vec![1; N as usize])
                .with_array(bb, vec![-2; N as usize])
        };
        let r1 = execute(&p, &default_input()).unwrap();
        let r2 = execute(&p, &alt).unwrap();
        assert_eq!(r1.path.path_id(), r2.path.path_id());
        assert_eq!(r1.trace.len(), r2.trace.len());
    }
}
