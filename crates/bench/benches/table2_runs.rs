//! Paper Table 2 — runs (in thousands) for plain MBPTA on the original
//! program (`R_orig`), MBPTA on the pubbed program (`R_pub`) and PUB+TAC
//! (`R_p+t`), across the eleven Mälardalen models.
//!
//! Paper values (thousands):
//!
//! ```text
//!            R_orig  R_pub  R_p+t
//! bs            1      1     40
//! cnt          10      2     70
//! fir           6      9    600
//! janne         3      1    200
//! crc           3      5     10
//! edn           1      1     70
//! insertsort   40     40     80
//! jfdc          2      2     50
//! matmult     200    200    200
//! fdct          8      8      8
//! ns            3      3    500
//! ```
//!
//! The shape to reproduce: `R_p+t ≥ R_pub` everywhere, with large jumps
//! where conflict groups exceed a set's capacity; absolute values differ
//! (different cache contents, scaled workloads).

use mbcr::{analyze_original, analyze_pub_tac};
use mbcr_bench::{banner, harness_config, in_thousands, write_csv, Table};

const PAPER: [(&str, u32, u32, u32); 11] = [
    ("bs", 1, 1, 40),
    ("cnt", 10, 2, 70),
    ("fir", 6, 9, 600),
    ("janne", 3, 1, 200),
    ("crc", 3, 5, 10),
    ("edn", 1, 1, 70),
    ("insertsort", 40, 40, 80),
    ("jfdc", 2, 2, 50),
    ("matmult", 200, 200, 200),
    ("fdct", 8, 8, 8),
    ("ns", 3, 3, 500),
];

fn main() {
    banner("Table 2: runs (thousands) for MBPTA, PUB and PUB+TAC");
    let cfg = harness_config(0x7AB2);

    let mut t = Table::new(&[
        "benchmark",
        "R_orig(k)",
        "R_pub(k)",
        "R_p+t(k)",
        "capped",
        "paper (orig/pub/p+t)",
    ]);
    let mut rows = Vec::new();
    let mut tac_binds = 0usize;

    for b in mbcr_malardalen::suite() {
        let orig = analyze_original(&b.program, &b.default_input, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let pt = analyze_pub_tac(&b.program, &b.default_input, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let paper = PAPER.iter().find(|p| p.0 == b.name).expect("paper row");
        t.row(&[
            b.name,
            &in_thousands(orig.r_orig as u64),
            &in_thousands(pt.r_pub as u64),
            &in_thousands(pt.r_pub_tac),
            if pt.campaign_capped { "*" } else { "" },
            &format!("{}/{}/{}", paper.1, paper.2, paper.3),
        ]);
        rows.push(format!(
            "{},{},{},{},{}",
            b.name, orig.r_orig, pt.r_pub, pt.r_pub_tac, pt.campaign_runs
        ));
        if pt.r_pub_tac > pt.r_pub as u64 {
            tac_binds += 1;
        }
        assert!(
            pt.r_pub_tac >= pt.r_pub as u64,
            "{}: R_p+t must dominate R_pub",
            b.name
        );
    }
    t.print();
    println!("\n(* campaign truncated at max_campaign_runs; the raw TAC requirement is reported)");
    println!(
        "TAC raised the requirement beyond MBPTA convergence for {tac_binds}/11 benchmarks \
         (paper: 8/11)."
    );
    assert!(tac_binds >= 3, "TAC should bind for several benchmarks");

    let path = write_csv(
        "table2_runs.csv",
        "benchmark,r_orig,r_pub,r_pub_tac,campaign_runs",
        &rows,
    );
    println!("rows written to {}", path.display());
}
