//! # mbcr-repro
//!
//! Reproduction package for *"Measurement-Based Cache Representativeness on
//! Multipath Programs"* (Milutinovic, Abella, Mezzetti, Cazorla — DAC 2018).
//!
//! This crate is a thin facade over the [`mbcr`] core library and the
//! [`mbcr_malardalen`] benchmark models; see the workspace `README.md` for the
//! architecture overview and `DESIGN.md` for the per-experiment index.
//!
//! ```
//! // The full pipeline of the paper (Figure 3) in a few lines:
//! use mbcr_repro::prelude::*;
//!
//! let program = mbcr_malardalen::bs::program();
//! let input = mbcr_malardalen::bs::default_input();
//! let cfg = AnalysisConfig::builder().seed(42).quick().build();
//! let analysis = analyze_pub_tac(&program, &input, &cfg).unwrap();
//! assert!(analysis.pwcet_pub_tac > 0.0);
//! ```

pub use mbcr;
pub use mbcr_engine;
pub use mbcr_malardalen;
pub use mbcr_shard;

/// Convenience re-exports covering the whole analysis pipeline and the
/// batch engine.
pub mod prelude {
    pub use mbcr::prelude::*;
    pub use mbcr_engine::{
        run_sweep, AnalysisKind, ArtifactStore, GeometrySpec, InputSelection, Registry, RunOptions,
        SweepSpec,
    };
}
