//! End-to-end guarantees of the HTTP/JSON + SSE gateway (`mbcr serve
//! --http`), driven through the real `mbcr` binary and raw sockets:
//!
//! * sweeps submitted over `POST /v1/sweeps` produce artifacts
//!   byte-identical to sequential single-process runs of the same specs
//!   — including across a SIGKILL of the daemon mid-campaign and a
//!   restart, with the queue resumed and progress streamed to
//!   completion over the gateway's SSE endpoint;
//! * adversarial HTTP traffic — torn requests, header floods, oversized
//!   bodies, malformed JSON, unknown routes — gets a 4xx (or a dropped
//!   connection) and never disturbs the daemon;
//! * SSE followers that disconnect mid-stream or never read at all
//!   stall only their own handler, never the claim loop: the storm
//!   completes regardless;
//! * `status`/`report` exit nonzero when the targeted sweep was
//!   canceled, and `submit --spec -` reads the spec from stdin.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mbcr_engine::{AnalysisKind, SweepSpec};
use mbcr_json::Json;

const MBCR: &str = env!("CARGO_BIN_EXE_mbcr");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-gateway-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_ok(args: &[&str]) -> String {
    let output = Command::new(MBCR).args(args).output().expect("spawn mbcr");
    assert!(
        output.status.success(),
        "mbcr {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Every file under a directory, relative path → bytes, sorted. `*.tmpN`
/// strays a `kill -9`'d writer left mid-`write_atomic` are skipped — the
/// store contract says scans ignore them; they are not artifacts.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir").flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, root, out);
            } else if path
                .extension()
                .is_some_and(|e| e.to_string_lossy().starts_with("tmp"))
            {
                continue;
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_dirs_identical(a: &Path, b: &Path, what: &str) {
    let snap_a = snapshot(a);
    let snap_b = snapshot(b);
    let names = |snap: &[(String, Vec<u8>)]| -> Vec<String> {
        snap.iter().map(|(n, _)| n.clone()).collect()
    };
    assert_eq!(names(&snap_a), names(&snap_b), "{what}: file sets differ");
    for ((name_a, bytes_a), (_, bytes_b)) in snap_a.iter().zip(&snap_b) {
        assert_eq!(
            bytes_a,
            bytes_b,
            "{what}: {name_a} differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

/// Strips the `campaign_resumed` lines a resumed/adopted campaign is
/// allowed (and required) to differ in.
fn normalize_manifest(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("\"campaign_resumed\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A daemon with both planes up: `addr` speaks the binary protocol,
/// `http` the gateway.
struct Daemon {
    child: Child,
    addr: String,
    http: String,
}

impl Daemon {
    fn spawn(out: &Path) -> Self {
        let mut child = Command::new(MBCR)
            .args(["serve", "--listen", "127.0.0.1:0", "--http", "127.0.0.1:0"])
            .args(["--out", &out.display().to_string()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let (mut addr, mut http) = (None, None);
        while addr.is_none() || http.is_none() {
            let line = lines
                .next()
                .expect("daemon exited before announcing its addresses")
                .expect("read daemon stdout");
            if let Some(a) = line.strip_prefix("service listening on ") {
                addr = Some(a.to_string());
            } else if let Some(h) = line.strip_prefix("http listening on ") {
                http = Some(h.to_string());
            }
        }
        std::thread::spawn(move || for _ in lines {});
        Self {
            child,
            addr: addr.expect("service address"),
            http: http.expect("http address"),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(addr: &str) -> Child {
    Command::new(MBCR)
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

/// The overlapping storm specs, as a [`SweepSpec`] (for HTTP submission)
/// — field for field what the CLI reference args below produce.
fn storm_spec(name: &str, seeds: &[u64]) -> SweepSpec {
    let mut spec = SweepSpec::new(name);
    spec.benchmarks = vec!["bs".to_string()];
    spec.seeds = seeds.to_vec();
    spec.analyses = vec![AnalysisKind::PubTac];
    spec.max_campaign_runs = Some(600);
    spec
}

/// The same specs as `mbcr sweep` arguments, for the sequential
/// single-process reference runs.
fn storm_args(name: &str, seeds: &str) -> Vec<String> {
    [
        "--name",
        name,
        "--benchmarks",
        "bs",
        "--seeds",
        seeds,
        "--analyses",
        "pub_tac",
        "--max-campaign-runs",
        "600",
        "--checkpoint-interval",
        "200",
    ]
    .into_iter()
    .map(str::to_string)
    .collect()
}

/// Submits a spec over `POST /v1/sweeps`, returning the sweep id.
fn http_submit(http: &str, spec: &SweepSpec) -> String {
    let body = Json::Obj(vec![
        ("spec".to_string(), spec.to_json()),
        ("checkpoint_interval".to_string(), Json::UInt(200)),
    ]);
    let response =
        mbcr_gateway::request(http, "POST", "/v1/sweeps", Some(&body)).expect("POST /v1/sweeps");
    assert_eq!(
        response.status,
        201,
        "submit must be created: {}",
        response.error_text()
    );
    response
        .json()
        .as_ref()
        .and_then(|doc| doc.get("sweep"))
        .and_then(Json::as_str)
        .expect("submit response carries the sweep id")
        .to_string()
}

/// Total bytes of campaign chunk logs currently in a store.
fn slog_bytes(out: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(out.join("stages")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".samples.slog"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Polls `GET /v1/sweeps` until every id is terminal (panics after the
/// deadline).
fn poll_until_terminal(http: &str, ids: &[String], deadline: Duration) {
    let end = Instant::now() + deadline;
    loop {
        let response =
            mbcr_gateway::request(http, "GET", "/v1/sweeps", None).expect("GET /v1/sweeps");
        assert_eq!(response.status, 200);
        let doc = response.json().expect("status body is JSON");
        let rows = doc
            .get("sweeps")
            .and_then(Json::as_array)
            .expect("status body lists sweeps");
        let terminal = |id: &String| {
            rows.iter().any(|row| {
                row.get("id").and_then(Json::as_str) == Some(id.as_str())
                    && matches!(
                        row.get("state").and_then(Json::as_str),
                        Some("done" | "canceled")
                    )
            })
        };
        if ids.iter().all(terminal) {
            return;
        }
        assert!(
            Instant::now() < end,
            "sweeps {ids:?} never reached a terminal state"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn http_submitted_sweeps_survive_sigkill_and_match_sequential_runs_byte_for_byte() {
    // Sequential single-process reference of the same two specs.
    let reference = tmp_dir("http-kill-ref");
    let mut captured = Vec::new();
    for (name, seeds) in [("alpha", "11"), ("beta", "11,12")] {
        let args = storm_args(name, seeds);
        let mut argv: Vec<&str> = vec!["sweep", "--out"];
        let out = reference.display().to_string();
        argv.push(&out);
        argv.extend(args.iter().map(String::as_str));
        run_ok(&argv);
        captured.push((
            fs::read_to_string(reference.join("manifest.json")).expect("manifest"),
            fs::read_to_string(reference.join("table2.csv")).expect("table2"),
        ));
    }

    let out = tmp_dir("http-kill-daemon");
    let ids: Vec<String>;
    {
        let daemon = Daemon::spawn(&out);
        ids = vec![
            http_submit(&daemon.http, &storm_spec("alpha", &[11])),
            http_submit(&daemon.http, &storm_spec("beta", &[11, 12])),
        ];
        let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&daemon.addr)).collect();
        // Let the first campaign chunks land, then SIGKILL the daemon:
        // HTTP submissions must be exactly as durable as binary ones.
        let deadline = Instant::now() + Duration::from_secs(300);
        while slog_bytes(&out) == 0 {
            assert!(Instant::now() < deadline, "campaign logs never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(daemon); // SIGKILL (Drop uses Child::kill)
        for w in &mut workers {
            let _ = w.kill();
            let _ = w.wait();
        }
    }

    // Restart over the same store and stream both sweeps to completion
    // over the gateway's SSE endpoint (via the CLI's http client path).
    let daemon = Daemon::spawn(&out);
    let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&daemon.addr)).collect();
    let url = format!("http://{}", daemon.http);
    for id in &ids {
        run_ok(&["report", "--connect", &url, "--follow", "--sweep", id]);
    }
    for w in &mut workers {
        let _ = w.kill();
        let _ = w.wait();
    }

    // Byte-identity: shared content exactly equals the clean sequential
    // store; per-sweep manifests/tables differ at most in resumed-run
    // counts.
    assert_dirs_identical(&reference.join("jobs"), &out.join("jobs"), "jobs/");
    assert_dirs_identical(&reference.join("stages"), &out.join("stages"), "stages/");
    for (id, (ref_manifest, ref_table)) in ids.iter().zip(&captured) {
        let scope = out.join("sweeps").join(id);
        let manifest = fs::read_to_string(scope.join("manifest.json")).expect("manifest");
        assert_eq!(
            normalize_manifest(&manifest),
            normalize_manifest(ref_manifest),
            "{id}: manifests must agree on everything but campaign_resumed"
        );
        assert_eq!(
            &fs::read_to_string(scope.join("table2.csv")).expect("table2"),
            ref_table,
            "{id}: table2 must match the clean reference"
        );
    }
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&out);
}

/// Sends raw bytes to the gateway, half-closes the write side, and
/// returns whatever the server answered (empty if it just dropped the
/// connection — also an acceptable answer to garbage).
fn raw_exchange(http: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(http).expect("connect to the gateway");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(bytes).expect("write the raw request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn status_line_of(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

#[test]
fn adversarial_http_gets_4xx_and_never_disturbs_the_daemon() {
    let out = tmp_dir("adversarial");
    let daemon = Daemon::spawn(&out);

    // Torn mid-request-line.
    let torn = raw_exchange(&daemon.http, b"POST /v1/swe");
    assert!(
        torn.is_empty() || torn.starts_with("HTTP/1.1 400"),
        "torn request must get 400 or a drop, got: {torn:?}"
    );
    // Torn mid-body (Content-Length promises more than arrives).
    let torn = raw_exchange(
        &daemon.http,
        b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"spec\"",
    );
    assert!(
        torn.is_empty() || torn.starts_with("HTTP/1.1 400"),
        "torn body must get 400 or a drop, got: {torn:?}"
    );
    // Oversized declared body.
    let oversized = raw_exchange(
        &daemon.http,
        b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert!(oversized.starts_with("HTTP/1.1 400"), "{oversized:?}");
    // Header flood.
    let mut flood = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        flood.extend_from_slice(format!("x-flood-{i}: v\r\n").as_bytes());
    }
    flood.extend_from_slice(b"\r\n");
    let flooded = raw_exchange(&daemon.http, &flood);
    assert!(flooded.starts_with("HTTP/1.1 400"), "{flooded:?}");
    // Not HTTP at all.
    let garbage = raw_exchange(&daemon.http, b"MBW1\x00\x00\x00\x04????\r\n\r\n");
    assert!(
        garbage.is_empty() || garbage.starts_with("HTTP/1.1 400"),
        "{garbage:?}"
    );
    // Malformed JSON to a real route.
    let bad_json = raw_exchange(
        &daemon.http,
        b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot JSON!",
    );
    assert!(bad_json.starts_with("HTTP/1.1 400"), "{bad_json:?}");
    // A JSON body missing the spec.
    let no_spec = raw_exchange(
        &daemon.http,
        b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
    );
    assert!(no_spec.starts_with("HTTP/1.1 400"), "{no_spec:?}");
    // Unknown routes and methods.
    let missing = raw_exchange(&daemon.http, b"GET /v2/nope HTTP/1.1\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing:?}");
    let unknown_sweep = raw_exchange(&daemon.http, b"DELETE /v1/sweeps/s999-x HTTP/1.1\r\n\r\n");
    assert!(
        unknown_sweep.starts_with("HTTP/1.1 404"),
        "{unknown_sweep:?}"
    );
    let bad_method = raw_exchange(&daemon.http, b"PUT /v1/sweeps HTTP/1.1\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.1 405"), "{bad_method:?}");
    let bad_sse = raw_exchange(
        &daemon.http,
        b"POST /v1/sweeps/s0-x/events HTTP/1.1\r\n\r\n",
    );
    assert!(bad_sse.starts_with("HTTP/1.1 405"), "{bad_sse:?}");

    // After the barrage: the daemon is alive and still does real work.
    let health = raw_exchange(&daemon.http, b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_line_of(&health), "HTTP/1.1 200 OK", "{health:?}");
    let mut quick = storm_spec("after-storm", &[11]);
    quick.max_campaign_runs = Some(200);
    let id = http_submit(&daemon.http, &quick);
    let mut worker = spawn_worker(&daemon.addr);
    poll_until_terminal(
        &daemon.http,
        std::slice::from_ref(&id),
        Duration::from_secs(300),
    );
    let _ = worker.kill();
    let _ = worker.wait();
    assert!(
        out.join("sweeps").join(&id).join("manifest.json").exists(),
        "the post-barrage sweep must complete normally"
    );
    drop(daemon);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn sse_followers_that_vanish_or_never_read_do_not_stall_the_sweeps() {
    let out = tmp_dir("sse-stall");
    let daemon = Daemon::spawn(&out);
    let ids = vec![
        http_submit(&daemon.http, &storm_spec("gamma", &[21])),
        http_submit(&daemon.http, &storm_spec("delta", &[22])),
    ];

    // A follower that never reads a byte: its handler thread may block
    // and time out, but claims must keep flowing.
    let mut stalled = TcpStream::connect(&daemon.http).expect("connect stalled follower");
    write!(stalled, "GET /v1/sweeps/{}/events HTTP/1.1\r\n\r\n", ids[0])
        .expect("send the stalled follow request");
    // Deliberately never read from `stalled`.

    // A follower that reads the response head plus a little and vanishes
    // mid-stream.
    let mut vanishing = TcpStream::connect(&daemon.http).expect("connect vanishing follower");
    vanishing
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        vanishing,
        "GET /v1/sweeps/{}/events HTTP/1.1\r\n\r\n",
        ids[1]
    )
    .expect("send the vanishing follow request");
    let mut first = [0u8; 64];
    vanishing
        .read_exact(&mut first)
        .expect("the SSE response head starts streaming");
    assert!(
        std::str::from_utf8(&first)
            .expect("SSE head is UTF-8")
            .starts_with("HTTP/1.1 200 OK"),
        "the events route answers 200 before streaming"
    );
    drop(vanishing); // premature disconnect, mid-SSE

    let mut worker = spawn_worker(&daemon.addr);
    poll_until_terminal(&daemon.http, &ids, Duration::from_secs(300));
    let _ = worker.kill();
    let _ = worker.wait();

    // The daemon outlived both hostile followers.
    let health = raw_exchange(&daemon.http, b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_line_of(&health), "HTTP/1.1 200 OK");
    drop(stalled);
    drop(daemon);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn stdin_specs_submit_and_canceled_sweeps_exit_nonzero_from_status_and_report() {
    let out = tmp_dir("exit-codes");
    let daemon = Daemon::spawn(&out);

    // `submit --spec -`: the spec arrives on stdin. No worker is
    // connected, so the sweep stays queued until we cancel it.
    let spec = storm_spec("stdin-spec", &[31]);
    let mut child = Command::new(MBCR)
        .args(["submit", "--connect", &daemon.addr, "--spec", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mbcr submit");
    child
        .stdin
        .take()
        .expect("submit stdin")
        .write_all(spec.to_json().to_pretty().as_bytes())
        .expect("pipe the spec");
    let output = child.wait_with_output().expect("wait for submit");
    assert!(
        output.status.success(),
        "stdin submit failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let id = stdout
        .lines()
        .find_map(|l| l.strip_prefix("submitted "))
        .expect("submit prints the sweep id")
        .trim()
        .to_string();

    // Queued and healthy: targeted status exits 0.
    let probe = Command::new(MBCR)
        .args(["status", "--connect", &daemon.addr, "--sweep", &id])
        .output()
        .expect("spawn mbcr status");
    assert!(
        probe.status.success(),
        "a queued sweep must probe healthy:\n{}",
        String::from_utf8_lossy(&probe.stderr)
    );

    run_ok(&["cancel", "--connect", &daemon.addr, "--sweep", &id]);

    // Canceled: both the binary-protocol probe and the gateway report
    // exit nonzero — scripts can gate on sweep health.
    let probe = Command::new(MBCR)
        .args(["status", "--connect", &daemon.addr, "--sweep", &id])
        .output()
        .expect("spawn mbcr status");
    assert!(
        !probe.status.success(),
        "status --sweep must exit nonzero for a canceled sweep"
    );
    let url = format!("http://{}", daemon.http);
    let probe = Command::new(MBCR)
        .args(["report", "--connect", &url, "--sweep", &id])
        .output()
        .expect("spawn mbcr report");
    assert!(
        !probe.status.success(),
        "report --connect http:// --sweep must exit nonzero for a canceled sweep"
    );
    // Untargeted listings still exit 0: the queue as a whole is fine.
    run_ok(&["status", "--connect", &daemon.addr]);
    run_ok(&["report", "--connect", &url]);

    drop(daemon);
    let _ = fs::remove_dir_all(&out);
}
