//! Quickstart: estimate a pWCET for a small multipath program with the full
//! PUB + TAC + MBPTA pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use mbcr::prelude::*;
use mbcr_ir::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy control task: scan a sensor buffer, then take one of two
    // branches depending on the accumulated error.
    let mut b = ProgramBuilder::new("quickstart");
    let sensor = b.array("sensor", 64);
    let gains = b.array("gains", 16);
    let (i, r, err, cmd) = (b.var("i"), b.var("r"), b.var("err"), b.var("cmd"));
    // Eight filter passes over the sensor block: the repeated traversal of
    // 8 data lines is what makes cache-layout variability (and the pWCET
    // tail) visible.
    b.push(Stmt::for_(
        r,
        Expr::c(0),
        Expr::c(8),
        8,
        vec![Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(64),
            64,
            vec![Stmt::Assign(err, Expr::var(err).add(Expr::load(sensor, Expr::var(i))))],
        )],
    ));
    b.push(Stmt::if_(
        Expr::var(err).gt(Expr::c(100)),
        vec![Stmt::Assign(cmd, Expr::load(gains, Expr::c(0)).mul(Expr::var(err)))],
        vec![Stmt::Assign(cmd, Expr::load(gains, Expr::c(8)))],
    ));
    let program = b.build()?;

    // Inputs exercising one path (PUB makes the choice irrelevant for the
    // soundness of the bound — Observation 3 of the paper).
    let inputs = Inputs::new().with_array(sensor, vec![3; 64]);

    // The pipeline: PUB -> TAC -> R measurement runs -> MBPTA.
    let cfg = AnalysisConfig::builder().seed(42).quick().build();
    let analysis = analyze_pub_tac(&program, &inputs, &cfg)?;

    println!("{}", mbcr::render_report(program.name(), &analysis));
    Ok(())
}
