//! PUB — Path Upper-Bounding for MBPTA (Kosmidis et al., ECRTS'14), as
//! combined with TAC in the DAC'18 paper this workspace reproduces.
//!
//! PUB rewrites a multipath program into a *pubbed* program whose every path
//! exhibits an execution-time distribution upper-bounding **all** paths of
//! the original (Equation 1 of the paper):
//!
//! ```text
//! ∀ i, j ∈ paths:  F(P_orig^i(t)) ≥ F(P_pub^j(t))
//! ```
//!
//! The transformation relies on a property exclusive to time-randomized
//! caches: inserting a memory access anywhere into an access sequence can
//! only worsen the probabilistic execution-time distribution. (Under LRU
//! the same insertion can *help* — see `mbcr-cache`'s Section 2
//! counter-example.)
//!
//! # How the IR-level transformation works
//!
//! 1. Conditionals are processed innermost-first.
//! 2. Each branch's **signature** is computed: per-statement access tokens
//!    (ordered data references + instruction count), loops unrolled to their
//!    declared bounds ([`tokens`]).
//! 3. The two signatures are merged with a token-level shortest common
//!    supersequence — the minimal insertion set at statement granularity
//!    (PUB "tries to minimize the number of addresses inserted").
//! 4. Each branch is inflated to the merged signature with
//!    functionally-innocuous [`Touch`](mbcr_ir::Stmt::Touch) /
//!    [`Nop`](mbcr_ir::Stmt::Nop) statements, after which **both branches
//!    flatten to the same token sequence**: same arrays referenced in the
//!    same order, same instruction counts (and the IR layouter aligns branch
//!    starts to cache lines, so equal counts give identical instruction-line
//!    patterns).
//!
//! Under random placement, distinct lines receive i.i.d. uniform sets, so
//! equal shapes imply identically *distributed* cache behaviour even where
//! concrete addresses differ (exchangeability) — the distribution-level
//! guarantee Equation 1 needs. The [`shape`] module provides the runtime
//! checks; the workspace's integration tests add the statistical dominance
//! evidence (paper Figure 2).
//!
//! # Examples
//!
//! ```
//! use mbcr_ir::{execute, Expr, Inputs, ProgramBuilder, Stmt};
//! use mbcr_pub::{pub_transform, shape::data_shape, PubConfig};
//!
//! // if (x > 0) { y = m[0]; y = m[1]; } else { y = m[1]; y = m[2]; }
//! let mut b = ProgramBuilder::new("fig1b");
//! let m = b.array("m", 8);
//! let (x, y) = (b.var("x"), b.var("y"));
//! b.push(Stmt::if_(
//!     Expr::var(x).gt(Expr::c(0)),
//!     vec![
//!         Stmt::Assign(y, Expr::load(m, Expr::c(0))),
//!         Stmt::Assign(y, Expr::load(m, Expr::c(1))),
//!     ],
//!     vec![
//!         Stmt::Assign(y, Expr::load(m, Expr::c(1))),
//!         Stmt::Assign(y, Expr::load(m, Expr::c(2))),
//!     ],
//! ));
//! let p = b.build()?;
//! let pubbed = pub_transform(&p, &PubConfig::paper()).unwrap();
//!
//! // Both pubbed paths now touch the same arrays in the same order.
//! let t = execute(&pubbed.program, &Inputs::new().with_var(x, 1)).unwrap();
//! let e = execute(&pubbed.program, &Inputs::new().with_var(x, -1)).unwrap();
//! assert_eq!(
//!     data_shape(&t.trace, &pubbed.program),
//!     data_shape(&e.trace, &pubbed.program),
//! );
//! # Ok::<(), mbcr_ir::ProgramError>(())
//! ```

mod passes;
pub mod shape;
pub mod tokens;
mod transform;
pub mod widen;

pub use passes::{pub_pipeline, ShapePass, TouchInsertPass, VerifyPass, WidenPass};
pub use transform::{pub_transform, ConstructReport, PubConfig, PubReport, PubResult, WidenPolicy};

use mbcr_trace::scs::scs_many;
use mbcr_trace::SymSeq;

/// Sequence-level PUB: merges the address sequences of sibling paths into
/// their (pairwise-folded) shortest common supersequence — the paper's
/// `M_pub` for symbolic examples like Section 3.1.
///
/// # Examples
///
/// ```
/// use mbcr_pub::pub_merge;
/// use mbcr_trace::SymSeq;
/// let m1: SymSeq = "ABCA".parse().unwrap();
/// let m2: SymSeq = "ADEA".parse().unwrap();
/// let m = pub_merge(&[m1.clone(), m2.clone()]);
/// assert!(m.is_supersequence_of(&m1) && m.is_supersequence_of(&m2));
/// assert_eq!(m.len(), 6); // {ABCDEA}-like
/// ```
#[must_use]
pub fn pub_merge(paths: &[SymSeq]) -> SymSeq {
    scs_many(paths)
}

/// Checks Equation 2 of the paper: is `pubbed` obtainable from `orig` by a
/// chain of `ins(M, x)` insertions (i.e. is it a supersequence)?
#[must_use]
pub fn is_valid_pub_of(pubbed: &SymSeq, orig: &SymSeq) -> bool {
    pubbed.is_supersequence_of(orig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pub_merge_covers_all_paths() {
        let paths: Vec<SymSeq> = ["ABCA", "ADEA", "AFGA"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let merged = pub_merge(&paths);
        for p in &paths {
            assert!(is_valid_pub_of(&merged, p));
        }
    }

    #[test]
    fn paper_section311_merge() {
        // M1 = {ABCA}, M2 = {ADEA}: the paper's pubbed result {ABCDEA} has 6
        // accesses and 5 distinct addresses; our minimal merge matches that.
        let m1: SymSeq = "ABCA".parse().unwrap();
        let m2: SymSeq = "ADEA".parse().unwrap();
        let merged = pub_merge(&[m1, m2]);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.unique_symbols(), 5);
    }
}
