//! The `mbcr-shard` wire protocol: length-prefixed, checksummed
//! [`mbcr_json`] frames over a byte stream.
//!
//! ```text
//! frame := magic(4: "MBW1") | payload_len(u32 LE) | fnv1a64(u64 LE) | payload
//! ```
//!
//! The payload is one compact-JSON [`Message`]. Framing follows the same
//! hardened-header discipline as the sample chunk log (`SampleLog` in
//! `mbcr-engine`): nothing in a header is trusted until proven — the
//! magic must match, the length is range-checked against [`MAX_FRAME`]
//! *before* any allocation (an attacker-controlled 4 GiB length prefix
//! must not reserve 4 GiB), the payload hash must match, and a short read
//! anywhere is a torn frame, never a partial message. A clean EOF at a
//! frame boundary is the one non-error ending ([`read_frame`] returns
//! `None`); EOF anywhere inside a frame is an error.

use std::io::{self, Read, Write};

use mbcr_engine::{
    AnalysisKnobs, CampaignProgress, JobSpec, JobSummary, SweepSnapshot, SweepState, SweepStatus,
};
use mbcr_json::{fnv1a_bytes, Json, Serialize, FNV_OFFSET};

/// Protocol identity exchanged in the handshake: wire layout + the engine
/// schema whose artifacts travel over it. Either side rejects a peer with
/// a different spelling. (`/2` since the service redesign: jobs are
/// sweep-tagged and self-describing, and the client conversation —
/// submit/status/cancel/follow — shares the connection grammar. `/3`
/// since the gateway: submissions carry priority and concurrency-quota
/// knobs.)
#[must_use]
pub fn wire_schema() -> String {
    format!("mbcr-shard/3|{}", mbcr_engine::SCHEMA)
}

/// Magic prefix of every frame.
pub const FRAME_MAGIC: &[u8; 4] = b"MBW1";

/// Frame header bytes: magic + payload length + payload hash.
pub const FRAME_HEADER: usize = 4 + 4 + 8;

/// Upper bound on a payload. Generous for the largest legitimate frame (a
/// stage-job ship with a full trace artifact and campaign prefix), small
/// enough that a hostile length prefix cannot balloon allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame. The whole frame is assembled first and written with
/// a single `write_all`, so concurrent writers serializing on an outer
/// lock never interleave partial frames.
///
/// # Errors
///
/// I/O failures of the underlying stream, or a message beyond
/// [`MAX_FRAME`].
pub fn write_frame(to: &mut impl Write, message: &Json) -> io::Result<()> {
    let span = mbcr_obs::span(mbcr_obs::SpanKind::WireFrame, "send");
    let payload = message.to_compact();
    let payload = payload.as_bytes();
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let _span = span.field("bytes", payload.len().to_string());
    mbcr_obs::count("mbcr_wire_frames_sent_total", &[], 1);
    mbcr_obs::observe(
        "mbcr_wire_frame_sent_bytes",
        &[],
        (FRAME_HEADER + payload.len()) as u64,
    );
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(FRAME_MAGIC);
    frame.extend_from_slice(&u32::try_from(payload.len()).expect("checked").to_le_bytes());
    frame.extend_from_slice(&fnv1a_bytes(FNV_OFFSET, payload).to_le_bytes());
    frame.extend_from_slice(payload);
    to.write_all(&frame)?;
    to.flush()
}

/// How many read-timeout ticks a peer may stall *inside* a frame before
/// the connection is declared broken. At the coordinator's 500 ms socket
/// timeout this allows a two-minute mid-frame network stall — far beyond
/// any healthy link, well below "hold a handler thread forever".
const MID_FRAME_STALL_BUDGET: usize = 240;

/// What a timeout-aware receive produced.
#[derive(Debug)]
pub enum Received {
    /// A whole, valid message.
    Message(Message),
    /// The socket's read timeout elapsed with **no frame started** — an
    /// idle tick, not an error. Only possible on streams with a read
    /// timeout configured.
    Idle,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

enum Fill {
    Done,
    Idle,
    Eof,
}

/// Fills `buf` completely, tolerating read-timeout ticks: before any byte
/// of the current frame has arrived (`frame_started` false) a tick
/// surfaces as [`Fill::Idle`]; after that, ticks are retried against the
/// stall budget — a timeout must never tear a frame in half.
fn fill(
    from: &mut impl Read,
    buf: &mut [u8],
    frame_started: &mut bool,
    stalls: &mut usize,
) -> io::Result<Fill> {
    let mut at = 0usize;
    while at < buf.len() {
        match from.read(&mut buf[at..]) {
            Ok(0) => {
                if at == 0 && !*frame_started {
                    return Ok(Fill::Eof);
                }
                return Err(bad_frame("torn frame: peer closed mid-frame"));
            }
            Ok(n) => {
                at += n;
                *frame_started = true;
                *stalls = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !*frame_started {
                    return Ok(Fill::Idle);
                }
                *stalls += 1;
                if *stalls > MID_FRAME_STALL_BUDGET {
                    return Err(bad_frame("peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Done)
}

enum RawFrame {
    Doc(Json),
    Idle,
    Closed,
}

fn read_frame_raw(from: &mut impl Read) -> io::Result<RawFrame> {
    let mut frame_started = false;
    let mut stalls = 0usize;
    let mut header = [0u8; FRAME_HEADER];
    match fill(from, &mut header, &mut frame_started, &mut stalls)? {
        Fill::Done => {}
        Fill::Idle => return Ok(RawFrame::Idle),
        Fill::Eof => return Ok(RawFrame::Closed),
    }
    if &header[0..4] != FRAME_MAGIC {
        return Err(bad_frame("bad frame magic"));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(bad_frame(&format!("frame length {len} exceeds MAX_FRAME")));
    }
    let want = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    // The span starts once the header is in hand, so it measures payload
    // transfer + verify + decode — not time spent blocked between frames.
    let _span =
        mbcr_obs::span(mbcr_obs::SpanKind::WireFrame, "receive").field("bytes", len.to_string());
    mbcr_obs::count("mbcr_wire_frames_received_total", &[], 1);
    mbcr_obs::observe(
        "mbcr_wire_frame_received_bytes",
        &[],
        (FRAME_HEADER + len) as u64,
    );
    let mut payload = vec![0u8; len];
    match fill(from, &mut payload, &mut frame_started, &mut stalls)? {
        Fill::Done => {}
        Fill::Idle | Fill::Eof => unreachable!("frame_started is set by the header"),
    }
    if fnv1a_bytes(FNV_OFFSET, &payload) != want {
        return Err(bad_frame("frame checksum mismatch"));
    }
    let text = std::str::from_utf8(&payload).map_err(|_| bad_frame("frame is not UTF-8"))?;
    mbcr_json::parse(text)
        .map(RawFrame::Doc)
        .map_err(|e| bad_frame(&format!("frame is not JSON: {e}")))
}

/// Reads one frame, blocking until it is whole. `Ok(None)` on a clean
/// EOF at a frame boundary; everything else that is not a whole, valid
/// frame is an error — torn headers, torn payloads, bad magic, oversized
/// or overflowing lengths, hash mismatches, non-UTF-8 or non-JSON
/// payloads. On a stream with a read timeout, timeouts are swallowed
/// (the read simply continues); use [`receive_or_idle`] to observe them.
///
/// # Errors
///
/// I/O failures, or [`io::ErrorKind::InvalidData`] on a malformed frame.
pub fn read_frame(from: &mut impl Read) -> io::Result<Option<Json>> {
    loop {
        match read_frame_raw(from)? {
            RawFrame::Doc(doc) => return Ok(Some(doc)),
            RawFrame::Idle => {} // timeout tick between frames: keep waiting
            RawFrame::Closed => return Ok(None),
        }
    }
}

fn bad_frame(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// A campaign chunk-log prefix shipped with a job so the receiving worker
/// adopts an in-flight campaign (its own, resumed, or a dead sibling's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePrefix {
    /// The campaign stage's content digest — the log's address.
    pub digest: u64,
    /// The valid runs the coordinator's log already holds.
    pub samples: Vec<u64>,
}

/// One stage job as shipped to a worker. Self-describing: with the
/// [`AnalysisKnobs`] riding along, a worker reconstructs the exact
/// analysis config without ever knowing which sweep the job belongs to —
/// one fleet serves any number of concurrent sweeps.
#[derive(Debug, Clone)]
pub struct WireJob {
    /// Id of the sweep the job belongs to (echoed in [`Message::Done`]).
    pub sweep: String,
    /// Node index in that sweep's plan.
    pub job: usize,
    /// The job's content-hash artifact key.
    pub key: String,
    /// The job spec (benchmark, geometry, seed, kind).
    pub spec: JobSpec,
    /// The owning sweep's analysis knobs.
    pub knobs: AnalysisKnobs,
    /// Upstream stage artifacts (full envelopes), in dataflow order.
    pub artifacts: Vec<Json>,
    /// Campaign log prefix to adopt, when the job has one.
    pub prefix: Option<SamplePrefix>,
}

/// What a worker produced for one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The sweep id the coordinator shipped.
    pub sweep: String,
    /// The node index the coordinator shipped.
    pub job: usize,
    /// Failure message; `None` means the job executed.
    pub error: Option<String>,
    /// The result summary (present exactly when `error` is `None`).
    pub summary: Option<JobSummary>,
    /// Stage artifacts computed by this execution (full envelopes).
    pub stage_docs: Vec<Json>,
    /// For terminal fit nodes: the full result document and — for pub_tac
    /// — the final campaign sample, destined for the job-artifact layout.
    pub fit: Option<(Json, Option<Vec<u64>>)>,
}

/// Every message of the service conversation. Workers and clients speak
/// the same framed grammar over the same listener: both open with
/// [`Message::Hello`], then workers run the request/job/done loop while
/// clients submit, query, cancel, or follow sweeps.
#[derive(Debug, Clone)]
pub enum Message {
    /// Peer → service: handshake.
    Hello {
        /// Must equal [`wire_schema`].
        schema: String,
    },
    /// Service → peer: handshake accepted. Jobs are self-describing
    /// (spec + knobs travel with each one), so the welcome carries only
    /// the protocol identity.
    Welcome {
        /// Must equal [`wire_schema`].
        schema: String,
    },
    /// Service → peer: the request was refused (schema mismatch,
    /// malformed hello, unknown sweep id). Workers report `reason` and
    /// exit nonzero — a misconfigured fleet must be loud, not idle.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Worker → service: give me a job.
    Request,
    /// Service → worker: run this stage job.
    Job(Box<WireJob>),
    /// Service → worker: nothing is ready; ask again shortly.
    Wait,
    /// Service → worker: no further work will come; disconnect.
    Shutdown,
    /// Worker → service: a campaign checkpoint chunk (runs
    /// `start .. start + samples.len()` of a campaign with `total`
    /// resolved runs), streamed as simulation produces it.
    Chunk {
        /// The campaign stage's content digest.
        digest: u64,
        /// Absolute index of the first run in `samples`.
        start: usize,
        /// The campaign's resolved run count.
        total: usize,
        /// The chunk's execution times.
        samples: Vec<u64>,
    },
    /// Worker → service: discard the chunk log under `digest` (the
    /// worker found its content divergent and is rewriting from scratch).
    ResetLog {
        /// The log's digest.
        digest: u64,
    },
    /// Worker → service: liveness while a long stage executes.
    Heartbeat,
    /// Worker → service: job finished (either way).
    Done(Box<JobResult>),
    /// Worker → service: graceful drain (SIGTERM). The worker has
    /// flushed its in-flight campaign chunk and is leaving; requeue its
    /// leases now instead of waiting for the connection or lease TTL.
    Drain,
    /// Client → service: queue this sweep.
    Submit {
        /// The sweep spec (JSON form of `SweepSpec`).
        spec: Json,
        /// Re-execute jobs even when cached artifacts exist.
        force: bool,
        /// Checkpoint-interval override for this sweep's campaigns.
        checkpoint_interval: Option<usize>,
        /// Fair-share weight (stride scheduling; `0` normalizes to `1`).
        priority: u32,
        /// Cap on the sweep's concurrently leased jobs.
        max_concurrent: Option<usize>,
    },
    /// Service → client: the submission is durable and scheduled.
    Submitted {
        /// The sweep's id (use it to follow or cancel).
        sweep: String,
    },
    /// Client → service: report sweep states (one sweep, or the whole
    /// queue).
    Status {
        /// Restrict to one sweep id.
        sweep: Option<String>,
    },
    /// Service → client: the queue's status rows.
    StatusReport {
        /// One row per sweep, in submission order.
        sweeps: Vec<SweepStatus>,
    },
    /// Client → service: cancel a sweep.
    Cancel {
        /// The sweep to cancel.
        sweep: String,
    },
    /// Service → client: cancel acknowledged.
    Cancelled {
        /// The sweep id.
        sweep: String,
        /// Its resulting state (terminal sweeps keep theirs).
        state: String,
    },
    /// Client → service: stream progress snapshots until the target
    /// sweep(s) complete.
    Follow {
        /// One sweep id, or `None` to follow every currently submitted
        /// sweep.
        sweep: Option<String>,
    },
    /// Service → client: one progress snapshot of one sweep (per-job
    /// statuses + per-campaign chunk-log progress). Sent whenever
    /// something changed, and once more in terminal state.
    Progress(Box<SweepSnapshot>),
    /// Service → client: everything followed is terminal; the stream
    /// ends.
    FollowEnd,
}

impl Message {
    fn tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Welcome { .. } => "welcome",
            Message::Reject { .. } => "reject",
            Message::Request => "request",
            Message::Job(_) => "job",
            Message::Wait => "wait",
            Message::Shutdown => "shutdown",
            Message::Chunk { .. } => "chunk",
            Message::ResetLog { .. } => "reset_log",
            Message::Heartbeat => "heartbeat",
            Message::Done(_) => "done",
            Message::Drain => "drain",
            Message::Submit { .. } => "submit",
            Message::Submitted { .. } => "submitted",
            Message::Status { .. } => "status",
            Message::StatusReport { .. } => "status_report",
            Message::Cancel { .. } => "cancel",
            Message::Cancelled { .. } => "cancelled",
            Message::Follow { .. } => "follow",
            Message::Progress(_) => "progress",
            Message::FollowEnd => "follow_end",
        }
    }

    /// The message's JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![("type".to_string(), self.tag().into())];
        match self {
            Message::Hello { schema } => {
                members.push(("schema".to_string(), schema.as_str().into()));
            }
            Message::Reject { reason } => {
                members.push(("reason".to_string(), reason.as_str().into()));
            }
            Message::Welcome { schema } => {
                members.push(("schema".to_string(), schema.as_str().into()));
            }
            Message::Request
            | Message::Wait
            | Message::Shutdown
            | Message::Heartbeat
            | Message::Drain
            | Message::FollowEnd => {}
            Message::Job(job) => {
                members.push(("sweep".to_string(), job.sweep.as_str().into()));
                members.push(("job".to_string(), Json::UInt(job.job as u64)));
                members.push(("key".to_string(), job.key.as_str().into()));
                members.push(("spec".to_string(), job.spec.to_json()));
                members.push(("knobs".to_string(), job.knobs.to_json()));
                members.push(("artifacts".to_string(), Json::Arr(job.artifacts.clone())));
                members.push((
                    "prefix".to_string(),
                    match &job.prefix {
                        None => Json::Null,
                        Some(p) => Json::Obj(vec![
                            ("digest".to_string(), Json::UInt(p.digest)),
                            ("samples".to_string(), samples_json(&p.samples)),
                        ]),
                    },
                ));
            }
            Message::Chunk {
                digest,
                start,
                total,
                samples,
            } => {
                members.push(("digest".to_string(), Json::UInt(*digest)));
                members.push(("start".to_string(), Json::UInt(*start as u64)));
                members.push(("total".to_string(), Json::UInt(*total as u64)));
                members.push(("samples".to_string(), samples_json(samples)));
            }
            Message::ResetLog { digest } => {
                members.push(("digest".to_string(), Json::UInt(*digest)));
            }
            Message::Submit {
                spec,
                force,
                checkpoint_interval,
                priority,
                max_concurrent,
            } => {
                members.push(("spec".to_string(), spec.clone()));
                members.push(("force".to_string(), Json::Bool(*force)));
                members.push((
                    "checkpoint_interval".to_string(),
                    Serialize::to_json(&checkpoint_interval.map(|v| v as u64)),
                ));
                members.push(("priority".to_string(), Json::UInt(u64::from(*priority))));
                members.push((
                    "max_concurrent".to_string(),
                    Serialize::to_json(&max_concurrent.map(|v| v as u64)),
                ));
            }
            Message::Submitted { sweep } => {
                members.push(("sweep".to_string(), sweep.as_str().into()));
            }
            Message::Status { sweep } | Message::Follow { sweep } => {
                members.push(("sweep".to_string(), Serialize::to_json(sweep)));
            }
            Message::StatusReport { sweeps } => {
                members.push((
                    "sweeps".to_string(),
                    Json::Arr(sweeps.iter().map(status_json).collect()),
                ));
            }
            Message::Cancel { sweep } => {
                members.push(("sweep".to_string(), sweep.as_str().into()));
            }
            Message::Cancelled { sweep, state } => {
                members.push(("sweep".to_string(), sweep.as_str().into()));
                members.push(("state".to_string(), state.as_str().into()));
            }
            Message::Progress(snapshot) => {
                members.push(("snapshot".to_string(), snapshot_json(snapshot)));
            }
            Message::Done(result) => {
                members.push(("sweep".to_string(), result.sweep.as_str().into()));
                members.push(("job".to_string(), Json::UInt(result.job as u64)));
                members.push(("error".to_string(), Serialize::to_json(&result.error)));
                members.push((
                    "summary".to_string(),
                    match &result.summary {
                        None => Json::Null,
                        Some(s) => Serialize::to_json(s),
                    },
                ));
                members.push((
                    "stage_docs".to_string(),
                    Json::Arr(result.stage_docs.clone()),
                ));
                members.push((
                    "fit".to_string(),
                    match &result.fit {
                        None => Json::Null,
                        Some((doc, sample)) => Json::Obj(vec![
                            ("result".to_string(), doc.clone()),
                            (
                                "sample".to_string(),
                                match sample {
                                    None => Json::Null,
                                    Some(s) => samples_json(s),
                                },
                            ),
                        ]),
                    },
                ));
            }
        }
        Json::Obj(members)
    }

    /// Inverse of [`Message::to_json`]. `None` on anything malformed —
    /// the receiver treats that as a protocol error and drops the peer.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        let text = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_string);
        Some(match v.get("type")?.as_str()? {
            "hello" => Message::Hello {
                schema: text("schema")?,
            },
            "reject" => Message::Reject {
                reason: text("reason")?,
            },
            "welcome" => Message::Welcome {
                schema: text("schema")?,
            },
            "request" => Message::Request,
            "wait" => Message::Wait,
            "shutdown" => Message::Shutdown,
            "heartbeat" => Message::Heartbeat,
            "drain" => Message::Drain,
            "follow_end" => Message::FollowEnd,
            "job" => Message::Job(Box::new(WireJob {
                sweep: text("sweep")?,
                job: v.get("job")?.as_usize()?,
                key: text("key")?,
                spec: JobSpec::from_json(v.get("spec")?)?,
                knobs: AnalysisKnobs::from_json(v.get("knobs")?)?,
                artifacts: v.get("artifacts")?.as_array()?.to_vec(),
                prefix: match v.get("prefix") {
                    None | Some(Json::Null) => None,
                    Some(p) => Some(SamplePrefix {
                        digest: p.get("digest")?.as_u64()?,
                        samples: samples_from_json(p.get("samples")?)?,
                    }),
                },
            })),
            "submit" => Message::Submit {
                spec: v.get("spec")?.clone(),
                force: v.get("force")?.as_bool()?,
                checkpoint_interval: match v.get("checkpoint_interval") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(other.as_usize()?),
                },
                priority: v
                    .get("priority")?
                    .as_u64()
                    .map(|p| u32::try_from(p).unwrap_or(u32::MAX))?,
                max_concurrent: match v.get("max_concurrent") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(other.as_usize()?),
                },
            },
            "submitted" => Message::Submitted {
                sweep: text("sweep")?,
            },
            "status" => Message::Status {
                sweep: optional_text(v.get("sweep"))?,
            },
            "follow" => Message::Follow {
                sweep: optional_text(v.get("sweep"))?,
            },
            "status_report" => Message::StatusReport {
                sweeps: v
                    .get("sweeps")?
                    .as_array()?
                    .iter()
                    .map(status_from_json)
                    .collect::<Option<Vec<_>>>()?,
            },
            "cancel" => Message::Cancel {
                sweep: text("sweep")?,
            },
            "cancelled" => Message::Cancelled {
                sweep: text("sweep")?,
                state: text("state")?,
            },
            "progress" => Message::Progress(Box::new(snapshot_from_json(v.get("snapshot")?)?)),
            "chunk" => Message::Chunk {
                digest: v.get("digest")?.as_u64()?,
                start: v.get("start")?.as_usize()?,
                total: v.get("total")?.as_usize()?,
                samples: samples_from_json(v.get("samples")?)?,
            },
            "reset_log" => Message::ResetLog {
                digest: v.get("digest")?.as_u64()?,
            },
            "done" => {
                let error = match v.get("error") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(other.as_str()?.to_string()),
                };
                let summary = match v.get("summary") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(JobSummary::from_json(other)?),
                };
                if error.is_none() == summary.is_none() {
                    return None; // exactly one of error/summary
                }
                Message::Done(Box::new(JobResult {
                    sweep: text("sweep")?,
                    job: v.get("job")?.as_usize()?,
                    error,
                    summary,
                    stage_docs: v.get("stage_docs")?.as_array()?.to_vec(),
                    fit: match v.get("fit") {
                        None | Some(Json::Null) => None,
                        Some(f) => Some((
                            f.get("result")?.clone(),
                            match f.get("sample") {
                                None | Some(Json::Null) => None,
                                Some(s) => Some(samples_from_json(s)?),
                            },
                        )),
                    },
                }))
            }
            _ => return None,
        })
    }
}

fn optional_text(v: Option<&Json>) -> Option<Option<String>> {
    match v {
        None | Some(Json::Null) => Some(None),
        Some(other) => other.as_str().map(|s| Some(s.to_string())),
    }
}

/// JSON form of one [`SweepStatus`] row — shared verbatim by the binary
/// `StatusReport` frame and the gateway's `GET /v1/sweeps` responses,
/// so both planes serialize statuses identically.
#[must_use]
pub fn status_json(status: &SweepStatus) -> Json {
    Json::Obj(vec![
        ("id".to_string(), status.id.as_str().into()),
        ("name".to_string(), status.name.as_str().into()),
        ("state".to_string(), status.state.name().into()),
        ("total".to_string(), Json::UInt(status.total as u64)),
        ("done".to_string(), Json::UInt(status.done as u64)),
        ("executed".to_string(), Json::UInt(status.executed as u64)),
        ("skipped".to_string(), Json::UInt(status.skipped as u64)),
        ("failed".to_string(), Json::UInt(status.failed as u64)),
    ])
}

/// Inverse of [`status_json`].
#[must_use]
pub fn status_from_json(v: &Json) -> Option<SweepStatus> {
    let number = |k: &str| v.get(k).and_then(Json::as_usize);
    Some(SweepStatus {
        id: v.get("id")?.as_str()?.to_string(),
        name: v.get("name")?.as_str()?.to_string(),
        state: SweepState::parse(v.get("state")?.as_str()?)?,
        total: number("total")?,
        done: number("done")?,
        executed: number("executed")?,
        skipped: number("skipped")?,
        failed: number("failed")?,
    })
}

/// JSON form of one [`SweepSnapshot`] — shared verbatim by the binary
/// `Progress` frame and the gateway's snapshot/SSE payloads.
#[must_use]
pub fn snapshot_json(snapshot: &SweepSnapshot) -> Json {
    Json::Obj(vec![
        ("id".to_string(), snapshot.id.as_str().into()),
        ("name".to_string(), snapshot.name.as_str().into()),
        ("state".to_string(), snapshot.state.name().into()),
        ("total".to_string(), Json::UInt(snapshot.total as u64)),
        (
            "jobs".to_string(),
            Json::Arr(
                snapshot
                    .jobs
                    .iter()
                    .map(|(label, status, resumed)| {
                        Json::Obj(vec![
                            ("label".to_string(), label.as_str().into()),
                            ("status".to_string(), status.as_str().into()),
                            ("resumed".to_string(), Json::UInt(*resumed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "campaigns".to_string(),
            Json::Arr(
                snapshot
                    .campaigns
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("digest".to_string(), Json::UInt(c.digest)),
                            ("collected".to_string(), Json::UInt(c.collected as u64)),
                            ("total".to_string(), Json::UInt(c.total)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`snapshot_json`].
#[must_use]
pub fn snapshot_from_json(v: &Json) -> Option<SweepSnapshot> {
    Some(SweepSnapshot {
        id: v.get("id")?.as_str()?.to_string(),
        name: v.get("name")?.as_str()?.to_string(),
        state: SweepState::parse(v.get("state")?.as_str()?)?,
        total: v.get("total")?.as_usize()?,
        jobs: v
            .get("jobs")?
            .as_array()?
            .iter()
            .map(|j| {
                Some((
                    j.get("label")?.as_str()?.to_string(),
                    j.get("status")?.as_str()?.to_string(),
                    j.get("resumed")?.as_u64()?,
                ))
            })
            .collect::<Option<Vec<_>>>()?,
        campaigns: v
            .get("campaigns")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(CampaignProgress {
                    digest: c.get("digest")?.as_u64()?,
                    collected: c.get("collected")?.as_usize()?,
                    total: c.get("total")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn samples_json(samples: &[u64]) -> Json {
    Json::Arr(samples.iter().map(|&v| Json::UInt(v)).collect())
}

fn samples_from_json(v: &Json) -> Option<Vec<u64>> {
    v.as_array()?.iter().map(Json::as_u64).collect()
}

/// Writes `message` as one frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn send(to: &mut impl Write, message: &Message) -> io::Result<()> {
    write_frame(to, &message.to_json())
}

/// Reads one message; `Ok(None)` on clean EOF.
///
/// # Errors
///
/// See [`read_frame`]; a frame that parses as JSON but not as a
/// [`Message`] is [`io::ErrorKind::InvalidData`] too.
pub fn receive(from: &mut impl Read) -> io::Result<Option<Message>> {
    match read_frame(from)? {
        None => Ok(None),
        Some(doc) => Message::from_json(&doc)
            .map(Some)
            .ok_or_else(|| bad_frame(&format!("unknown or malformed message: {doc}"))),
    }
}

/// Reads one message on a stream with a read timeout configured,
/// surfacing between-frame timeouts as [`Received::Idle`] so the caller
/// can run periodic work. A timeout landing *inside* a frame never tears
/// it: the read resumes where it stopped (up to the stall budget).
///
/// # Errors
///
/// See [`read_frame`].
pub fn receive_or_idle(from: &mut impl Read) -> io::Result<Received> {
    match read_frame_raw(from)? {
        RawFrame::Idle => Ok(Received::Idle),
        RawFrame::Closed => Ok(Received::Closed),
        RawFrame::Doc(doc) => Message::from_json(&doc)
            .map(Received::Message)
            .ok_or_else(|| bad_frame(&format!("unknown or malformed message: {doc}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(message: &Message) -> Message {
        let mut bytes = Vec::new();
        send(&mut bytes, message).expect("send");
        receive(&mut Cursor::new(bytes))
            .expect("receive")
            .expect("not EOF")
    }

    fn demo_job() -> WireJob {
        WireJob {
            sweep: "s007-demo".to_string(),
            job: 7,
            key: "ab".repeat(16),
            spec: JobSpec {
                benchmark: "bs".into(),
                geometry: mbcr_engine::GeometrySpec::paper_l1(),
                master_seed: 42,
                kind: mbcr_engine::JobKind::pub_tac_stage(mbcr_engine::StageKind::Campaign, "v1"),
            },
            knobs: AnalysisKnobs {
                quick: true,
                max_campaign_runs: Some(60_000),
                exceedance: 1e-12,
                checkpoint_interval: Some(500),
                batch_width: Some(8),
            },
            artifacts: vec![Json::Obj(vec![("digest".to_string(), Json::UInt(9))])],
            prefix: Some(SamplePrefix {
                digest: 0xD1,
                samples: vec![u64::MAX, 0, 17],
            }),
        }
    }

    fn demo_snapshot() -> SweepSnapshot {
        SweepSnapshot {
            id: "s001-demo".to_string(),
            name: "demo".to_string(),
            state: SweepState::Running,
            total: 9,
            jobs: vec![
                (
                    "pub_tac:pub/bs/4096B-2w-32B/s1".to_string(),
                    "executed".to_string(),
                    0,
                ),
                (
                    "pub_tac:campaign/bs:v1/4096B-2w-32B/s1".to_string(),
                    "executed".to_string(),
                    4500,
                ),
            ],
            campaigns: vec![CampaignProgress {
                digest: 0xBEEF,
                collected: 120,
                total: 500,
            }],
        }
    }

    /// Every message kind the protocol knows, with representative payloads.
    fn every_message() -> Vec<Message> {
        vec![
            Message::Hello {
                schema: wire_schema(),
            },
            Message::Welcome {
                schema: wire_schema(),
            },
            Message::Reject {
                reason: "schema mismatch".to_string(),
            },
            Message::Request,
            Message::Job(Box::new(demo_job())),
            Message::Wait,
            Message::Shutdown,
            Message::Heartbeat,
            Message::Drain,
            Message::Chunk {
                digest: 1,
                start: 128,
                total: 500,
                samples: vec![3, 2, 1],
            },
            Message::ResetLog { digest: 5 },
            Message::Submit {
                spec: mbcr_engine::SweepSpec::new("wire")
                    .benchmarks(["bs"])
                    .to_json(),
                force: true,
                checkpoint_interval: Some(256),
                priority: 3,
                max_concurrent: Some(2),
            },
            Message::Submitted {
                sweep: "s000-wire".to_string(),
            },
            Message::Status { sweep: None },
            Message::Status {
                sweep: Some("s000-wire".to_string()),
            },
            Message::StatusReport {
                sweeps: vec![SweepStatus {
                    id: "s000-wire".to_string(),
                    name: "wire".to_string(),
                    state: SweepState::Queued,
                    total: 7,
                    done: 3,
                    executed: 2,
                    skipped: 1,
                    failed: 0,
                }],
            },
            Message::Cancel {
                sweep: "s000-wire".to_string(),
            },
            Message::Cancelled {
                sweep: "s000-wire".to_string(),
                state: "canceled".to_string(),
            },
            Message::Follow { sweep: None },
            Message::Follow {
                sweep: Some("s000-wire".to_string()),
            },
            Message::Progress(Box::new(demo_snapshot())),
            Message::FollowEnd,
        ]
    }

    #[test]
    fn frames_roundtrip_every_message_kind() {
        let job = demo_job();
        match roundtrip(&Message::Job(Box::new(job.clone()))) {
            Message::Job(back) => {
                assert_eq!(back.sweep, job.sweep);
                assert_eq!(back.job, job.job);
                assert_eq!(back.key, job.key);
                assert_eq!(back.spec, job.spec);
                assert_eq!(back.knobs, job.knobs);
                assert_eq!(back.artifacts, job.artifacts);
                assert_eq!(back.prefix, job.prefix);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match roundtrip(&Message::Progress(Box::new(demo_snapshot()))) {
            Message::Progress(back) => assert_eq!(*back, demo_snapshot()),
            other => panic!("wrong kind: {other:?}"),
        }
        for msg in every_message() {
            let back = roundtrip(&msg);
            assert_eq!(back.to_json().to_compact(), msg.to_json().to_compact());
        }
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_torn_for_every_message_kind() {
        for msg in every_message() {
            let mut bytes = Vec::new();
            send(&mut bytes, &msg).expect("send");
            // Clean boundary.
            assert!(matches!(receive(&mut Cursor::new(&bytes[..0])), Ok(None)));
            // Every proper prefix of the frame is torn, never a message
            // and never a clean EOF.
            for cut in 1..bytes.len() {
                let err = receive(&mut Cursor::new(&bytes[..cut])).expect_err("torn");
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "{} cut {cut}",
                    msg.tag()
                );
            }
        }
    }

    #[test]
    fn checksum_flip_is_rejected_for_every_message_kind() {
        for msg in every_message() {
            let mut bytes = Vec::new();
            send(&mut bytes, &msg).expect("send");
            // Flip one payload byte: the frame hash must catch it (the
            // header length/hash fields are covered by the other tests).
            for at in [FRAME_HEADER, bytes.len() - 1] {
                let mut bad = bytes.clone();
                bad[at] ^= 0xFF;
                let err = receive(&mut Cursor::new(bad)).expect_err("corrupt");
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{}", msg.tag());
            }
        }
    }

    #[test]
    fn new_messages_reject_malformed_fields() {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        for doc in [
            // submit without a spec / with a non-bool force / without a
            // priority / with a malformed quota
            obj(vec![("type", "submit".into()), ("force", Json::Bool(true))]),
            obj(vec![
                ("type", "submit".into()),
                ("spec", Json::Obj(vec![])),
                ("force", Json::UInt(1)),
            ]),
            obj(vec![
                ("type", "submit".into()),
                ("spec", Json::Obj(vec![])),
                ("force", Json::Bool(false)),
            ]),
            obj(vec![
                ("type", "submit".into()),
                ("spec", Json::Obj(vec![])),
                ("force", Json::Bool(false)),
                ("priority", Json::UInt(1)),
                ("max_concurrent", Json::Bool(true)),
            ]),
            // submitted/cancel/cancelled without their ids
            obj(vec![("type", "submitted".into())]),
            obj(vec![("type", "cancel".into())]),
            obj(vec![("type", "cancelled".into()), ("sweep", "s0".into())]),
            // status/follow with a non-string sweep
            obj(vec![("type", "status".into()), ("sweep", Json::UInt(3))]),
            obj(vec![("type", "follow".into()), ("sweep", Json::UInt(3))]),
            // status_report with a malformed row (unknown state)
            obj(vec![
                ("type", "status_report".into()),
                (
                    "sweeps",
                    Json::Arr(vec![obj(vec![
                        ("id", "s0".into()),
                        ("name", "x".into()),
                        ("state", "nope".into()),
                        ("total", Json::UInt(1)),
                        ("done", Json::UInt(0)),
                        ("executed", Json::UInt(0)),
                        ("skipped", Json::UInt(0)),
                        ("failed", Json::UInt(0)),
                    ])]),
                ),
            ]),
            // progress without a snapshot / with a truncated one
            obj(vec![("type", "progress".into())]),
            obj(vec![
                ("type", "progress".into()),
                ("snapshot", obj(vec![("id", "s0".into())])),
            ]),
            // job without its sweep tag or knobs (the v1 layout)
            obj(vec![
                ("type", "job".into()),
                ("job", Json::UInt(0)),
                ("key", "ab".into()),
            ]),
        ] {
            assert!(
                Message::from_json(&doc).is_none(),
                "must reject {}",
                doc.to_compact()
            );
        }
    }

    #[test]
    fn oversized_and_overflowing_length_prefixes_are_rejected_before_allocating() {
        for len in [MAX_FRAME as u32 + 1, u32::MAX] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(FRAME_MAGIC);
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&0u64.to_le_bytes());
            // No payload at all: if the length were trusted, read_exact
            // would try to fill a `len`-byte buffer.
            let err = receive(&mut Cursor::new(bytes)).expect_err("oversized");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("MAX_FRAME"), "{err}");
        }
    }

    #[test]
    fn bad_magic_checksum_and_payload_are_rejected() {
        let mut good = Vec::new();
        send(&mut good, &Message::Request).expect("send");

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(receive(&mut Cursor::new(bad_magic)).is_err());

        let mut bad_crc = good.clone();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0xFF; // payload byte flip -> hash mismatch
        let err = receive(&mut Cursor::new(bad_crc)).expect_err("checksum");
        assert!(err.to_string().contains("checksum"), "{err}");

        // A frame whose payload hashes correctly but is not JSON.
        let payload = b"\xFF\xFEnot json";
        let mut frame = Vec::new();
        frame.extend_from_slice(FRAME_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a_bytes(FNV_OFFSET, payload).to_le_bytes());
        frame.extend_from_slice(payload);
        assert!(receive(&mut Cursor::new(frame)).is_err());

        // Valid JSON that is not a known message.
        let mut unknown = Vec::new();
        write_frame(
            &mut unknown,
            &Json::Obj(vec![("type".to_string(), "nope".into())]),
        )
        .expect("write");
        let err = receive(&mut Cursor::new(unknown)).expect_err("unknown type");
        assert!(err.to_string().contains("malformed message"), "{err}");
    }

    #[test]
    fn done_requires_a_sweep_tag_and_exactly_one_of_error_and_summary() {
        let done = |members: Vec<(&str, Json)>| {
            let mut fields = vec![
                ("type".to_string(), Json::from("done")),
                ("job".to_string(), Json::UInt(0)),
                ("stage_docs".to_string(), Json::Arr(vec![])),
                ("fit".to_string(), Json::Null),
            ];
            fields.extend(members.into_iter().map(|(k, v)| (k.to_string(), v)));
            Json::Obj(fields)
        };
        let neither = done(vec![
            ("sweep", "s0".into()),
            ("error", Json::Null),
            ("summary", Json::Null),
        ]);
        assert!(Message::from_json(&neither).is_none());
        let untagged = done(vec![("error", "boom".into()), ("summary", Json::Null)]);
        assert!(
            Message::from_json(&untagged).is_none(),
            "sweep tag required"
        );
        let ok = done(vec![
            ("sweep", "s0".into()),
            ("error", "boom".into()),
            ("summary", Json::Null),
        ]);
        assert!(Message::from_json(&ok).is_some());
    }
}
