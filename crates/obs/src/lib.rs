//! Process-wide telemetry for the mbcr toolchain: span tracing over a
//! monotonic clock, log-bucketed latency histograms and counters in a
//! global registry (with Prometheus text exposition), a bounded flight
//! recorder dumped as JSON on panic or on demand, and a Chrome-trace-event
//! export for whole-sweep timelines.
//!
//! # Design constraints
//!
//! Telemetry is a **pure side channel**. Nothing here may influence what
//! the instrumented code computes: digests, manifests, `table2.csv`, and
//! sample logs must be byte-identical with tracing on or off (the
//! workspace enforces this in tests). Recorder and trace output therefore
//! always lives *outside* the content-addressed `jobs/`/`stages/` store
//! roots.
//!
//! The whole crate sits behind one global switch. When disabled (the
//! default), every instrumentation site reduces to a single relaxed
//! atomic load — cheap enough to leave compiled into the hot paths that
//! the `perf_engine` bench gates.
//!
//! # Units
//!
//! Durations are recorded in **nanoseconds**. By convention a metric whose
//! name ends in `_seconds` holds nanosecond observations and is scaled to
//! seconds at exposition time; all other metrics (bytes, counts) are
//! exported raw.

mod hist;
mod recorder;
mod registry;
mod span;
mod trace;

pub use hist::{Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{dump_now, install_panic_hook, recorder, set_dump_path, FlightRecorder};
pub use registry::{global, merge_snapshots, MetricSnapshot, Registry, RegistrySnapshot};
pub use span::{span, SpanEvent, SpanGuard, SpanKind};
pub use trace::{capture_active, chrome_trace, finish_capture, start_capture};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is being collected. Every instrumentation site
/// checks this first; when false the site is a single relaxed load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process telemetry epoch (first call wins). The
/// clock is monotonic; it never observes wall time.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whole seconds since the telemetry epoch — effectively process uptime
/// when [`init_from_env`] (or any other telemetry call) ran at startup.
#[must_use]
pub fn uptime_seconds() -> u64 {
    epoch().elapsed().as_secs()
}

/// Configures telemetry from the environment. `MBCR_OBS=1` enables
/// collection, `MBCR_OBS=0` forces it off (overriding everything else),
/// and `MBCR_OBS_DIR=<dir>` enables collection *and* arms the flight
/// recorder to dump into that directory on panic (and on SIGTERM drain,
/// where the host process wires that up).
pub fn init_from_env() {
    let opted_out = matches!(std::env::var("MBCR_OBS"), Ok(v) if v == "0");
    if let Ok(v) = std::env::var("MBCR_OBS") {
        set_enabled(v != "0");
    }
    if let Ok(dir) = std::env::var("MBCR_OBS_DIR") {
        if !dir.is_empty() {
            recorder::set_dump_path(std::path::Path::new(&dir).join("flight-recorder.json"));
            recorder::install_panic_hook();
            if !opted_out {
                set_enabled(true);
            }
        }
    }
    let _ = epoch();
}

/// Enables collection unless the user opted out with `MBCR_OBS=0`.
/// Long-running daemons (coordinator, worker, service plane) call this so
/// their metrics endpoints are live by default.
pub fn enable_for_service() {
    if !matches!(std::env::var("MBCR_OBS"), Ok(v) if v == "0") {
        set_enabled(true);
    }
    let _ = epoch();
}

/// Bumps the named counter by `delta`. No-op while telemetry is disabled.
pub fn count(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        global().counter(name, labels).add(delta);
    }
}

/// Records one observation into the named histogram. No-op while
/// telemetry is disabled. Durations go in as nanoseconds (name the metric
/// `*_seconds`); sizes go in raw (name it `*_bytes` or similar).
pub fn observe(name: &str, labels: &[(&str, &str)], value: u64) {
    if enabled() {
        global().histogram(name, labels).record(value);
    }
}

/// Serializes tests that flip the global [`ENABLED`] switch or the global
/// trace sink — they would race under the parallel test runner otherwise.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_helpers_do_not_register_metrics() {
        let _lock = test_guard();
        set_enabled(false);
        count("mbcr_test_disabled_total", &[], 1);
        observe("mbcr_test_disabled_seconds", &[], 5);
        let snap = global().snapshot();
        assert!(!snap.contains_key(&("mbcr_test_disabled_total".to_string(), Vec::new())));
        assert!(!snap.contains_key(&("mbcr_test_disabled_seconds".to_string(), Vec::new())));
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
