//! Paper Table 2 — runs (in thousands) for plain MBPTA on the original
//! program (`R_orig`), MBPTA on the pubbed program (`R_pub`) and PUB+TAC
//! (`R_p+t`), across the eleven Mälardalen models.
//!
//! Paper values (thousands):
//!
//! ```text
//!            R_orig  R_pub  R_p+t
//! bs            1      1     40
//! cnt          10      2     70
//! fir           6      9    600
//! janne         3      1    200
//! crc           3      5     10
//! edn           1      1     70
//! insertsort   40     40     80
//! jfdc          2      2     50
//! matmult     200    200    200
//! fdct          8      8      8
//! ns            3      3    500
//! ```
//!
//! The shape to reproduce: `R_p+t ≥ R_pub` everywhere, with large jumps
//! where conflict groups exceed a set's capacity; absolute values differ
//! (different cache contents, scaled workloads).
//!
//! Results run **through the engine**: every cell executes as a stage job
//! ([`mbcr_engine::execute_stage`]) against a content-addressed
//! [`ArtifactStore`] under `target/paper_out/table2-runs/`, so a re-run at
//! the same `MBCR_SCALE` resumes from cached stages (and an interrupted
//! paper-scale campaign resumes from its chunk log), and the run leaves a
//! manifest + Table 2 CSV behind like any sweep.

use mbcr::stage::StageKind;
use mbcr_bench::{banner, harness_config, in_thousands, out_dir, write_csv, Table};
use mbcr_engine::{
    aggregate_rows, execute_stage, ArtifactStore, GeometrySpec, JobKind, JobRecord, JobSpec,
    JobStatus, JobSummary, Registry,
};
use mbcr_json::{Json, Serialize};

const PAPER: [(&str, u32, u32, u32); 11] = [
    ("bs", 1, 1, 40),
    ("cnt", 10, 2, 70),
    ("fir", 6, 9, 600),
    ("janne", 3, 1, 200),
    ("crc", 3, 5, 10),
    ("edn", 1, 1, 70),
    ("insertsort", 40, 40, 80),
    ("jfdc", 2, 2, 50),
    ("matmult", 200, 200, 200),
    ("fdct", 8, 8, 8),
    ("ns", 3, 3, 500),
];

const MASTER_SEED: u64 = 0x7AB2;

fn main() {
    banner("Table 2: runs (thousands) for MBPTA, PUB and PUB+TAC");
    let cfg = harness_config(MASTER_SEED);
    let registry = Registry::malardalen();
    let store = ArtifactStore::open(out_dir().join("table2-runs")).expect("open store");

    let mut t = Table::new(&[
        "benchmark",
        "R_orig(k)",
        "R_pub(k)",
        "R_p+t(k)",
        "capped",
        "paper (orig/pub/p+t)",
    ]);
    let mut rows = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut summaries: Vec<JobSummary> = Vec::new();
    let mut tac_binds = 0usize;

    // One terminal fit job per (benchmark, analysis) cell: the session
    // derives (or loads) the whole upstream pipeline through the store.
    let mut run_cell = |name: &'static str, kind: JobKind| -> JobSummary {
        let job = JobSpec {
            benchmark: name.to_string(),
            geometry: GeometrySpec::paper_l1(),
            master_seed: MASTER_SEED,
            kind,
        };
        let key = job.key(cfg.digest());
        // Warm re-runs at the same MBCR_SCALE are cache hits, and the
        // manifest says so — the content-hash key covers everything
        // result-affecting, so a stored summary is the summary a re-run
        // would produce.
        let (status, summary) = match store.load_summary(&key) {
            Some(summary) => (JobStatus::Skipped, summary),
            None => {
                let outcome = execute_stage(&job, &key, &cfg, &registry, &store, false)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                if let Some((result, sample)) = outcome.fit {
                    store
                        .write_job(&key, &outcome.summary, result, sample.as_deref())
                        .expect("persist job artifact");
                }
                (JobStatus::Executed, outcome.summary)
            }
        };
        records.push(JobRecord {
            key,
            label: job.label(),
            status,
            error: None,
            summary: Some(summary.clone()),
        });
        summaries.push(summary.clone());
        summary
    };

    for b in mbcr_malardalen::suite() {
        let orig = run_cell(b.name, JobKind::original_stage(StageKind::Fit));
        let pt = run_cell(b.name, JobKind::pub_tac_stage(StageKind::Fit, "default"));
        let r_orig = orig.r_orig.expect("original fit reports R_orig");
        let r_pub = pt.r_pub.expect("pub_tac fit reports R_pub");
        let r_pub_tac = pt.r_pub_tac.expect("pub_tac fit reports R_p+t");
        let campaign_runs = pt.campaign_runs.expect("pub_tac fit reports campaign");
        let capped = pt.campaign_capped.unwrap_or(false);
        let paper = PAPER.iter().find(|p| p.0 == b.name).expect("paper row");
        t.row(&[
            b.name,
            &in_thousands(r_orig),
            &in_thousands(r_pub),
            &in_thousands(r_pub_tac),
            if capped { "*" } else { "" },
            &format!("{}/{}/{}", paper.1, paper.2, paper.3),
        ]);
        rows.push(format!(
            "{},{r_orig},{r_pub},{r_pub_tac},{campaign_runs}",
            b.name
        ));
        if r_pub_tac > r_pub {
            tac_binds += 1;
        }
        assert!(r_pub_tac >= r_pub, "{}: R_p+t must dominate R_pub", b.name);
    }
    t.print();
    println!("\n(* campaign truncated at max_campaign_runs; the raw TAC requirement is reported)");
    println!(
        "TAC raised the requirement beyond MBPTA convergence for {tac_binds}/11 benchmarks \
         (paper: 8/11)."
    );
    assert!(tac_binds >= 3, "TAC should bind for several benchmarks");

    // The engine-shaped leftovers: Table 2 rows and a manifest in the
    // artifact store, so `mbcr report --out target/paper_out/table2-runs`
    // summarizes the bench like any run.
    store
        .write_table2(&aggregate_rows(&summaries))
        .expect("write table2");
    store
        .write_manifest(&Json::Obj(vec![
            ("schema".to_string(), mbcr_engine::SCHEMA.into()),
            ("bench".to_string(), "table2_runs".into()),
            (
                "counts".to_string(),
                Json::Obj(vec![
                    (
                        "executed".to_string(),
                        Json::UInt(
                            records
                                .iter()
                                .filter(|r| r.status == JobStatus::Executed)
                                .count() as u64,
                        ),
                    ),
                    (
                        "skipped".to_string(),
                        Json::UInt(
                            records
                                .iter()
                                .filter(|r| r.status == JobStatus::Skipped)
                                .count() as u64,
                        ),
                    ),
                    ("failed".to_string(), Json::UInt(0)),
                ]),
            ),
            ("jobs".to_string(), Serialize::to_json(&records)),
        ]))
        .expect("write manifest");

    let path = write_csv(
        "table2_runs.csv",
        "benchmark,r_orig,r_pub,r_pub_tac,campaign_runs",
        &rows,
    );
    println!("rows written to {}", path.display());
    println!("artifact store at {}", store.root().display());
}
