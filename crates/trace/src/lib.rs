//! Address traces and memory access sequences.
//!
//! Everything in the DAC'18 paper is formulated over *sequences of memory
//! addresses*: PUB inserts accesses into them (`ins(M, x)`), TAC analyses them
//! for conflict groups, and the cache simulator replays them. This crate is
//! the shared vocabulary:
//!
//! * [`Address`], [`LineId`], [`Access`], [`AccessKind`], [`Trace`] — concrete
//!   byte-addressed traces as emitted by the IR interpreter;
//! * [`SymSeq`] — symbolic sequences written like the paper's examples
//!   (`{ABCA}`, `{ABCDEA}^1000`), with the [`SymSeq::ins`] operator and
//!   supersequence checks;
//! * [`scs`] — shortest common supersequence, the minimal
//!   upper-bounding merge that PUB applies to sibling branches;
//! * [`analysis`] — reuse distances, stack distances and interleaving
//!   statistics, the inputs of TAC's conflict-group discovery.
//!
//! # Examples
//!
//! The paper's Section 2 example: merging the `if` branch `{ABCA}` with the
//! `else` branch `{BACA}` produces the upper-bound `{ABACA}`:
//!
//! ```
//! use mbcr_trace::{scs::scs2, SymSeq};
//!
//! let m_if: SymSeq = "ABCA".parse()?;
//! let m_else: SymSeq = "BACA".parse()?;
//! let m_pub = scs2(&m_if, &m_else);
//! assert_eq!(m_pub.len(), 5); // |ABACA| — minimal supersequence length
//! assert!(m_pub.is_supersequence_of(&m_if));
//! assert!(m_pub.is_supersequence_of(&m_else));
//! # Ok::<(), mbcr_trace::ParseSymSeqError>(())
//! ```

mod access;
pub mod analysis;
pub mod scs;
mod symbolic;

pub use access::{Access, AccessKind, Address, LineId, Trace};
pub use symbolic::{ParseSymSeqError, SymSeq, Symbol};
