//! Code layout: assigning instruction addresses to statements.
//!
//! Instruction-cache behaviour depends on where code lives in memory. The
//! layouter walks the statement tree in source order and assigns every
//! statement an [`InstrSpan`] — a run of [`INSTR_BYTES`]-byte instruction
//! slots — mirroring how a simple compiler would emit straight-line code:
//! a conditional's header (compare + branch) is followed by the then-branch,
//! then the else-branch; loop headers precede their bodies and are re-fetched
//! on every iteration check.
//!
//! The layout also assigns each conditional and loop a stable pre-order id,
//! used by path records ([`crate::PathRecord`]).

use crate::program::{Program, CODE_BASE, INSTR_BYTES};
use crate::stmt::Stmt;

/// Cache-line size of the code layout.
pub const CODE_ALIGN: u64 = 32;

/// Instruction slots per cache line.
pub const INSTRS_PER_LINE: u32 = (CODE_ALIGN / INSTR_BYTES) as u32;

// Every statement span is quantized to whole cache lines (its instruction
// count rounded up to a multiple of INSTRS_PER_LINE). Consequences that the
// PUB soundness argument relies on:
//
// * all spans start line-aligned and the layout has no gaps;
// * a statement of `k` instructions always fetches exactly `ceil(k/8)`
//   fresh lines — regardless of whether it is real code or a PUB-inserted
//   Touch/Nop with the same count;
// * therefore two branches whose token sequences have equal per-token
//   instruction counts produce *identical* instruction-line access
//   patterns (over their own, distinct lines), which under random
//   placement makes their I-cache behaviour identically distributed
//   (exchangeability of distinct lines).

/// A contiguous run of instruction slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrSpan {
    /// Byte address of the first instruction.
    pub addr: u64,
    /// Number of instructions.
    pub count: u32,
}

impl InstrSpan {
    /// The byte address of instruction `i` within the span (clamped to the
    /// last instruction, which keeps emission total even if an analysis
    /// undercounts).
    #[inline]
    #[must_use]
    pub fn instr_addr(&self, i: u32) -> u64 {
        let i = if self.count == 0 {
            0
        } else {
            i.min(self.count - 1)
        };
        self.addr + u64::from(i) * INSTR_BYTES
    }

    /// End address (exclusive).
    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr + u64::from(self.count) * INSTR_BYTES
    }
}

/// Layout information for one statement, mirroring the statement tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutNode {
    /// A straight-line statement (assign/store/touch/nop).
    Leaf(InstrSpan),
    /// An `if`: header (condition + branch), then both branch bodies.
    If {
        /// Pre-order conditional id (shared numbering with loops).
        id: u32,
        /// Condition evaluation + branch instructions.
        header: InstrSpan,
        /// Layout of the then-branch statements.
        then_branch: Vec<LayoutNode>,
        /// Layout of the else-branch statements.
        else_branch: Vec<LayoutNode>,
    },
    /// A `while`: header is fetched on every iteration check.
    While {
        /// Pre-order id.
        id: u32,
        /// Condition evaluation + branch instructions.
        header: InstrSpan,
        /// Body layout.
        body: Vec<LayoutNode>,
    },
    /// A `for`: `init` runs once, `iter` (compare + increment) on every
    /// check.
    For {
        /// Pre-order id.
        id: u32,
        /// Initialization instructions (bounds evaluation).
        init: InstrSpan,
        /// Per-iteration compare/increment instruction.
        iter: InstrSpan,
        /// Body layout.
        body: Vec<LayoutNode>,
    },
}

/// The code layout of a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// One node per top-level statement.
    pub nodes: Vec<LayoutNode>,
    /// First address past the generated code.
    pub code_end: u64,
    /// Total number of conditionals and loops (= number of assigned ids).
    pub construct_count: u32,
}

/// Computes the deterministic code layout of a program.
///
/// # Examples
///
/// ```
/// use mbcr_ir::{layout_program, Expr, ProgramBuilder, Stmt};
/// let mut b = ProgramBuilder::new("t");
/// let x = b.var("x");
/// b.push(Stmt::Assign(x, Expr::c(1)));
/// let p = b.build().unwrap();
/// let l = layout_program(&p);
/// assert_eq!(l.nodes.len(), 1);
/// ```
#[must_use]
pub fn layout_program(p: &Program) -> Layout {
    let mut pc = CODE_BASE;
    let mut next_id = 0u32;
    let nodes = layout_stmts(p.body(), &mut pc, &mut next_id);
    Layout {
        nodes,
        code_end: pc,
        construct_count: next_id,
    }
}

fn take_span(pc: &mut u64, count: u32) -> InstrSpan {
    // Line quantization (see the module notes above).
    let count = count.next_multiple_of(INSTRS_PER_LINE.max(1));
    let span = InstrSpan { addr: *pc, count };
    *pc += u64::from(count) * INSTR_BYTES;
    span
}

fn layout_stmts(stmts: &[Stmt], pc: &mut u64, next_id: &mut u32) -> Vec<LayoutNode> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {
                LayoutNode::Leaf(take_span(pc, s.own_instr_count()))
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let id = *next_id;
                *next_id += 1;
                let header = take_span(pc, s.own_instr_count());
                // Sibling branches are *overlaid*: both start at the same
                // address, and the layout continues after the longer one.
                // Only one branch executes per visit, so overlapping their
                // address ranges is the model equivalent of PUB's "branches
                // aligned to equivalent cache resources": after PUB
                // equalizes the instruction counts, the fetch streams of
                // both branch choices become *identical*, making the branch
                // decision invisible to the instruction cache.
                let start = *pc;
                let then_nodes = layout_stmts(then_branch, pc, next_id);
                let then_end = *pc;
                *pc = start;
                let else_nodes = layout_stmts(else_branch, pc, next_id);
                *pc = (*pc).max(then_end);
                LayoutNode::If {
                    id,
                    header,
                    then_branch: then_nodes,
                    else_branch: else_nodes,
                }
            }
            Stmt::While { body, .. } => {
                let id = *next_id;
                *next_id += 1;
                let header = take_span(pc, s.own_instr_count());
                let body_nodes = layout_stmts(body, pc, next_id);
                LayoutNode::While {
                    id,
                    header,
                    body: body_nodes,
                }
            }
            Stmt::For { body, .. } => {
                let id = *next_id;
                *next_id += 1;
                let init = take_span(pc, s.own_instr_count());
                // Increment + compare/branch per iteration check.
                let iter = take_span(pc, 2);
                let body_nodes = layout_stmts(body, pc, next_id);
                LayoutNode::For {
                    id,
                    init,
                    iter,
                    body: body_nodes,
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;

    #[test]
    fn spans_are_contiguous_and_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(a, Expr::c(0)))); // 2 instrs
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)), // 1 instr header
            vec![Stmt::Assign(x, Expr::c(1))],
            vec![Stmt::Assign(x, Expr::c(2)), Stmt::Nop { count: 3 }],
        ));
        let p = b.build().unwrap();
        let l = layout_program(&p);

        let LayoutNode::Leaf(first) = &l.nodes[0] else {
            panic!("leaf expected")
        };
        // x = a[0] is 4 instructions, quantized to one full line (8 slots).
        assert_eq!((first.addr, first.count), (CODE_BASE, 8));

        let LayoutNode::If {
            id,
            header,
            then_branch,
            else_branch,
        } = &l.nodes[1]
        else {
            panic!("if expected")
        };
        assert_eq!(*id, 0);
        assert_eq!(header.addr, first.end());
        let LayoutNode::Leaf(t0) = &then_branch[0] else {
            panic!()
        };
        assert_eq!(t0.addr, header.end(), "then-branch follows the header");
        let LayoutNode::Leaf(e0) = &else_branch[0] else {
            panic!()
        };
        assert_eq!(e0.addr, t0.addr, "else-branch overlays the then-branch");
        let LayoutNode::Leaf(e1) = &else_branch[1] else {
            panic!()
        };
        assert_eq!((e1.addr, e1.count), (e0.end(), 8));
        assert_eq!(l.code_end, e1.end());
        assert_eq!(l.construct_count, 1);
    }

    #[test]
    fn for_gets_init_and_iter_spans() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(4),
            4,
            vec![Stmt::Nop { count: 1 }],
        ));
        let p = b.build().unwrap();
        let l = layout_program(&p);
        let LayoutNode::For {
            init, iter, body, ..
        } = &l.nodes[0]
        else {
            panic!()
        };
        assert_eq!(init.count, 8, "li+li+init, quantized to one line");
        assert_eq!(iter.count, 8, "inc+cmp, quantized to one line");
        assert_eq!(iter.addr, init.end());
        let LayoutNode::Leaf(b0) = &body[0] else {
            panic!()
        };
        assert_eq!(b0.addr, iter.end());
    }

    #[test]
    fn ids_are_preorder() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::while_(
            Expr::var(x).lt(Expr::c(2)),
            2,
            vec![Stmt::if_(Expr::var(x).gt(Expr::c(0)), vec![], vec![])],
        ));
        b.push(Stmt::if_(Expr::var(x).gt(Expr::c(1)), vec![], vec![]));
        let p = b.build().unwrap();
        let l = layout_program(&p);
        let LayoutNode::While { id: w, body, .. } = &l.nodes[0] else {
            panic!()
        };
        let LayoutNode::If { id: inner, .. } = &body[0] else {
            panic!()
        };
        let LayoutNode::If { id: outer2, .. } = &l.nodes[1] else {
            panic!()
        };
        assert_eq!((*w, *inner, *outer2), (0, 1, 2));
        assert_eq!(l.construct_count, 3);
    }

    #[test]
    fn instr_addr_clamps() {
        let s = InstrSpan {
            addr: 100,
            count: 2,
        };
        assert_eq!(s.instr_addr(0), 100);
        assert_eq!(s.instr_addr(1), 104);
        assert_eq!(s.instr_addr(9), 104, "clamped to last slot");
    }
}
