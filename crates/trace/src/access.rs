//! Concrete byte-addressed traces.

use std::fmt;

/// A byte address in the simulated memory space.
///
/// # Examples
///
/// ```
/// use mbcr_trace::Address;
/// let a = Address(0x1040);
/// assert_eq!(a.line(32).0, 0x1040 / 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// Returns the cache line this address falls into for the given
    /// `line_size` (bytes).
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    #[inline]
    #[must_use]
    pub fn line(self, line_size: u64) -> LineId {
        assert!(line_size > 0, "line_size must be positive");
        LineId(self.0 / line_size)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A memory-line identifier (address divided by the line size).
///
/// Cache behaviour — and therefore everything TAC reasons about — only
/// depends on which *line* an access touches, so most analyses work on
/// `LineId` streams rather than raw addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineId(pub u64);

impl mbcr_json::Serialize for LineId {
    fn to_json(&self) -> mbcr_json::Json {
        mbcr_json::Json::UInt(self.0)
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch (routed to the IL1 cache).
    InstrFetch,
    /// A data load (routed to the DL1 cache).
    Read,
    /// A data store (routed to the DL1 cache; write-allocate).
    Write,
}

impl AccessKind {
    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }
}

/// One memory access: an address plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The byte address touched.
    pub addr: Address,
    /// Fetch, read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Creates an instruction fetch access.
    #[must_use]
    pub fn fetch(addr: u64) -> Self {
        Self {
            addr: Address(addr),
            kind: AccessKind::InstrFetch,
        }
    }

    /// Creates a data read access.
    #[must_use]
    pub fn read(addr: u64) -> Self {
        Self {
            addr: Address(addr),
            kind: AccessKind::Read,
        }
    }

    /// Creates a data write access.
    #[must_use]
    pub fn write(addr: u64) -> Self {
        Self {
            addr: Address(addr),
            kind: AccessKind::Write,
        }
    }
}

/// An ordered sequence of memory accesses, as produced by one program run.
///
/// # Examples
///
/// ```
/// use mbcr_trace::{Access, Trace};
/// let mut t = Trace::new();
/// t.push(Access::fetch(0x1000));
/// t.push(Access::read(0x8000));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.data_accesses().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    accesses: Vec<Access>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            accesses: Vec::with_capacity(capacity),
        }
    }

    /// Appends one access.
    #[inline]
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Number of accesses in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` if the trace contains no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over all accesses in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// Returns the accesses as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Access] {
        &self.accesses
    }

    /// Iterates over the data (read/write) accesses only.
    pub fn data_accesses(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.kind.is_data())
    }

    /// Iterates over the instruction fetches only.
    pub fn instr_fetches(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| !a.kind.is_data())
    }

    /// Projects the trace onto cache lines of the given size, keeping order.
    #[must_use]
    pub fn lines(&self, line_size: u64) -> Vec<LineId> {
        self.accesses
            .iter()
            .map(|a| a.addr.line(line_size))
            .collect()
    }

    /// Projects only the data accesses onto cache lines.
    #[must_use]
    pub fn data_lines(&self, line_size: u64) -> Vec<LineId> {
        self.data_accesses()
            .map(|a| a.addr.line(line_size))
            .collect()
    }

    /// Projects only the instruction fetches onto cache lines.
    #[must_use]
    pub fn instr_lines(&self, line_size: u64) -> Vec<LineId> {
        self.instr_fetches()
            .map(|a| a.addr.line(line_size))
            .collect()
    }

    /// Number of distinct lines touched (the cache footprint).
    #[must_use]
    pub fn unique_lines(&self, line_size: u64) -> usize {
        let mut lines = self.lines(line_size);
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Returns `true` if `self` is a (not necessarily contiguous)
    /// supersequence of `other`: `other` can be obtained from `self` by
    /// deleting accesses. This is the PUB soundness relation: the pubbed
    /// trace must be obtainable from each original path trace by insertions
    /// only.
    #[must_use]
    pub fn is_supersequence_of(&self, other: &Trace) -> bool {
        let mut it = other.accesses.iter();
        let mut need = it.next();
        for a in &self.accesses {
            match need {
                None => return true,
                Some(n) if a == n => need = it.next(),
                Some(_) => {}
            }
        }
        need.is_none()
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Self {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_to_line() {
        assert_eq!(Address(0).line(32), LineId(0));
        assert_eq!(Address(31).line(32), LineId(0));
        assert_eq!(Address(32).line(32), LineId(1));
        assert_eq!(Address(0x1040).line(32), LineId(0x82));
    }

    #[test]
    #[should_panic(expected = "line_size must be positive")]
    fn zero_line_size_panics() {
        let _ = Address(0).line(0);
    }

    #[test]
    fn trace_projections() {
        let t: Trace = [
            Access::fetch(0),
            Access::read(64),
            Access::fetch(4),
            Access::write(96),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.data_accesses().count(), 2);
        assert_eq!(t.instr_fetches().count(), 2);
        assert_eq!(
            t.lines(32),
            vec![LineId(0), LineId(2), LineId(0), LineId(3)]
        );
        assert_eq!(t.data_lines(32), vec![LineId(2), LineId(3)]);
        assert_eq!(t.instr_lines(32), vec![LineId(0), LineId(0)]);
        assert_eq!(t.unique_lines(32), 3);
    }

    #[test]
    fn supersequence_relation() {
        let small: Trace = [Access::read(0), Access::read(64)].into_iter().collect();
        let big: Trace = [Access::read(0), Access::fetch(4), Access::read(64)]
            .into_iter()
            .collect();
        assert!(big.is_supersequence_of(&small));
        assert!(!small.is_supersequence_of(&big));
        assert!(big.is_supersequence_of(&big), "reflexive");
        assert!(
            big.is_supersequence_of(&Trace::new()),
            "empty is subsequence"
        );
    }

    #[test]
    fn supersequence_respects_order() {
        let ab: Trace = [Access::read(0), Access::read(64)].into_iter().collect();
        let ba: Trace = [Access::read(64), Access::read(0)].into_iter().collect();
        assert!(!ab.is_supersequence_of(&ba));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address(0x40).to_string(), "0x40");
        assert_eq!(LineId(2).to_string(), "L0x2");
    }
}
