//! Cross-crate evidence for PUB's soundness claims (paper Equation 1,
//! Observations 1–3): every path of the pubbed program upper-bounds every
//! path of the original program on the time-randomized platform.

use mbcr::prelude::*;
use mbcr_cpu::campaign_parallel;
use mbcr_ir::execute;
use mbcr_pub::shape::{data_shape, shape_summary};

const PROBES: [f64; 4] = [0.5, 0.1, 0.01, 0.001];

fn eccdf_of(cfg: &PlatformConfig, trace: &mbcr_trace::Trace, runs: usize, seed: u64) -> Eccdf {
    Eccdf::from_u64(&campaign_parallel(cfg, trace, runs, seed, 4))
}

/// Figure 2 in miniature: every pubbed bs path dominates every original bs
/// path at the probed exceedance levels.
#[test]
fn every_pubbed_bs_path_dominates_every_original_path() {
    let platform = PlatformConfig::paper_default();
    let program = mbcr_malardalen::bs::program();
    let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub");
    let vectors = mbcr_malardalen::bs::input_vectors();
    let runs = 4_000;

    let orig: Vec<Eccdf> = vectors
        .iter()
        .map(|v| {
            eccdf_of(
                &platform,
                &execute(&program, &v.inputs).unwrap().trace,
                runs,
                11,
            )
        })
        .collect();
    let pubs: Vec<Eccdf> = vectors
        .iter()
        .map(|v| {
            eccdf_of(
                &platform,
                &execute(&pubbed.program, &v.inputs).unwrap().trace,
                runs,
                11,
            )
        })
        .collect();

    for (i, p) in pubs.iter().enumerate() {
        for (j, o) in orig.iter().enumerate() {
            assert!(
                p.dominates(o, &PROBES, 0.0),
                "pubbed path {i} must dominate original path {j}"
            );
        }
    }
}

/// All pubbed paths emit the same data-array shape and the same instruction
/// count — the structural half of the exchangeability argument.
#[test]
fn pubbed_paths_share_one_architectural_shape() {
    let program = mbcr_malardalen::bs::program();
    let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub");
    let runs: Vec<_> = mbcr_malardalen::bs::input_vectors()
        .iter()
        .map(|v| execute(&pubbed.program, &v.inputs).unwrap())
        .collect();

    let first_shape = data_shape(&runs[0].trace, &pubbed.program);
    let first_summary = shape_summary(&runs[0].trace, &pubbed.program);
    for r in &runs[1..] {
        assert_eq!(data_shape(&r.trace, &pubbed.program), first_shape);
        let s = shape_summary(&r.trace, &pubbed.program);
        assert_eq!(
            s.fetches, first_summary.fetches,
            "equalized instruction counts"
        );
        assert_eq!(s.per_array, first_summary.per_array);
    }
}

/// Per-path supersequence: the pubbed trace of a path embeds the original
/// trace of the *same* path (Equation 2: pub = chain of insertions).
#[test]
fn pubbed_trace_embeds_original_trace_per_path() {
    for name in ["bs", "cnt", "fir", "janne", "crc"] {
        let b = mbcr_malardalen::by_name(name).expect("benchmark");
        let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
        for v in &b.input_vectors {
            let orig = execute(&b.program, &v.inputs).unwrap().trace;
            let pubt = execute(&pubbed.program, &v.inputs).unwrap().trace;
            // Data-line subsequence check (instruction addresses legitimately
            // differ — branch bodies move when code is inserted).
            let ol = orig.data_lines(32);
            let pl = pubt.data_lines(32);
            let mut it = ol.iter();
            let mut need = it.next();
            for l in &pl {
                if Some(l) == need {
                    need = it.next();
                }
            }
            assert!(
                need.is_none(),
                "{name}:{} pubbed data must embed original",
                v.name
            );
            assert!(
                pubt.len() >= orig.len(),
                "{name}:{} pub never shrinks",
                v.name
            );
        }
    }
}

/// Mean execution time of the pubbed program is at least the original's for
/// every path of every multipath benchmark (first-moment dominance).
#[test]
fn pubbed_mean_time_dominates_original_per_benchmark() {
    let platform = PlatformConfig::paper_default();
    for name in ["bs", "cnt", "fir", "janne", "crc"] {
        let b = mbcr_malardalen::by_name(name).expect("benchmark");
        let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
        for v in &b.input_vectors {
            let orig = execute(&b.program, &v.inputs).unwrap().trace;
            let pubt = execute(&pubbed.program, &v.inputs).unwrap().trace;
            let mo = eccdf_of(&platform, &orig, 3_000, 23).mean();
            let mp = eccdf_of(&platform, &pubt, 3_000, 23).mean();
            // 0.5% slack: the two campaigns draw different placements, so
            // the comparison carries Monte-Carlo error of about sigma/sqrt(n).
            assert!(
                mp >= mo * 0.995,
                "{name}:{}: pubbed mean {mp:.1} must be >= original mean {mo:.1}",
                v.name
            );
        }
    }
}

/// Single-path programs are (nearly) untouched by PUB: no conditionals, no
/// widening, identical traces.
#[test]
fn single_path_programs_are_untouched() {
    for name in ["edn", "jfdc", "matmult", "fdct"] {
        let b = mbcr_malardalen::by_name(name).expect("benchmark");
        let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
        assert_eq!(
            pubbed.report.widened_touches, 0,
            "{name}: no taint, no widening"
        );
        assert_eq!(
            pubbed.report.total_inserted_instrs(),
            0,
            "{name}: no conditionals, nothing to equalize"
        );
        let orig = execute(&b.program, &b.default_input).unwrap().trace;
        let pubt = execute(&pubbed.program, &b.default_input).unwrap().trace;
        assert_eq!(orig.len(), pubt.len(), "{name}: trace length preserved");
    }
}

/// The pubbed program still computes the same results (touches are
/// functionally innocuous).
#[test]
fn pub_preserves_functional_semantics() {
    // bs: the found value must be identical.
    let program = mbcr_malardalen::bs::program();
    let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub");
    let fvalue = program.var_by_name("fvalue").expect("fvalue");
    for v in mbcr_malardalen::bs::input_vectors() {
        let o = execute(&program, &v.inputs).unwrap();
        let p = execute(&pubbed.program, &v.inputs).unwrap();
        assert_eq!(o.state.var(fvalue), p.state.var(fvalue), "{}", v.name);
    }
    // insertsort: the array must still be sorted.
    let b = mbcr_malardalen::insertsort::benchmark();
    let pubbed = pub_transform(&b.program, &PubConfig::paper()).expect("pub");
    let arr = b.program.array_by_name("a").expect("a");
    for v in &b.input_vectors {
        let p = execute(&pubbed.program, &v.inputs).unwrap();
        let out = p.state.array(arr);
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "{}: {out:?}", v.name);
    }
}

/// Loop padding extends dominance to inputs that do NOT trigger max loop
/// bounds (the documented extension).
#[test]
fn loop_padding_equalizes_short_paths() {
    let platform = PlatformConfig::paper_default();
    let b = mbcr_malardalen::insertsort::benchmark();
    let padded = pub_transform(&b.program, &PubConfig::with_loop_padding()).expect("pub");
    // Sorted input (minimal iterations) vs reversed (maximal): padded traces
    // must have identical length.
    let sorted = &b.input_vectors[1];
    let reversed = &b.input_vectors[0];
    let t_sorted = execute(&padded.program, &sorted.inputs).unwrap().trace;
    let t_rev = execute(&padded.program, &reversed.inputs).unwrap().trace;
    assert_eq!(
        t_sorted.len(),
        t_rev.len(),
        "padded loops equalize path lengths"
    );

    let e_sorted = eccdf_of(&platform, &t_sorted, 2_000, 31);
    let e_rev = eccdf_of(&platform, &t_rev, 2_000, 31);
    // Identical shapes -> identically distributed; allow small MC slack.
    for p in PROBES {
        let (a, bq) = (e_sorted.quantile(p), e_rev.quantile(p));
        assert!((a - bq).abs() / bq < 0.05, "p={p}: {a} vs {bq}");
    }
}
