//! The cache simulator proper.

use mbcr_rng::{derive_seed, Rng64, Xoshiro256PlusPlus};
use mbcr_trace::{Address, LineId};

use crate::{CacheGeometry, PlacementPolicy, ReplacementPolicy};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

impl AccessOutcome {
    /// Returns `true` on [`AccessOutcome::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Hit/miss counters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `0` for an empty run.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative cache with configurable placement and replacement.
///
/// The simulator tracks only tags (line ids) — data values are irrelevant to
/// timing. State is flat `Vec`s for speed: the measurement campaigns replay
/// millions of accesses.
///
/// # Examples
///
/// ```
/// use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
/// use mbcr_trace::LineId;
///
/// let mut c = Cache::new(
///     CacheGeometry::paper_l1(),
///     PlacementPolicy::RandomHash,
///     ReplacementPolicy::Random,
///     42,
/// );
/// assert!(!c.access_line(LineId(7)).is_hit()); // cold miss
/// assert!(c.access_line(LineId(7)).is_hit()); // now cached
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    placement: PlacementPolicy,
    replacement: ReplacementPolicy,
    placement_seed: u64,
    rng: Xoshiro256PlusPlus,
    /// Tag store: `tags[set * ways + way]`, [`INVALID`] when empty.
    tags: Vec<u64>,
    /// Per-way metadata: LRU timestamps or FIFO insertion order.
    meta: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache, deriving the placement seed and the replacement
    /// random stream from `seed`.
    #[must_use]
    pub fn new(
        geometry: CacheGeometry,
        placement: PlacementPolicy,
        replacement: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        let entries = (geometry.lines()) as usize;
        Self {
            geometry,
            placement,
            replacement,
            placement_seed: derive_seed(seed, 0),
            rng: Xoshiro256PlusPlus::from_seed(derive_seed(seed, 1)),
            tags: vec![INVALID; entries],
            meta: vec![0; entries],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The placement policy.
    #[must_use]
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// The replacement policy.
    #[must_use]
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Hit/miss counters accumulated since the last [`reset_stats`].
    ///
    /// [`reset_stats`]: Cache::reset_stats
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the hit/miss counters (cache contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines (the paper flushes caches before each run).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.meta.fill(0);
        self.clock = 0;
    }

    /// Flushes and re-randomizes the cache for a new measurement run:
    /// fresh placement hash seed, fresh replacement stream, zeroed stats.
    ///
    /// On a [`PlacementPolicy::Modulo`] cache only the flush has an effect —
    /// deterministic caches show no run-to-run layout variation, which is the
    /// contrast the paper draws.
    pub fn reseed(&mut self, seed: u64) {
        self.placement_seed = derive_seed(seed, 0);
        self.rng = Xoshiro256PlusPlus::from_seed(derive_seed(seed, 1));
        self.flush();
        self.reset_stats();
    }

    /// The set index `line` currently maps to.
    #[inline]
    #[must_use]
    pub fn set_of(&self, line: LineId) -> usize {
        self.placement
            .set_of(line, self.geometry.sets(), self.placement_seed)
    }

    /// Accesses a byte address (convenience over [`access_line`]).
    ///
    /// [`access_line`]: Cache::access_line
    pub fn access(&mut self, addr: Address) -> AccessOutcome {
        self.access_line(addr.line(self.geometry.line_size()))
    }

    /// Accesses a line: returns hit/miss, updating contents, replacement
    /// state and statistics.
    pub fn access_line(&mut self, line: LineId) -> AccessOutcome {
        let ways = self.geometry.ways() as usize;
        let set = self.set_of(line);
        let base = set * ways;
        self.clock += 1;

        // Hit check.
        for w in 0..ways {
            if self.tags[base + w] == line.0 {
                self.stats.hits += 1;
                if self.replacement == ReplacementPolicy::Lru {
                    self.meta[base + w] = self.clock;
                }
                return AccessOutcome::Hit;
            }
        }

        // Miss: fill an empty way if available, otherwise evict per policy.
        self.stats.misses += 1;
        let victim = match (0..ways).find(|&w| self.tags[base + w] == INVALID) {
            Some(w) => w,
            None => match self.replacement {
                ReplacementPolicy::Random => self.rng.below_usize(ways),
                // LRU evicts the smallest timestamp; FIFO the smallest
                // insertion order — both are the min over `meta`.
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..ways)
                    .min_by_key(|&w| self.meta[base + w])
                    .expect("ways > 0"),
            },
        };
        self.tags[base + victim] = line.0;
        self.meta[base + victim] = self.clock;
        AccessOutcome::Miss
    }

    /// Returns `true` if `line` is currently cached (no state change).
    #[must_use]
    pub fn contains(&self, line: LineId) -> bool {
        let ways = self.geometry.ways() as usize;
        let base = self.set_of(line) * ways;
        (0..ways).any(|w| self.tags[base + w] == line.0)
    }

    /// Number of valid lines currently in the set `line` maps to.
    #[must_use]
    pub fn set_occupancy(&self, line: LineId) -> usize {
        let ways = self.geometry.ways() as usize;
        let base = self.set_of(line) * ways;
        (0..ways)
            .filter(|&w| self.tags[base + w] != INVALID)
            .count()
    }

    /// Replays a line stream from a flushed state and returns the stats of
    /// just that run (counters are folded into the cumulative stats too).
    pub fn run_lines(&mut self, lines: &[LineId]) -> CacheStats {
        self.flush();
        let before = self.stats;
        for &l in lines {
            self.access_line(l);
        }
        CacheStats {
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_trace::SymSeq;

    fn lines(s: &str) -> Vec<LineId> {
        s.parse::<SymSeq>().unwrap().to_lines()
    }

    fn one_set(ways: u32) -> CacheGeometry {
        CacheGeometry::new(u64::from(ways) * 32, ways, 32).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(
            CacheGeometry::paper_l1(),
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
            1,
        );
        assert_eq!(c.access_line(LineId(5)), AccessOutcome::Miss);
        assert_eq!(c.access_line(LineId(5)), AccessOutcome::Hit);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_section2_counterexample() {
        // 2-way single set, LRU: {ABCA} -> 4 misses, {ABACA} -> 3 misses.
        let mut c = Cache::new(
            one_set(2),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
            0,
        );
        assert_eq!(c.run_lines(&lines("ABCA")).misses, 4);
        assert_eq!(c.run_lines(&lines("ABACA")).misses, 3);
    }

    #[test]
    fn fifo_differs_from_lru() {
        // 2-way single set. Sequence A B A C A:
        // LRU: A(m) B(m) A(h) C(m, evict B) A(h) -> 3 misses.
        // FIFO: A(m) B(m) A(h) C(m, evict A!) A(m, evict B) -> 4 misses.
        let mut lru = Cache::new(
            one_set(2),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
            0,
        );
        let mut fifo = Cache::new(
            one_set(2),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Fifo,
            0,
        );
        assert_eq!(lru.run_lines(&lines("ABACA")).misses, 3);
        assert_eq!(fifo.run_lines(&lines("ABACA")).misses, 4);
    }

    #[test]
    fn working_set_within_ways_never_misses_after_warmup() {
        // 4-way single set: {ABCD}^k has only 4 cold misses under any policy.
        for policy in [
            ReplacementPolicy::Random,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
        ] {
            let mut c = Cache::new(one_set(4), PlacementPolicy::Modulo, policy, 7);
            let s = "ABCD".parse::<SymSeq>().unwrap().repeat(50).to_lines();
            let stats = c.run_lines(&s);
            assert_eq!(stats.misses, 4, "{policy:?}");
            assert_eq!(stats.hits, 196, "{policy:?}");
        }
    }

    #[test]
    fn lru_round_robin_thrashes() {
        // 2-way single set, 3 lines round-robin: LRU always evicts the line
        // about to be used -> every access misses.
        let mut c = Cache::new(
            one_set(2),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
            0,
        );
        let s = "ABC".parse::<SymSeq>().unwrap().repeat(20).to_lines();
        assert_eq!(c.run_lines(&s).misses, 60);
    }

    #[test]
    fn random_replacement_beats_lru_on_round_robin() {
        // Same pattern: random replacement keeps ~some hits in expectation.
        let mut hits = 0u64;
        for seed in 0..200 {
            let mut c = Cache::new(
                one_set(2),
                PlacementPolicy::Modulo,
                ReplacementPolicy::Random,
                seed,
            );
            let s = "ABC".parse::<SymSeq>().unwrap().repeat(20).to_lines();
            hits += c.run_lines(&s).hits;
        }
        assert!(hits > 0, "random replacement should produce some hits");
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = Cache::new(
            CacheGeometry::paper_l1(),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
            0,
        );
        c.access_line(LineId(1));
        assert!(c.contains(LineId(1)));
        c.flush();
        assert!(!c.contains(LineId(1)));
        assert_eq!(c.access_line(LineId(1)), AccessOutcome::Miss);
    }

    #[test]
    fn reseed_changes_random_mapping_but_not_modulo() {
        let g = CacheGeometry::paper_l1();
        let mut random = Cache::new(g, PlacementPolicy::RandomHash, ReplacementPolicy::Random, 1);
        let before: Vec<usize> = (0..200).map(|i| random.set_of(LineId(i))).collect();
        random.reseed(2);
        let after: Vec<usize> = (0..200).map(|i| random.set_of(LineId(i))).collect();
        assert_ne!(before, after);

        let mut modulo = Cache::new(g, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 1);
        let before: Vec<usize> = (0..200).map(|i| modulo.set_of(LineId(i))).collect();
        modulo.reseed(2);
        let after: Vec<usize> = (0..200).map(|i| modulo.set_of(LineId(i))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let g = CacheGeometry::paper_l1();
        let s = "ABCDEFGH".parse::<SymSeq>().unwrap().repeat(100).to_lines();
        let mut a = Cache::new(g, PlacementPolicy::RandomHash, ReplacementPolicy::Random, 9);
        let mut b = Cache::new(g, PlacementPolicy::RandomHash, ReplacementPolicy::Random, 9);
        assert_eq!(a.run_lines(&s), b.run_lines(&s));
    }

    #[test]
    fn occupancy_never_exceeds_ways() {
        let g = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets
        let mut c = Cache::new(g, PlacementPolicy::RandomHash, ReplacementPolicy::Random, 3);
        for i in 0..1000u64 {
            c.access_line(LineId(i % 37));
            assert!(c.set_occupancy(LineId(i % 37)) <= 2);
        }
    }

    #[test]
    fn run_lines_reports_per_run_stats() {
        let mut c = Cache::new(
            one_set(2),
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
            0,
        );
        let first = c.run_lines(&lines("AB"));
        let second = c.run_lines(&lines("AB"));
        assert_eq!(first, second, "run_lines flushes, so runs are identical");
        assert_eq!(c.stats().accesses(), 4, "cumulative stats keep counting");
    }
}
