//! End-to-end exit-code contract of `mbcr lint` and `mbcr paths`: clean
//! benchmarks exit zero, findings and unknown names exit nonzero, and the
//! printed diagnostics carry the stable codes.

use std::process::Command;

fn mbcr(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mbcr"))
        .args(args)
        .output()
        .expect("mbcr binary runs")
}

#[test]
fn lint_all_passes_clean_on_the_shipped_suite() {
    let out = mbcr(&["lint", "--all"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for bench in ["bs", "cnt", "fir", "janne", "crc", "edn", "insertsort"] {
        assert!(
            stdout.contains(&format!("{bench}: ok")),
            "missing {bench} in:\n{stdout}"
        );
    }
}

#[test]
fn lint_unknown_benchmark_exits_two_listing_valid_names() {
    for subcommand in ["lint", "paths", "classify"] {
        let out = mbcr(&[subcommand, "no-such-bench"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{subcommand} should exit 2 on an unknown name"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown benchmark 'no-such-bench'"),
            "{subcommand} stderr:\n{stderr}"
        );
        assert!(
            stderr.contains("bs") && stderr.contains("ns"),
            "{subcommand} should list the valid names:\n{stderr}"
        );
    }
}

#[test]
fn lint_json_emits_the_machine_readable_document() {
    let out = mbcr(&["lint", "bs", "cnt", "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"mbcr-lint/1\""), "{stdout}");
    assert!(stdout.contains("\"findings\": 0"), "{stdout}");
    assert!(
        !stdout.contains("bs: ok"),
        "json must replace the human lines"
    );
}

#[test]
fn lint_without_targets_exits_nonzero() {
    let out = mbcr(&["lint"]);
    assert!(!out.status.success());
}

#[test]
fn classify_reports_the_bs_rollup_and_cross_validates_clean() {
    let out = mbcr(&["classify", "bs", "--limit", "4"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bs @ 4096B-2w-32B:"), "got:\n{stdout}");
    // The pinned rollup for bs at the paper geometry; CI re-asserts the
    // same numbers over `classify --all --format json`.
    assert!(
        stdout.contains("il1: 96 site(s) — AH 84, AM 3, FM 9, NC 0"),
        "got:\n{stdout}"
    );
    assert!(
        stdout.contains("dl1: 2 site(s) — AH 0, AM 0, FM 0, NC 2"),
        "got:\n{stdout}"
    );
    assert!(
        stdout.contains("... (94 more; raise --limit)"),
        "got:\n{stdout}"
    );
    assert!(stdout.contains("cross-validation: ok"), "got:\n{stdout}");
}

#[test]
fn classify_json_carries_sites_rollup_and_empty_diagnostics() {
    let out = mbcr(&["classify", "bs", "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"schema\": \"mbcr-classify/1\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"geometry\": \"4096B-2w-32B\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"findings\": 0"), "{stdout}");
    assert!(stdout.contains("\"class\": \"AH\""), "{stdout}");
    assert!(stdout.contains("\"cache\": \"dl1\""), "{stdout}");
}

#[test]
fn classify_rejects_a_bad_format() {
    let out = mbcr(&["classify", "bs", "--format", "yaml"]);
    // Unknown formats are a usage error (exit 2) since the
    // OutputFormat::from_flags contract landed.
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--format"), "{stderr}");
}

#[test]
fn paths_reports_the_bs_path_space() {
    let out = mbcr(&["paths", "bs", "--limit", "121"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("121 static paths"), "got:\n{stdout}");
    assert!(stdout.contains("8 distinct path(s)"), "got:\n{stdout}");
    assert!(stdout.contains("enumeration (121 paths)"), "got:\n{stdout}");
}

#[test]
fn paths_handles_saturated_spaces() {
    let out = mbcr(&["paths", "janne"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("> 2^128 (saturated)"), "got:\n{stdout}");
    assert!(stdout.contains("coverage n/a"), "got:\n{stdout}");
}
