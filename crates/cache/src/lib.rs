//! Set-associative cache simulator for MBPTA experiments.
//!
//! The platform evaluated in the paper (Section 4) pairs a pipelined in-order
//! core with first-level instruction and data caches that implement **random
//! placement** and **random replacement** — the "MBPTA-compliant" design of
//! Kosmidis et al. This crate simulates such caches, plus the deterministic
//! configurations (modulo placement, LRU/FIFO replacement) needed for the
//! paper's Section 2 contrast: PUB is *unsound* on time-deterministic caches.
//!
//! * [`CacheGeometry`] — size / ways / line size (default: 4 KB, 2-way, 32 B,
//!   as in the paper).
//! * [`PlacementPolicy`] — [`Modulo`](PlacementPolicy::Modulo) or
//!   [`RandomHash`](PlacementPolicy::RandomHash) (a per-run seeded avalanche
//!   hash, giving every line an independent uniform set).
//! * [`ReplacementPolicy`] — [`Random`](ReplacementPolicy::Random),
//!   [`Lru`](ReplacementPolicy::Lru) or [`Fifo`](ReplacementPolicy::Fifo).
//! * [`Cache`] — the simulator; [`Cache::reseed`] flushes and re-randomizes
//!   between runs, exactly like the paper's per-run cache flush + new memory
//!   layout.
//! * [`BatchCache`] — W independent layouts in struct-of-arrays state,
//!   advanced in lockstep so a campaign walks the trace once per W runs.
//! * [`single_set`] — the focused one-set simulation TAC uses to estimate the
//!   miss impact of a conflict group.
//!
//! # Examples
//!
//! The Section 2 counter-example, deterministic part: under a 2-way LRU cache
//! `{ABCA}` misses 4 times but its "upper-bound" `{ABACA}` only 3 — inserting
//! an access *reduced* the execution time, which is why PUB requires
//! time-randomized caches:
//!
//! ```
//! use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
//! use mbcr_trace::SymSeq;
//!
//! let tiny = CacheGeometry::new(64, 2, 32).unwrap(); // one 2-way set
//! let mut lru = Cache::new(tiny, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 0);
//!
//! let orig: SymSeq = "ABCA".parse().unwrap();
//! let pubbed: SymSeq = "ABACA".parse().unwrap();
//!
//! let misses_orig = lru.run_lines(&orig.to_lines()).misses;
//! lru.flush();
//! let misses_pub = lru.run_lines(&pubbed.to_lines()).misses;
//! assert_eq!((misses_orig, misses_pub), (4, 3)); // inserting A *helped* LRU
//! ```

mod batch;
mod cache;
mod geometry;
mod placement;
pub mod single_set;

pub use batch::BatchCache;
pub use cache::{AccessOutcome, Cache, CacheStats};
pub use geometry::{CacheGeometry, GeometryError};
pub use placement::PlacementPolicy;

/// Replacement policy of a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Uniformly random victim way (MBPTA-compliant).
    Random,
    /// Least-recently-used victim (time-deterministic).
    Lru,
    /// First-in-first-out victim (time-deterministic).
    Fifo,
}

impl ReplacementPolicy {
    /// Returns `true` if the policy is time-randomized (usable for MBPTA).
    #[must_use]
    pub fn is_randomized(self) -> bool {
        matches!(self, ReplacementPolicy::Random)
    }
}
