//! Log-bucketed histograms and monotonic counters.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `b`
//! (1 ≤ b ≤ 64) holds values in `[2^(b-1), 2^b - 1]`. That trades ~2×
//! relative precision for fixed memory and wait-free recording, which is
//! the right deal for latency telemetry on hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A wait-free log-bucketed histogram. Recording is a handful of relaxed
/// atomic ops; quantiles are computed from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Safe to call concurrently from any number
    /// of threads; the sum saturates rather than wrapping.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state. Concurrent recording
    /// may skew individual fields against each other by a few in-flight
    /// observations; each field is itself consistent.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts (bucket 0 holds zeros, bucket `b` holds
    /// `[2^(b-1), 2^b - 1]`).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `index` (0, 1, 3, 7, …, `u64::MAX`).
    #[must_use]
    pub fn bucket_upper(index: usize) -> u64 {
        bucket_upper(index)
    }

    /// The value at quantile `q` (0.0 ≤ q ≤ 1.0), reported as the upper
    /// bound of the bucket the quantile falls in, clamped to the observed
    /// maximum — deterministic, and never more than 2× above the true
    /// value. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        bucket_upper(BUCKETS - 1).min(self.max)
    }

    /// Folds `other` into `self`. Merging is commutative and associative:
    /// bucket counts add, extrema take min/max, the sum saturates.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_land_where_documented() {
        // Bucket b covers [2^(b-1), 2^b - 1]; zero has its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for b in 1..64 {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "low edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "high edge of bucket {b}");
            assert!(lo >= if b >= 2 { bucket_upper(b - 1) + 1 } else { 1 });
            assert_eq!(bucket_upper(b), hi);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn zero_and_saturating_durations_record_cleanly() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(s.sum(), u64::MAX);
        assert_eq!(s.buckets()[0], 1);
        assert_eq!(s.buckets()[64], 2);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        // p50 of 1..=100 falls in bucket [32,63]; the rollup reports the
        // bucket's upper bound. Tail quantiles land in bucket [64,127]
        // but clamp to the observed max.
        assert_eq!(s.quantile(0.5), 63);
        assert_eq!(s.quantile(0.99), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        let total = threads * per_thread;
        assert_eq!(s.count(), total);
        assert_eq!(s.buckets().iter().sum::<u64>(), total);
        assert_eq!(s.sum(), total * (total - 1) / 2);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), total - 1);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 5, 1000]);
        let b = mk(&[2, 2, u64::MAX]);
        let c = mk(&[77, 3]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count(), 9);
        assert_eq!(left.min(), 0);
        assert_eq!(left.max(), u64::MAX);
    }
}
