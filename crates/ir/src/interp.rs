//! The trace-emitting interpreter.
//!
//! Executing a program serves two purposes at once:
//!
//! 1. **functional** — compute final variable/array values (used by the
//!    benchmark tests to check the models against their C originals);
//! 2. **architectural** — emit the exact interleaved instruction-fetch and
//!    data-access sequence ([`Trace`]) that the CPU/cache simulator replays
//!    to measure execution times.
//!
//! Loop bounds are *enforced*: exceeding a declared `max_iter` is an error,
//! mirroring the WCET-analysis contract that loop bounds are trusted
//! metadata.

use std::fmt;

use mbcr_trace::{Access, Trace};

use crate::expr::{BinOp, Expr, UnOp};
use crate::layout::{layout_program, InstrSpan, LayoutNode};
use crate::paths::{Decision, PathRecord};
use crate::program::{ArrayId, Program, Var};
use crate::stmt::Stmt;

/// Interpreter limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpConfig {
    /// Abort when the trace grows beyond this many accesses.
    pub max_trace_len: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        Self {
            max_trace_len: 50_000_000,
        }
    }
}

/// Initial values for a run: unset variables are `0`, unset arrays are
/// all-zero with their declared length.
///
/// # Examples
///
/// ```
/// use mbcr_ir::{Inputs, ProgramBuilder};
/// let mut b = ProgramBuilder::new("t");
/// let a = b.array("a", 3);
/// let x = b.var("x");
/// let inputs = Inputs::new().with_var(x, 7).with_array(a, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Inputs {
    vars: Vec<(Var, i64)>,
    arrays: Vec<(ArrayId, Vec<i64>)>,
}

impl Inputs {
    /// No inputs: everything zero-initialized.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a scalar's initial value.
    #[must_use]
    pub fn with_var(mut self, var: Var, value: i64) -> Self {
        self.vars.push((var, value));
        self
    }

    /// Sets an array's initial contents (must match the declared length).
    #[must_use]
    pub fn with_array(mut self, array: ArrayId, values: Vec<i64>) -> Self {
        self.arrays.push((array, values));
        self
    }

    /// The scalar initializers.
    #[must_use]
    pub fn vars(&self) -> &[(Var, i64)] {
        &self.vars
    }

    /// The array initializers.
    #[must_use]
    pub fn arrays(&self) -> &[(ArrayId, Vec<i64>)] {
        &self.arrays
    }
}

/// Machine state: scalar and array values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecState {
    vars: Vec<i64>,
    arrays: Vec<Vec<i64>>,
}

impl ExecState {
    /// Current value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable id is out of range for the program.
    #[must_use]
    pub fn var(&self, v: Var) -> i64 {
        self.vars[v.0 as usize]
    }

    /// Current contents of an array.
    ///
    /// # Panics
    ///
    /// Panics if the array id is out of range for the program.
    #[must_use]
    pub fn array(&self, a: ArrayId) -> &[i64] {
        &self.arrays[a.0 as usize]
    }
}

/// Errors during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Division or remainder by zero.
    DivByZero,
    /// Array index outside the declared length.
    IndexOutOfBounds {
        /// Offending array.
        array: ArrayId,
        /// Offending index value.
        index: i64,
    },
    /// A `while` loop ran more iterations than its declared bound.
    LoopBoundExceeded {
        /// Construct id of the loop.
        id: u32,
        /// The declared bound.
        max_iter: u32,
    },
    /// A `for` range exceeds the loop's declared bound.
    ForRangeExceedsBound {
        /// Construct id of the loop.
        id: u32,
        /// Number of iterations the evaluated range implies.
        span: i64,
        /// The declared bound.
        max_iter: u32,
    },
    /// The emitted trace exceeded [`InterpConfig::max_trace_len`].
    TraceLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An input array's length differs from the declaration.
    ArrayLengthMismatch {
        /// Offending array.
        array: ArrayId,
        /// Declared element count.
        expected: u32,
        /// Provided element count.
        got: usize,
    },
    /// Two distinct [`crate::PathRecord`]s share one FNV fingerprint
    /// ([`crate::PathRecord::path_id`]) — grouping by fingerprint would
    /// silently merge different paths.
    PathIdCollision {
        /// The colliding 64-bit fingerprint.
        path_id: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivByZero => write!(f, "division by zero"),
            InterpError::IndexOutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds for arr{}", array.0)
            }
            InterpError::LoopBoundExceeded { id, max_iter } => {
                write!(
                    f,
                    "loop {id} exceeded its declared bound of {max_iter} iterations"
                )
            }
            InterpError::ForRangeExceedsBound { id, span, max_iter } => {
                write!(
                    f,
                    "for-loop {id} range of {span} iterations exceeds bound {max_iter}"
                )
            }
            InterpError::TraceLimitExceeded { limit } => {
                write!(f, "trace exceeded the configured limit of {limit} accesses")
            }
            InterpError::ArrayLengthMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "input for arr{} has {got} elements, declaration says {expected}",
                array.0
            ),
            InterpError::PathIdCollision { path_id } => write!(
                f,
                "distinct paths collide on fingerprint {path_id:#018x}; use PathSpace ids"
            ),
        }
    }
}

impl std::error::Error for InterpError {}

/// The result of one execution: the emitted trace, the control-flow path and
/// the final machine state.
#[derive(Debug, Clone)]
pub struct Run {
    /// Interleaved instruction fetches and data accesses, in order.
    pub trace: Trace,
    /// Which way every conditional went; how often every loop iterated.
    pub path: PathRecord,
    /// Final variable and array values.
    pub state: ExecState,
}

/// Executes `program` on `inputs` with default limits.
///
/// # Errors
///
/// See [`InterpError`].
pub fn execute(program: &Program, inputs: &Inputs) -> Result<Run, InterpError> {
    execute_with(program, inputs, &InterpConfig::default())
}

/// Executes `program` on `inputs` with explicit limits.
///
/// # Errors
///
/// See [`InterpError`].
pub fn execute_with(
    program: &Program,
    inputs: &Inputs,
    cfg: &InterpConfig,
) -> Result<Run, InterpError> {
    let layout = layout_program(program);
    let mut vars = vec![0i64; program.var_count()];
    for &(v, val) in inputs.vars() {
        vars[v.0 as usize] = val;
    }
    let mut arrays: Vec<Vec<i64>> = program
        .arrays()
        .iter()
        .map(|d| vec![0i64; d.len as usize])
        .collect();
    for (a, values) in inputs.arrays() {
        let decl = &program.arrays()[a.0 as usize];
        if values.len() != decl.len as usize {
            return Err(InterpError::ArrayLengthMismatch {
                array: *a,
                expected: decl.len,
                got: values.len(),
            });
        }
        arrays[a.0 as usize] = values.clone();
    }
    let mut interp = Interp {
        program,
        cfg: *cfg,
        state: ExecState { vars, arrays },
        trace: Trace::new(),
        path: PathRecord::new(),
    };
    interp.exec_stmts(program.body(), &layout.nodes)?;
    Ok(Run {
        trace: interp.trace,
        path: interp.path,
        state: interp.state,
    })
}

/// Emission cursor over one statement's instruction span: interleaves the
/// span's fetches with the data accesses of expression evaluation, then
/// [`finish`](Cursor::finish)es the remaining slots.
struct Cursor {
    span: InstrSpan,
    next: u32,
}

impl Cursor {
    fn new(span: InstrSpan) -> Self {
        Self { span, next: 0 }
    }

    fn fetch(&mut self, trace: &mut Trace) {
        if self.next < self.span.count {
            trace.push(Access::fetch(self.span.instr_addr(self.next)));
            self.next += 1;
        }
    }

    fn finish(mut self, trace: &mut Trace) {
        while self.next < self.span.count {
            trace.push(Access::fetch(self.span.instr_addr(self.next)));
            self.next += 1;
        }
    }
}

struct Interp<'p> {
    program: &'p Program,
    cfg: InterpConfig,
    state: ExecState,
    trace: Trace,
    path: PathRecord,
}

impl Interp<'_> {
    fn check_limit(&self) -> Result<(), InterpError> {
        if self.trace.len() > self.cfg.max_trace_len {
            Err(InterpError::TraceLimitExceeded {
                limit: self.cfg.max_trace_len,
            })
        } else {
            Ok(())
        }
    }

    fn eval(&mut self, e: &Expr, cur: &mut Cursor) -> Result<i64, InterpError> {
        match e {
            Expr::Const(v) => Ok(*v),
            Expr::Var(v) => Ok(self.state.vars[v.0 as usize]),
            Expr::Load(a, idx) => {
                let i = self.eval(idx, cur)?;
                cur.fetch(&mut self.trace); // the load instruction itself
                let decl = &self.program.arrays()[a.0 as usize];
                if i < 0 || i >= i64::from(decl.len) {
                    return Err(InterpError::IndexOutOfBounds {
                        array: *a,
                        index: i,
                    });
                }
                self.trace.push(Access::read(decl.elem_addr(i)));
                Ok(self.state.arrays[a.0 as usize][i as usize])
            }
            Expr::Un(op, e) => {
                let v = self.eval(e, cur)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LNot => i64::from(v == 0),
                })
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, cur)?;
                let b = self.eval(r, cur)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(InterpError::DivByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(InterpError::DivByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                })
            }
        }
    }

    /// Evaluates an expression without emitting any trace accesses and
    /// without faulting: loads with out-of-range indices wrap into the
    /// array. Used only for [`Stmt::Touch`] index expressions.
    fn eval_silent(&self, e: &Expr) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Var(v) => self.state.vars[v.0 as usize],
            Expr::Load(a, idx) => {
                let i = self.eval_silent(idx);
                let arr = &self.state.arrays[a.0 as usize];
                if arr.is_empty() {
                    0
                } else {
                    arr[i.rem_euclid(arr.len() as i64) as usize]
                }
            }
            Expr::Un(op, e) => {
                let v = self.eval_silent(e);
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LNot => i64::from(v == 0),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval_silent(l);
                let b = self.eval_silent(r);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                }
            }
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], nodes: &[LayoutNode]) -> Result<(), InterpError> {
        debug_assert_eq!(stmts.len(), nodes.len(), "layout out of sync with body");
        for (s, n) in stmts.iter().zip(nodes) {
            self.exec_stmt(s, n)?;
            self.check_limit()?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, n: &LayoutNode) -> Result<(), InterpError> {
        match (s, n) {
            (Stmt::Assign(v, e), LayoutNode::Leaf(span)) => {
                let mut cur = Cursor::new(*span);
                let val = self.eval(e, &mut cur)?;
                cur.finish(&mut self.trace);
                self.state.vars[v.0 as usize] = val;
                Ok(())
            }
            (
                Stmt::Store {
                    array,
                    index,
                    value,
                },
                LayoutNode::Leaf(span),
            ) => {
                let mut cur = Cursor::new(*span);
                let i = self.eval(index, &mut cur)?;
                let val = self.eval(value, &mut cur)?;
                cur.finish(&mut self.trace);
                let decl = &self.program.arrays()[array.0 as usize];
                if i < 0 || i >= i64::from(decl.len) {
                    return Err(InterpError::IndexOutOfBounds {
                        array: *array,
                        index: i,
                    });
                }
                self.state.arrays[array.0 as usize][i as usize] = val;
                self.trace.push(Access::write(decl.elem_addr(i)));
                Ok(())
            }
            (Stmt::Touch { refs, .. }, LayoutNode::Leaf(span)) => {
                let mut cur = Cursor::new(*span);
                for (a, idx) in refs {
                    // Index evaluation is silent: the inserted load reuses
                    // the address computed by the preceding inserted
                    // instruction, so only the touch read itself is emitted.
                    let i = self.eval_silent(idx);
                    cur.fetch(&mut self.trace);
                    let decl = &self.program.arrays()[a.0 as usize];
                    // Innocuous by construction: a touch evaluated in a
                    // diverged environment may compute any index, so it is
                    // wrapped into the array instead of erroring. Under
                    // random placement this substitutes one uniformly-placed
                    // line of the same array for another (exchangeable).
                    let len = i64::from(decl.len.max(1));
                    let wrapped = i.rem_euclid(len);
                    self.trace.push(Access::read(decl.elem_addr(wrapped)));
                }
                cur.finish(&mut self.trace);
                Ok(())
            }
            (Stmt::Nop { .. }, LayoutNode::Leaf(span)) => {
                Cursor::new(*span).finish(&mut self.trace);
                Ok(())
            }
            (
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                },
                LayoutNode::If {
                    id,
                    header,
                    then_branch: tn,
                    else_branch: en,
                },
            ) => {
                let mut cur = Cursor::new(*header);
                let c = self.eval(cond, &mut cur)?;
                cur.finish(&mut self.trace);
                let taken = c != 0;
                self.path.push(Decision::Branch { id: *id, taken });
                if taken {
                    self.exec_stmts(then_branch, tn)
                } else {
                    self.exec_stmts(else_branch, en)
                }
            }
            (
                Stmt::While {
                    cond,
                    max_iter,
                    body,
                },
                LayoutNode::While {
                    id,
                    header,
                    body: bn,
                },
            ) => {
                let mut iters = 0u32;
                loop {
                    let mut cur = Cursor::new(*header);
                    let c = self.eval(cond, &mut cur)?;
                    cur.finish(&mut self.trace);
                    if c == 0 {
                        break;
                    }
                    if iters == *max_iter {
                        return Err(InterpError::LoopBoundExceeded {
                            id: *id,
                            max_iter: *max_iter,
                        });
                    }
                    iters += 1;
                    self.exec_stmts(body, bn)?;
                    self.check_limit()?;
                }
                self.path.push(Decision::Loop { id: *id, iters });
                Ok(())
            }
            (
                Stmt::For {
                    var,
                    from,
                    to,
                    max_iter,
                    body,
                },
                LayoutNode::For {
                    id,
                    init,
                    iter,
                    body: bn,
                },
            ) => {
                let mut cur = Cursor::new(*init);
                let lo = self.eval(from, &mut cur)?;
                let hi = self.eval(to, &mut cur)?;
                cur.finish(&mut self.trace);
                let span = (hi - lo).max(0);
                if span > i64::from(*max_iter) {
                    return Err(InterpError::ForRangeExceedsBound {
                        id: *id,
                        span,
                        max_iter: *max_iter,
                    });
                }
                let mut i = lo;
                loop {
                    // Per-iteration compare/increment instruction.
                    Cursor::new(*iter).finish(&mut self.trace);
                    self.state.vars[var.0 as usize] = i;
                    if i >= hi {
                        break;
                    }
                    self.exec_stmts(body, bn)?;
                    self.check_limit()?;
                    i += 1;
                }
                self.path.push(Decision::Loop {
                    id: *id,
                    iters: span as u32,
                });
                Ok(())
            }
            _ => unreachable!("layout node does not match statement shape"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use mbcr_trace::AccessKind;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn arithmetic_and_state() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::Assign(x, c(6).mul(c(7))));
        b.push(Stmt::Assign(y, Expr::var(x).sub(c(2))));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(run.state.var(x), 42);
        assert_eq!(run.state.var(y), 40);
        // x = 6*7 (4 instrs) and y = x-2 (3 instrs): one line-quantized
        // span (8 slots) each.
        assert_eq!(run.trace.len(), 16);
        assert!(run.trace.iter().all(|a| a.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn loads_emit_fetch_then_read() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(a, c(2))));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new().with_array(a, vec![10, 20, 30, 40])).unwrap();
        assert_eq!(run.state.var(x), 30);
        let kinds: Vec<AccessKind> = run.trace.iter().map(|a| a.kind).collect();
        // x = a[2] is 4 instructions quantized to one 8-slot line; the data
        // read follows the load slot, the remaining slots come afterwards.
        let mut expected = vec![AccessKind::InstrFetch, AccessKind::Read];
        expected.extend(std::iter::repeat_n(AccessKind::InstrFetch, 7));
        assert_eq!(kinds, expected);
        // Data address = base + 2*4.
        let read = run
            .trace
            .iter()
            .find(|a| a.kind == AccessKind::Read)
            .unwrap();
        assert_eq!(read.addr.0, p.arrays()[0].base + 8);
    }

    #[test]
    fn store_emits_write_at_end() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        b.push(Stmt::store(a, c(1), c(99)));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(run.state.array(a), &[0, 99, 0, 0]);
        let last = run.trace.iter().last().unwrap();
        assert_eq!(last.kind, AccessKind::Write);
    }

    #[test]
    fn if_records_decisions_and_branches() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(y, c(1))],
            vec![Stmt::Assign(y, c(2))],
        ));
        let p = b.build().unwrap();

        let run_t = execute(&p, &Inputs::new().with_var(x, 5)).unwrap();
        assert_eq!(run_t.state.var(y), 1);
        assert_eq!(
            run_t.path.decisions(),
            &[Decision::Branch { id: 0, taken: true }]
        );

        let run_f = execute(&p, &Inputs::new().with_var(x, -1)).unwrap();
        assert_eq!(run_f.state.var(y), 2);
        assert_ne!(run_t.path.path_id(), run_f.path.path_id());
        // Branches are overlaid at the same addresses (see the layouter):
        // two equal-cost branches produce identical fetch streams.
        assert_eq!(run_t.trace, run_f.trace);
    }

    #[test]
    fn while_counts_iterations_and_respects_bound() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(3)),
            5,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(run.state.var(i), 3);
        assert_eq!(run.path.loop_iters(0), Some(3));
    }

    #[test]
    fn while_bound_violation_errors() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(10)),
            3,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        assert_eq!(
            execute(&p, &Inputs::new()).unwrap_err(),
            InterpError::LoopBoundExceeded { id: 0, max_iter: 3 }
        );
    }

    #[test]
    fn for_loop_semantics() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 5);
        let i = b.var("i");
        let sum = b.var("sum");
        b.push(Stmt::for_(
            i,
            c(0),
            c(5),
            5,
            vec![
                Stmt::store(a, Expr::var(i), Expr::var(i).mul(c(2))),
                Stmt::Assign(sum, Expr::var(sum).add(Expr::var(i))),
            ],
        ));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(run.state.array(a), &[0, 2, 4, 6, 8]);
        assert_eq!(run.state.var(sum), 10);
        assert_eq!(run.state.var(i), 5, "induction variable ends at the bound");
        assert_eq!(run.path.loop_iters(0), Some(5));
    }

    #[test]
    fn for_range_exceeding_bound_errors() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::for_(i, c(0), c(10), 4, vec![Stmt::Nop { count: 1 }]));
        let p = b.build().unwrap();
        assert!(matches!(
            execute(&p, &Inputs::new()).unwrap_err(),
            InterpError::ForRangeExceedsBound {
                span: 10,
                max_iter: 4,
                ..
            }
        ));
    }

    #[test]
    fn empty_for_range_runs_zero_iterations() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let x = b.var("x");
        b.push(Stmt::for_(i, c(5), c(2), 8, vec![Stmt::Assign(x, c(1))]));
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(run.state.var(x), 0);
        assert_eq!(run.path.loop_iters(0), Some(0));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::Assign(x, c(1).div(Expr::var(y))));
        let p = b.build().unwrap();
        assert_eq!(
            execute(&p, &Inputs::new()).unwrap_err(),
            InterpError::DivByZero
        );
    }

    #[test]
    fn out_of_bounds_load_errors() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 2);
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(a, c(7))));
        let p = b.build().unwrap();
        assert_eq!(
            execute(&p, &Inputs::new()).unwrap_err(),
            InterpError::IndexOutOfBounds { array: a, index: 7 }
        );
    }

    #[test]
    fn touch_is_innocuous_and_wraps() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        b.push(Stmt::Assign(x, c(5)));
        b.push(Stmt::Touch {
            refs: vec![(a, Expr::var(x))],
            pad: 1,
        }); // index 5 wraps to 1
        let p = b.build().unwrap();
        let run = execute(&p, &Inputs::new().with_array(a, vec![9, 9, 9, 9])).unwrap();
        assert_eq!(run.state.var(x), 5, "touch must not change state");
        assert_eq!(run.state.array(a), &[9, 9, 9, 9]);
        let read = run
            .trace
            .iter()
            .find(|acc| acc.kind == AccessKind::Read)
            .unwrap();
        assert_eq!(read.addr.0, p.arrays()[0].base + 4, "wrapped to index 1");
        // x = 5 and the touch: one line-quantized span (8 slots) each.
        assert_eq!(run.trace.instr_fetches().count(), 16);
    }

    #[test]
    fn array_length_mismatch_errors() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        let p = b.build().unwrap();
        assert_eq!(
            execute(&p, &Inputs::new().with_array(a, vec![1, 2])).unwrap_err(),
            InterpError::ArrayLengthMismatch {
                array: a,
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn trace_limit_enforced() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            c(0),
            c(1000),
            1000,
            vec![Stmt::Nop { count: 10 }],
        ));
        let p = b.build().unwrap();
        let err =
            execute_with(&p, &Inputs::new(), &InterpConfig { max_trace_len: 100 }).unwrap_err();
        assert_eq!(err, InterpError::TraceLimitExceeded { limit: 100 });
    }

    #[test]
    fn same_inputs_same_trace() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let i = b.var("i");
        let s = b.var("s");
        b.push(Stmt::for_(
            i,
            c(0),
            c(8),
            8,
            vec![Stmt::Assign(
                s,
                Expr::var(s).add(Expr::load(a, Expr::var(i))),
            )],
        ));
        let p = b.build().unwrap();
        let r1 = execute(&p, &Inputs::new()).unwrap();
        let r2 = execute(&p, &Inputs::new()).unwrap();
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.path, r2.path);
    }
}
