//! Abstract-interpretation cache analysis: must/may/persistence hit–miss
//! classification, cross-validated against the `mbcr-cache` simulator.
//!
//! The paper argues that *measurement-based* cache representativeness is
//! needed because static cache analysis is hard on multipath programs. This
//! module builds the static side so the two can be put in dialogue: a
//! classical abstract interpretation in the style of Ferdinand & Wilhelm,
//! with the persistence refinement of Cullmann's conflict-set analysis.
//!
//! # Domains
//!
//! Both domains abstract the state of one set-associative LRU cache
//! (deterministic modulo placement — the analysis is *only* sound for
//! [`mbcr_cache::PlacementPolicy::Modulo`] + LRU, the platform's
//! deterministic configuration):
//!
//! * **Must** — maps a memory line to an *upper bound* on its LRU age.
//!   Presence proves the line is cached on every concrete execution
//!   reaching this point; join intersects keys and takes the max age.
//! * **May** — maps a memory line to a *lower bound* on its LRU age.
//!   Absence proves the line is cached on *no* concrete execution; join
//!   unions keys and takes the min age.
//!
//! Accessing a known line `ℓ` with stored age bound `h` (or `W`, the
//! associativity, if untracked) ages every other same-set line whose bound
//! is `< h` (must) / `≤ h` (may) by one, evicting at `W`, and reinserts `ℓ`
//! at age 0. An access whose address is only known to lie in a *range*
//! (a data-dependent array index) is "blurred": the must domain ages every
//! tracked line in every set a candidate line maps to and inserts nothing;
//! the may domain inserts every candidate line at age 0.
//!
//! # Fixpoint with first-iteration peeling
//!
//! Loops are analysed structurally: the first iteration is walked from the
//! loop-entry state (peeled), then a joined steady state is computed by
//! fixpoint iteration and walked once more. Classifications are therefore
//! contexted: a site whose steady iterations all hit, but whose peeled
//! first iteration may miss, is *first-miss* in its innermost loop.
//! First-miss is also derived from conflict-set persistence: an
//! exact-address site is persistent in a scope (the whole program, or one
//! enclosing loop) if the distinct lines mapping to its cache set from
//! within that scope fit in the set's `W` ways — once loaded, the line can
//! never be evicted before the scope exits.
//!
//! # Classifications
//!
//! | class | code | guarantee |
//! |---|---|---|
//! | [`Classification::AlwaysHit`] | `AH` | every execution of the site hits |
//! | [`Classification::AlwaysMiss`] | `AM` | every execution of the site misses |
//! | [`Classification::FirstMiss`] | `FM` | at most one miss per entry of its scope |
//! | [`Classification::NotClassified`] | `NC` | no guarantee |
//!
//! # Simulator cross-validation
//!
//! [`validate_classification`] replays concrete inputs through a mirror of
//! the interpreter that tags every emitted access with its static site,
//! asserts the mirrored access stream is identical to the real
//! [`crate::execute`] trace, simulates it against LRU caches, and emits
//! [`crate::DiagCode`] findings when a static guarantee is violated:
//! `CCA001` (always-hit missed), `CCA002` (always-miss hit), `CCA003`
//! (first-miss missed twice in one scope entry), `CCA004` (aggregate
//! hit/miss totals undercut the guaranteed bounds).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_trace::{Access, AccessKind, Address};

use crate::analysis::const_eval;
use crate::expr::Expr;
use crate::interp::{execute, Inputs, InterpError};
use crate::layout::{layout_program, InstrSpan, LayoutNode};
use crate::program::{ArrayDecl, Program, ELEM_BYTES};
use crate::stmt::Stmt;
use crate::verify::{DiagCode, Diagnostics};

/// The statically-known target of an access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteLoc {
    /// A single byte address, known exactly.
    Addr(u64),
    /// Somewhere in `base..end` (end exclusive). An empty range
    /// (`end == base`, a zero-length array) has no candidate lines.
    Range {
        /// First possible byte address.
        base: u64,
        /// One past the last possible byte address.
        end: u64,
    },
}

impl SiteLoc {
    /// The memory lines the access can land on under `geom`.
    fn candidate_lines(self, geom: &CacheGeometry) -> Vec<u64> {
        match self {
            SiteLoc::Addr(a) => vec![geom.line_of_addr(a)],
            SiteLoc::Range { base, end } => {
                if end <= base {
                    return Vec::new();
                }
                (geom.line_of_addr(base)..=geom.line_of_addr(end - 1)).collect()
            }
        }
    }
}

impl fmt::Display for SiteLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteLoc::Addr(a) => write!(f, "{a:#x}"),
            SiteLoc::Range { base, end } => write!(f, "{base:#x}..{end:#x}"),
        }
    }
}

/// One static access site: a program point that emits at most one memory
/// access per execution of its enclosing leaf statement.
///
/// Sites are geometry-independent; ids are dense and index
/// [`CacheClassification::sites`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSite {
    /// Dense site id.
    pub id: u32,
    /// Instruction fetch (il1 side) or data read/write (dl1 side).
    pub kind: AccessKind,
    /// Innermost enclosing construct (layout pre-order id), if any; loop
    /// header/init/iter sites anchor to their own loop.
    pub construct: Option<u32>,
    /// Enclosing loop construct ids, outermost first.
    pub loops: Vec<u32>,
    /// Where the access lands.
    pub loc: SiteLoc,
}

impl AccessSite {
    /// Stable spelling of the access kind: `"fetch"`, `"read"` or
    /// `"write"`.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            AccessKind::InstrFetch => "fetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }

    /// Which L1 serves this site: `"il1"` or `"dl1"`.
    #[must_use]
    pub fn cache_name(&self) -> &'static str {
        if self.kind.is_data() {
            "dl1"
        } else {
            "il1"
        }
    }
}

/// The scope a [`Classification::FirstMiss`] guarantee is relative to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// At most one miss per program run.
    Program,
    /// At most one miss per entry of the loop with this construct id.
    Loop(u32),
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Program => write!(f, "program"),
            Scope::Loop(c) => write!(f, "loop {c}"),
        }
    }
}

/// Static hit/miss classification of one access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Every execution of the site hits.
    AlwaysHit,
    /// Every execution of the site misses.
    AlwaysMiss,
    /// The site misses at most once per entry of its scope.
    FirstMiss(Scope),
    /// No guarantee.
    NotClassified,
}

impl Classification {
    /// Two-letter code: `"AH"`, `"AM"`, `"FM"` or `"NC"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Classification::AlwaysHit => "AH",
            Classification::AlwaysMiss => "AM",
            Classification::FirstMiss(_) => "FM",
            Classification::NotClassified => "NC",
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::AlwaysHit => write!(f, "always-hit"),
            Classification::AlwaysMiss => write!(f, "always-miss"),
            Classification::FirstMiss(s) => write!(f, "first-miss({s})"),
            Classification::NotClassified => write!(f, "not-classified"),
        }
    }
}

/// An access site together with its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedSite {
    /// The site.
    pub site: AccessSite,
    /// Its classification.
    pub class: Classification,
}

/// Per-cache classification counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RollupSide {
    /// Total sites on this cache side.
    pub sites: usize,
    /// Sites proved always-hit.
    pub always_hit: usize,
    /// Sites proved always-miss.
    pub always_miss: usize,
    /// Sites proved first-miss in some scope.
    pub first_miss: usize,
    /// Sites with no guarantee.
    pub not_classified: usize,
}

/// Classification counts rolled up per cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rollup {
    /// Instruction-cache side.
    pub il1: RollupSide,
    /// Data-cache side.
    pub dl1: RollupSide,
}

impl Rollup {
    fn compute(sites: &[ClassifiedSite]) -> Self {
        let mut r = Rollup::default();
        for cs in sites {
            let side = if cs.site.kind == AccessKind::InstrFetch {
                &mut r.il1
            } else {
                &mut r.dl1
            };
            side.sites += 1;
            match cs.class {
                Classification::AlwaysHit => side.always_hit += 1,
                Classification::AlwaysMiss => side.always_miss += 1,
                Classification::FirstMiss(_) => side.first_miss += 1,
                Classification::NotClassified => side.not_classified += 1,
            }
        }
        r
    }
}

/// The result of [`classify`]: every access site of a program classified
/// for one pair of cache geometries, plus the per-cache rollup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheClassification {
    /// Instruction-cache geometry the analysis ran against.
    pub il1: CacheGeometry,
    /// Data-cache geometry the analysis ran against.
    pub dl1: CacheGeometry,
    /// All sites in emission order, with classifications.
    pub sites: Vec<ClassifiedSite>,
    /// Per-cache classification counts.
    pub rollup: Rollup,
}

// ---------------------------------------------------------------------------
// Site table: a static mirror of the interpreter's emission order.
// ---------------------------------------------------------------------------

/// Per-statement site structure, mirroring [`LayoutNode`]. Leaf/header site
/// id lists are in exact emission order, so the concrete mirror executor
/// can replay them against collected data addresses.
enum SiteNode {
    Leaf(Vec<u32>),
    If {
        header: Vec<u32>,
        then_branch: Vec<SiteNode>,
        else_branch: Vec<SiteNode>,
    },
    While {
        construct: u32,
        header: Vec<u32>,
        body: Vec<SiteNode>,
    },
    For {
        construct: u32,
        init: Vec<u32>,
        iter: Vec<u32>,
        body: Vec<SiteNode>,
    },
}

struct SiteTable {
    sites: Vec<AccessSite>,
    tree: Vec<SiteNode>,
}

/// Mirrors the interpreter's `Cursor`: fetch sites interleave with data
/// sites exactly where `eval` calls `Cursor::fetch`, then the span's
/// remaining slots trail.
struct SpanSites {
    span: InstrSpan,
    next: u32,
    ids: Vec<u32>,
}

impl SpanSites {
    fn new(span: InstrSpan) -> Self {
        Self {
            span,
            next: 0,
            ids: Vec::new(),
        }
    }
}

/// The static address set of a `Load` or `Store` access to `decl[idx]`:
/// exact when the index folds to an in-bounds constant, otherwise the whole
/// array (a zero-length array yields an empty range — the access cannot
/// execute without faulting).
fn load_loc(decl: &ArrayDecl, idx: &Expr) -> SiteLoc {
    match const_eval(idx) {
        Some(i) if i >= 0 && i < i64::from(decl.len) => SiteLoc::Addr(decl.elem_addr(i)),
        _ => SiteLoc::Range {
            base: decl.base,
            end: decl.base + u64::from(decl.len) * ELEM_BYTES,
        },
    }
}

/// The static address set of a `Touch` read: the interpreter wraps the
/// silently-evaluated index into the array (reading element 0 of an empty
/// array), so a constant index is exact and anything else covers the whole
/// (at least one element) array.
fn touch_loc(decl: &ArrayDecl, idx: &Expr) -> SiteLoc {
    match const_eval(idx) {
        Some(i) => SiteLoc::Addr(decl.elem_addr(i.rem_euclid(i64::from(decl.len.max(1))))),
        None => SiteLoc::Range {
            base: decl.base,
            end: decl.base + u64::from(decl.len.max(1)) * ELEM_BYTES,
        },
    }
}

struct SiteBuilder<'p> {
    program: &'p Program,
    sites: Vec<AccessSite>,
    loop_stack: Vec<u32>,
    ctx: Vec<u32>,
}

impl SiteBuilder<'_> {
    fn push_site(&mut self, kind: AccessKind, loc: SiteLoc, construct: Option<u32>) -> u32 {
        let id = u32::try_from(self.sites.len()).expect("site count fits in u32");
        self.sites.push(AccessSite {
            id,
            kind,
            construct: construct.or_else(|| self.ctx.last().copied()),
            loops: self.loop_stack.clone(),
            loc,
        });
        id
    }

    fn fetch(&mut self, c: &mut SpanSites, construct: Option<u32>) {
        if c.next < c.span.count {
            let id = self.push_site(
                AccessKind::InstrFetch,
                SiteLoc::Addr(c.span.instr_addr(c.next)),
                construct,
            );
            c.ids.push(id);
            c.next += 1;
        }
    }

    fn finish(&mut self, c: &mut SpanSites, construct: Option<u32>) {
        while c.next < c.span.count {
            self.fetch(c, construct);
        }
    }

    fn expr_sites(&mut self, e: &Expr, c: &mut SpanSites, construct: Option<u32>) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load(a, idx) => {
                self.expr_sites(idx, c, construct);
                self.fetch(c, construct);
                let loc = load_loc(&self.program.arrays()[a.0 as usize], idx);
                let id = self.push_site(AccessKind::Read, loc, construct);
                c.ids.push(id);
            }
            Expr::Un(_, e) => self.expr_sites(e, c, construct),
            Expr::Bin(_, l, r) => {
                self.expr_sites(l, c, construct);
                self.expr_sites(r, c, construct);
            }
        }
    }

    fn build(&mut self, stmts: &[Stmt], nodes: &[LayoutNode]) -> Vec<SiteNode> {
        stmts
            .iter()
            .zip(nodes)
            .map(|(s, n)| self.node(s, n))
            .collect()
    }

    fn node(&mut self, s: &Stmt, n: &LayoutNode) -> SiteNode {
        match (s, n) {
            (Stmt::Assign(_, e), LayoutNode::Leaf(span)) => {
                let mut c = SpanSites::new(*span);
                self.expr_sites(e, &mut c, None);
                self.finish(&mut c, None);
                SiteNode::Leaf(c.ids)
            }
            (
                Stmt::Store {
                    array,
                    index,
                    value,
                },
                LayoutNode::Leaf(span),
            ) => {
                let mut c = SpanSites::new(*span);
                self.expr_sites(index, &mut c, None);
                self.expr_sites(value, &mut c, None);
                self.finish(&mut c, None);
                // The interpreter pushes the write access after the span's
                // trailing fetches, so the write site comes last.
                let loc = load_loc(&self.program.arrays()[array.0 as usize], index);
                let id = self.push_site(AccessKind::Write, loc, None);
                c.ids.push(id);
                SiteNode::Leaf(c.ids)
            }
            (Stmt::Touch { refs, .. }, LayoutNode::Leaf(span)) => {
                let mut c = SpanSites::new(*span);
                for (a, idx) in refs {
                    self.fetch(&mut c, None);
                    let loc = touch_loc(&self.program.arrays()[a.0 as usize], idx);
                    let id = self.push_site(AccessKind::Read, loc, None);
                    c.ids.push(id);
                }
                self.finish(&mut c, None);
                SiteNode::Leaf(c.ids)
            }
            (Stmt::Nop { .. }, LayoutNode::Leaf(span)) => {
                let mut c = SpanSites::new(*span);
                self.finish(&mut c, None);
                SiteNode::Leaf(c.ids)
            }
            (
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                },
                LayoutNode::If {
                    id,
                    header,
                    then_branch: tn,
                    else_branch: en,
                },
            ) => {
                let mut c = SpanSites::new(*header);
                self.expr_sites(cond, &mut c, Some(*id));
                self.finish(&mut c, Some(*id));
                self.ctx.push(*id);
                let t = self.build(then_branch, tn);
                let e = self.build(else_branch, en);
                self.ctx.pop();
                SiteNode::If {
                    header: c.ids,
                    then_branch: t,
                    else_branch: e,
                }
            }
            (
                Stmt::While { cond, body, .. },
                LayoutNode::While {
                    id,
                    header,
                    body: bn,
                },
            ) => {
                self.loop_stack.push(*id);
                let mut c = SpanSites::new(*header);
                self.expr_sites(cond, &mut c, Some(*id));
                self.finish(&mut c, Some(*id));
                self.ctx.push(*id);
                let b = self.build(body, bn);
                self.ctx.pop();
                self.loop_stack.pop();
                SiteNode::While {
                    construct: *id,
                    header: c.ids,
                    body: b,
                }
            }
            (
                Stmt::For { from, to, body, .. },
                LayoutNode::For {
                    id,
                    init,
                    iter,
                    body: bn,
                },
            ) => {
                self.loop_stack.push(*id);
                let mut ci = SpanSites::new(*init);
                self.expr_sites(from, &mut ci, Some(*id));
                self.expr_sites(to, &mut ci, Some(*id));
                self.finish(&mut ci, Some(*id));
                let mut cit = SpanSites::new(*iter);
                self.finish(&mut cit, Some(*id));
                self.ctx.push(*id);
                let b = self.build(body, bn);
                self.ctx.pop();
                self.loop_stack.pop();
                SiteNode::For {
                    construct: *id,
                    init: ci.ids,
                    iter: cit.ids,
                    body: b,
                }
            }
            _ => unreachable!("layout node does not match statement shape"),
        }
    }
}

fn build_sites(program: &Program) -> SiteTable {
    let layout = layout_program(program);
    let mut b = SiteBuilder {
        program,
        sites: Vec::new(),
        loop_stack: Vec::new(),
        ctx: Vec::new(),
    };
    let tree = b.build(program.body(), &layout.nodes);
    SiteTable {
        sites: b.sites,
        tree,
    }
}

// ---------------------------------------------------------------------------
// Abstract domain: must/may age bounds per cache.
// ---------------------------------------------------------------------------

/// Abstract state of one cache: must ages (upper bounds, presence = proved
/// cached) and may ages (lower bounds, absence = proved not cached).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Abs {
    must: BTreeMap<u64, u32>,
    may: BTreeMap<u64, u32>,
}

impl Abs {
    fn new() -> Self {
        Self {
            must: BTreeMap::new(),
            may: BTreeMap::new(),
        }
    }

    fn join(&self, o: &Self) -> Self {
        let mut must = BTreeMap::new();
        for (l, a) in &self.must {
            if let Some(b) = o.must.get(l) {
                must.insert(*l, (*a).max(*b));
            }
        }
        let mut may = self.may.clone();
        for (l, b) in &o.may {
            may.entry(*l)
                .and_modify(|a| *a = (*a).min(*b))
                .or_insert(*b);
        }
        Abs { must, may }
    }

    /// Transfer function for an access to the exactly-known `line`.
    fn touch(&mut self, geom: &CacheGeometry, line: u64) {
        let w = geom.ways();
        let set = geom.set_of_line(line);
        // Must: lines provably younger than ℓ's worst-case age get older.
        let h = self.must.get(&line).copied().unwrap_or(w);
        let mut evict = Vec::new();
        for (l, a) in &mut self.must {
            if *l != line && geom.set_of_line(*l) == set && *a < h {
                *a += 1;
                if *a >= w {
                    evict.push(*l);
                }
            }
        }
        for l in evict {
            self.must.remove(&l);
        }
        self.must.insert(line, 0);
        // May: lines possibly as young as ℓ's best-case age may get older.
        let h = self.may.get(&line).copied().unwrap_or(w);
        let mut evict = Vec::new();
        for (l, a) in &mut self.may {
            if *l != line && geom.set_of_line(*l) == set && *a <= h {
                *a += 1;
                if *a >= w {
                    evict.push(*l);
                }
            }
        }
        for l in evict {
            self.may.remove(&l);
        }
        self.may.insert(line, 0);
    }

    /// Transfer function for an access known only to hit one of `lines`:
    /// every tracked line in any affected set may age (must), and every
    /// candidate may now be cached at age 0 (may).
    fn blur(&mut self, geom: &CacheGeometry, lines: &[u64]) {
        let w = geom.ways();
        let sets: BTreeSet<u64> = lines.iter().map(|l| geom.set_of_line(*l)).collect();
        let mut evict = Vec::new();
        for (l, a) in &mut self.must {
            if sets.contains(&geom.set_of_line(*l)) {
                *a += 1;
                if *a >= w {
                    evict.push(*l);
                }
            }
        }
        for l in evict {
            self.must.remove(&l);
        }
        for &l in lines {
            self.may.insert(l, 0);
        }
    }
}

/// Joint abstract state of both caches (cold/flushed at program entry).
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    il1: Abs,
    dl1: Abs,
}

impl State {
    fn new() -> Self {
        Self {
            il1: Abs::new(),
            dl1: Abs::new(),
        }
    }

    fn join(&self, o: &Self) -> Self {
        State {
            il1: self.il1.join(&o.il1),
            dl1: self.dl1.join(&o.dl1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SteadyAcc {
    seen: bool,
    hit_all: bool,
}

/// Per-site evidence accumulated over all recorded walk contexts.
#[derive(Debug, Clone)]
struct VerdictAcc {
    seen: bool,
    hit_all: bool,
    miss_all: bool,
    /// Per enclosing loop: evidence restricted to steady (non-first)
    /// iterations of that loop — the peeling basis for first-miss.
    steady: BTreeMap<u32, SteadyAcc>,
}

impl Default for VerdictAcc {
    fn default() -> Self {
        Self {
            seen: false,
            hit_all: true,
            miss_all: true,
            steady: BTreeMap::new(),
        }
    }
}

const FIXPOINT_CAP: usize = 10_000;

struct Walker<'a> {
    sites: &'a [AccessSite],
    il1: CacheGeometry,
    dl1: CacheGeometry,
    /// Per live loop: are we in its peeled first iteration?
    first: BTreeMap<u32, bool>,
    recording: bool,
    acc: Vec<VerdictAcc>,
}

impl Walker<'_> {
    fn apply_site(&mut self, id: u32, st: &mut State) {
        let is_il1 = self.sites[id as usize].kind == AccessKind::InstrFetch;
        let geom = if is_il1 { self.il1 } else { self.dl1 };
        let abs = if is_il1 { &mut st.il1 } else { &mut st.dl1 };
        let lines = self.sites[id as usize].loc.candidate_lines(&geom);
        let (ctx_hit, ctx_miss) = if lines.is_empty() {
            (false, false)
        } else {
            (
                lines.iter().all(|l| abs.must.contains_key(l)),
                lines.iter().all(|l| !abs.may.contains_key(l)),
            )
        };
        if self.recording {
            let v = &mut self.acc[id as usize];
            v.seen = true;
            v.hit_all &= ctx_hit;
            v.miss_all &= ctx_miss;
            for l in &self.sites[id as usize].loops {
                if self.first.get(l) == Some(&false) {
                    let e = v.steady.entry(*l).or_insert(SteadyAcc {
                        seen: false,
                        hit_all: true,
                    });
                    e.seen = true;
                    e.hit_all &= ctx_hit;
                }
            }
        }
        match lines.len() {
            0 => {}
            1 => abs.touch(&geom, lines[0]),
            _ => abs.blur(&geom, &lines),
        }
    }

    fn apply_sites(&mut self, ids: &[u32], st: &mut State) {
        for &id in ids {
            self.apply_site(id, st);
        }
    }

    fn seq(&mut self, nodes: &[SiteNode], st: &mut State) {
        for n in nodes {
            self.node(n, st);
        }
    }

    fn node(&mut self, n: &SiteNode, st: &mut State) {
        match n {
            SiteNode::Leaf(ids) => self.apply_sites(ids, st),
            SiteNode::If {
                header,
                then_branch,
                else_branch,
            } => {
                self.apply_sites(header, st);
                let mut other = st.clone();
                self.seq(then_branch, st);
                self.seq(else_branch, &mut other);
                *st = st.join(&other);
            }
            SiteNode::While {
                construct,
                header,
                body,
            } => self.loop_node(*construct, None, header, body, st),
            SiteNode::For {
                construct,
                init,
                iter,
                body,
            } => self.loop_node(*construct, Some(init), iter, body, st),
        }
    }

    /// Peeled-first-iteration loop analysis: record the first iteration
    /// from the entry state, close the steady state by fixpoint (recording
    /// off), record one steady iteration, and exit with the join of the
    /// zero-iteration and steady header states.
    fn loop_node(
        &mut self,
        c: u32,
        init: Option<&[u32]>,
        header: &[u32],
        body: &[SiteNode],
        st: &mut State,
    ) {
        if let Some(init) = init {
            // Init sites run once per loop entry, before the loop's
            // first-iteration flag exists — they never accrue steady
            // evidence for their own loop.
            self.apply_sites(init, st);
        }
        self.first.insert(c, true);
        let mut s = st.clone();
        self.apply_sites(header, &mut s);
        let s1 = s.clone(); // header from entry: the zero-iteration exit
        self.seq(body, &mut s);
        let saved = self.recording;
        self.recording = false;
        let mut x = s;
        let mut converged = false;
        for _ in 0..FIXPOINT_CAP {
            let mut y = x.clone();
            self.apply_sites(header, &mut y);
            self.seq(body, &mut y);
            let joined = x.join(&y);
            if joined == x {
                converged = true;
                break;
            }
            x = joined;
        }
        assert!(converged, "cache abstract fixpoint failed to converge");
        self.recording = saved;
        self.first.insert(c, false);
        let mut hs = x.clone();
        self.apply_sites(header, &mut hs);
        let mut bs = hs.clone();
        self.seq(body, &mut bs);
        self.first.remove(&c);
        *st = s1.join(&hs);
    }
}

// ---------------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------------

fn cache_index(kind: AccessKind) -> usize {
    usize::from(kind != AccessKind::InstrFetch)
}

/// Runs the must/may/persistence analysis of `program` against one pair of
/// instruction/data cache geometries and classifies every access site.
///
/// The result is sound for the deterministic platform configuration only:
/// modulo placement, LRU replacement, both caches cold at program entry
/// (the contract [`validate_classification`] enforces against the
/// simulator).
#[must_use]
pub fn classify(program: &Program, il1: CacheGeometry, dl1: CacheGeometry) -> CacheClassification {
    let table = build_sites(program);
    let mut w = Walker {
        sites: &table.sites,
        il1,
        dl1,
        first: BTreeMap::new(),
        recording: true,
        acc: vec![VerdictAcc::default(); table.sites.len()],
    };
    let mut st = State::new();
    w.seq(&table.tree, &mut st);
    let acc = w.acc;

    // Conflict sets per persistence scope (None = whole program): for each
    // cache, set index → distinct candidate lines any member site can touch.
    let mut scopes: BTreeMap<Option<u32>, [BTreeMap<u64, BTreeSet<u64>>; 2]> = BTreeMap::new();
    for site in &table.sites {
        let ci = cache_index(site.kind);
        let geom = if ci == 0 { &il1 } else { &dl1 };
        let lines = site.loc.candidate_lines(geom);
        for key in std::iter::once(None).chain(site.loops.iter().map(|l| Some(*l))) {
            let maps = scopes.entry(key).or_default();
            for &l in &lines {
                maps[ci].entry(geom.set_of_line(l)).or_default().insert(l);
            }
        }
    }
    let persistent = |scope: Option<u32>, ci: usize, geom: &CacheGeometry, line: u64| {
        let conflicts = scopes
            .get(&scope)
            .and_then(|maps| maps[ci].get(&geom.set_of_line(line)))
            .map_or(0, BTreeSet::len);
        conflicts <= geom.ways() as usize
    };

    let mut sites_out = Vec::with_capacity(table.sites.len());
    for site in table.sites {
        let v = &acc[site.id as usize];
        let ci = cache_index(site.kind);
        let geom = if ci == 0 { &il1 } else { &dl1 };
        let class = if !v.seen {
            Classification::NotClassified
        } else if v.hit_all {
            Classification::AlwaysHit
        } else if v.miss_all {
            Classification::AlwaysMiss
        } else if site.loops.is_empty() {
            // Executes at most once per run, so at most one miss trivially.
            Classification::FirstMiss(Scope::Program)
        } else {
            let mut class = Classification::NotClassified;
            if let SiteLoc::Addr(a) = site.loc {
                // Conflict-set persistence, widest scope first.
                let line = geom.line_of_addr(a);
                for key in std::iter::once(None).chain(site.loops.iter().map(|l| Some(*l))) {
                    if persistent(key, ci, geom, line) {
                        class = Classification::FirstMiss(match key {
                            None => Scope::Program,
                            Some(c) => Scope::Loop(c),
                        });
                        break;
                    }
                }
            }
            if class == Classification::NotClassified {
                // Peeling: a site executing at most once per iteration of
                // its innermost loop whose steady iterations all hit misses
                // at most once per entry of that loop.
                if let Some(&l) = site.loops.last() {
                    if v.steady.get(&l).is_some_and(|s| s.seen && s.hit_all) {
                        class = Classification::FirstMiss(Scope::Loop(l));
                    }
                }
            }
            class
        };
        sites_out.push(ClassifiedSite { site, class });
    }
    let rollup = Rollup::compute(&sites_out);
    CacheClassification {
        il1,
        dl1,
        sites: sites_out,
        rollup,
    }
}

// ---------------------------------------------------------------------------
// Mirror executor: replays a concrete run, tagging every access with its
// static site. Only invoked after `execute` succeeded on the same input, so
// faults the interpreter would have reported are unreachable here.
// ---------------------------------------------------------------------------

enum Ev {
    /// Arrival at a loop (before its first header check / init).
    Enter(u32),
    /// One memory access, attributed to its static site.
    Acc { site: u32, addr: u64 },
}

struct Mirror<'p> {
    program: &'p Program,
    sites: &'p [AccessSite],
    vars: Vec<i64>,
    arrays: Vec<Vec<i64>>,
    events: Vec<Ev>,
}

impl<'p> Mirror<'p> {
    fn new(program: &'p Program, sites: &'p [AccessSite], inputs: &Inputs) -> Self {
        let mut vars = vec![0i64; program.var_count()];
        for &(v, val) in inputs.vars() {
            vars[v.0 as usize] = val;
        }
        let mut arrays: Vec<Vec<i64>> = program
            .arrays()
            .iter()
            .map(|d| vec![0i64; d.len as usize])
            .collect();
        for (a, values) in inputs.arrays() {
            assert_eq!(
                values.len(),
                arrays[a.0 as usize].len(),
                "array length mismatch survived execute()"
            );
            arrays[a.0 as usize] = values.clone();
        }
        Self {
            program,
            sites,
            vars,
            arrays,
            events: Vec::new(),
        }
    }

    /// Exact mirror of the interpreter's `eval`, collecting the data
    /// address of every `Load` in evaluation order instead of emitting.
    fn eval(&mut self, e: &Expr, data: &mut Vec<u64>) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Var(v) => self.vars[v.0 as usize],
            Expr::Load(a, idx) => {
                let i = self.eval(idx, data);
                let decl = &self.program.arrays()[a.0 as usize];
                assert!(
                    i >= 0 && i < i64::from(decl.len),
                    "out-of-bounds load survived execute()"
                );
                data.push(decl.elem_addr(i));
                self.arrays[a.0 as usize][i as usize]
            }
            Expr::Un(op, e) => {
                let v = self.eval(e, data);
                match op {
                    crate::expr::UnOp::Neg => v.wrapping_neg(),
                    crate::expr::UnOp::Not => !v,
                    crate::expr::UnOp::LNot => i64::from(v == 0),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, data);
                let b = self.eval(r, data);
                bin_op(*op, a, b).expect("division by zero survived execute()")
            }
        }
    }

    /// Exact mirror of the interpreter's fault-free `eval_silent`.
    fn eval_silent(&self, e: &Expr) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Var(v) => self.vars[v.0 as usize],
            Expr::Load(a, idx) => {
                let i = self.eval_silent(idx);
                let arr = &self.arrays[a.0 as usize];
                if arr.is_empty() {
                    0
                } else {
                    arr[i.rem_euclid(arr.len() as i64) as usize]
                }
            }
            Expr::Un(op, e) => {
                let v = self.eval_silent(e);
                match op {
                    crate::expr::UnOp::Neg => v.wrapping_neg(),
                    crate::expr::UnOp::Not => !v,
                    crate::expr::UnOp::LNot => i64::from(v == 0),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval_silent(l);
                let b = self.eval_silent(r);
                bin_op(*op, a, b).unwrap_or(0)
            }
        }
    }

    /// Emits one leaf's accesses: fetch sites carry their exact static
    /// address; data sites consume the collected addresses in order.
    fn emit_leaf(&mut self, ids: &[u32], data: Vec<u64>) {
        let mut q = data.into_iter();
        for &id in ids {
            let addr = match self.sites[id as usize].kind {
                AccessKind::InstrFetch => match self.sites[id as usize].loc {
                    SiteLoc::Addr(a) => a,
                    SiteLoc::Range { .. } => unreachable!("fetch sites have exact addresses"),
                },
                _ => q.next().expect("fewer data addresses than data sites"),
            };
            self.events.push(Ev::Acc { site: id, addr });
        }
        assert!(q.next().is_none(), "more data addresses than data sites");
    }

    fn exec_seq(&mut self, stmts: &[Stmt], nodes: &[SiteNode]) {
        for (s, n) in stmts.iter().zip(nodes) {
            self.exec_stmt(s, n);
        }
    }

    fn exec_stmt(&mut self, s: &Stmt, n: &SiteNode) {
        match (s, n) {
            (Stmt::Assign(v, e), SiteNode::Leaf(ids)) => {
                let mut data = Vec::new();
                let val = self.eval(e, &mut data);
                self.emit_leaf(ids, data);
                self.vars[v.0 as usize] = val;
            }
            (
                Stmt::Store {
                    array,
                    index,
                    value,
                },
                SiteNode::Leaf(ids),
            ) => {
                let mut data = Vec::new();
                let i = self.eval(index, &mut data);
                let val = self.eval(value, &mut data);
                let decl = &self.program.arrays()[array.0 as usize];
                assert!(
                    i >= 0 && i < i64::from(decl.len),
                    "out-of-bounds store survived execute()"
                );
                data.push(decl.elem_addr(i));
                self.arrays[array.0 as usize][i as usize] = val;
                self.emit_leaf(ids, data);
            }
            (Stmt::Touch { refs, .. }, SiteNode::Leaf(ids)) => {
                let mut data = Vec::new();
                for (a, idx) in refs {
                    let i = self.eval_silent(idx);
                    let decl = &self.program.arrays()[a.0 as usize];
                    data.push(decl.elem_addr(i.rem_euclid(i64::from(decl.len.max(1)))));
                }
                self.emit_leaf(ids, data);
            }
            (Stmt::Nop { .. }, SiteNode::Leaf(ids)) => self.emit_leaf(ids, Vec::new()),
            (
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                },
                SiteNode::If {
                    header,
                    then_branch: tn,
                    else_branch: en,
                },
            ) => {
                let mut data = Vec::new();
                let c = self.eval(cond, &mut data);
                self.emit_leaf(header, data);
                if c != 0 {
                    self.exec_seq(then_branch, tn);
                } else {
                    self.exec_seq(else_branch, en);
                }
            }
            (
                Stmt::While { cond, body, .. },
                SiteNode::While {
                    construct,
                    header,
                    body: bn,
                },
            ) => {
                self.events.push(Ev::Enter(*construct));
                loop {
                    let mut data = Vec::new();
                    let c = self.eval(cond, &mut data);
                    self.emit_leaf(header, data);
                    if c == 0 {
                        break;
                    }
                    self.exec_seq(body, bn);
                }
            }
            (
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    ..
                },
                SiteNode::For {
                    construct,
                    init,
                    iter,
                    body: bn,
                },
            ) => {
                self.events.push(Ev::Enter(*construct));
                let mut data = Vec::new();
                let lo = self.eval(from, &mut data);
                let hi = self.eval(to, &mut data);
                self.emit_leaf(init, data);
                let mut i = lo;
                loop {
                    self.emit_leaf(iter, Vec::new());
                    self.vars[var.0 as usize] = i;
                    if i >= hi {
                        break;
                    }
                    self.exec_seq(body, bn);
                    i += 1;
                }
            }
            _ => unreachable!("site tree out of sync with program body"),
        }
    }
}

/// The interpreter's binary-operator semantics; `None` on division by zero.
fn bin_op(op: crate::expr::BinOp, a: i64, b: i64) -> Option<i64> {
    use crate::expr::BinOp;
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
    })
}

// ---------------------------------------------------------------------------
// Simulator cross-validation.
// ---------------------------------------------------------------------------

/// Replays `inputs` through the simulator and checks every static guarantee
/// in `cls`, returning `CCA00x` diagnostics for violations (empty = sound).
///
/// Both caches are simulated with deterministic modulo placement and LRU
/// replacement — the configuration the analysis models — and flushed before
/// each input, matching the cold-entry assumption.
///
/// # Errors
///
/// Propagates the first [`InterpError`] from executing an input.
///
/// # Panics
///
/// Panics if `cls` was not produced from this `program` (site tables
/// differ), or if the internal interpreter mirror diverges from the real
/// trace — both are bugs, not data-dependent conditions.
pub fn validate_classification(
    program: &Program,
    inputs: &[Inputs],
    cls: &CacheClassification,
) -> Result<Diagnostics, InterpError> {
    let table = build_sites(program);
    assert!(
        table.sites.len() == cls.sites.len()
            && table
                .sites
                .iter()
                .zip(&cls.sites)
                .all(|(a, b)| *a == b.site),
        "classification does not belong to this program"
    );

    let mut il1 = Cache::new(cls.il1, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 0);
    let mut dl1 = Cache::new(cls.dl1, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 0);
    let mut diags = Diagnostics::new();
    let mut seen_diag: BTreeSet<(DiagCode, u32)> = BTreeSet::new();
    // Per first-miss site: the scope-entry id of its last observed miss.
    let mut last_miss: HashMap<u32, u64> = HashMap::new();
    // Per loop construct: its current (globally unique) entry id.
    let mut entries: HashMap<u32, u64> = HashMap::new();
    let mut next_entry: u64 = 0;

    for (run_idx, inp) in inputs.iter().enumerate() {
        let run = execute(program, inp)?;
        let mut m = Mirror::new(program, &table.sites, inp);
        m.exec_seq(program.body(), &table.tree);
        let derived: Vec<Access> = m
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Enter(_) => None,
                Ev::Acc { site, addr } => Some(match table.sites[*site as usize].kind {
                    AccessKind::InstrFetch => Access::fetch(*addr),
                    AccessKind::Read => Access::read(*addr),
                    AccessKind::Write => Access::write(*addr),
                }),
            })
            .collect();
        let real: Vec<Access> = run.trace.iter().copied().collect();
        assert_eq!(derived, real, "site mirror diverged from interpreter trace");

        il1.flush();
        dl1.flush();
        let (mut hits, mut misses) = ([0u64; 2], [0u64; 2]);
        let (mut ah_acc, mut am_acc) = ([0u64; 2], [0u64; 2]);
        for ev in &m.events {
            match ev {
                Ev::Enter(c) => {
                    next_entry += 1;
                    entries.insert(*c, next_entry);
                }
                Ev::Acc { site, addr } => {
                    let cs = &cls.sites[*site as usize];
                    let ci = cache_index(cs.site.kind);
                    let cache = if ci == 0 { &mut il1 } else { &mut dl1 };
                    let hit = cache.access(Address(*addr)).is_hit();
                    if hit {
                        hits[ci] += 1;
                    } else {
                        misses[ci] += 1;
                    }
                    match cs.class {
                        Classification::AlwaysHit => {
                            ah_acc[ci] += 1;
                            if !hit && seen_diag.insert((DiagCode::Cca001, *site)) {
                                diags.push(
                                    DiagCode::Cca001,
                                    cs.site.construct,
                                    format!(
                                        "site {site}: always-hit access at {addr:#x} \
                                         missed in simulation (input {run_idx})"
                                    ),
                                );
                            }
                        }
                        Classification::AlwaysMiss => {
                            am_acc[ci] += 1;
                            if hit && seen_diag.insert((DiagCode::Cca002, *site)) {
                                diags.push(
                                    DiagCode::Cca002,
                                    cs.site.construct,
                                    format!(
                                        "site {site}: always-miss access at {addr:#x} \
                                         hit in simulation (input {run_idx})"
                                    ),
                                );
                            }
                        }
                        Classification::FirstMiss(scope) => {
                            if !hit {
                                let id = match scope {
                                    Scope::Program => run_idx as u64,
                                    Scope::Loop(c) => entries.get(&c).copied().unwrap_or(0),
                                };
                                if last_miss.get(site) == Some(&id) {
                                    if seen_diag.insert((DiagCode::Cca003, *site)) {
                                        diags.push(
                                            DiagCode::Cca003,
                                            cs.site.construct,
                                            format!(
                                                "site {site}: first-miss access at {addr:#x} \
                                                 missed twice in one {scope} entry \
                                                 (input {run_idx})"
                                            ),
                                        );
                                    }
                                } else {
                                    last_miss.insert(*site, id);
                                }
                            }
                        }
                        Classification::NotClassified => {}
                    }
                }
            }
        }
        // Aggregate bound inversion: observed totals must respect the
        // guaranteed-hit (≥ always-hit accesses) and guaranteed-miss
        // (≥ always-miss accesses) bounds per cache.
        for ci in 0..2 {
            if hits[ci] < ah_acc[ci] || misses[ci] < am_acc[ci] {
                let sentinel = if ci == 0 { u32::MAX } else { u32::MAX - 1 };
                if seen_diag.insert((DiagCode::Cca004, sentinel)) {
                    diags.push(
                        DiagCode::Cca004,
                        None,
                        format!(
                            "{}: observed {} hits / {} misses undercut the static \
                             bounds of >= {} hits and >= {} misses (input {run_idx})",
                            if ci == 0 { "il1" } else { "dl1" },
                            hits[ci],
                            misses[ci],
                            ah_acc[ci],
                            am_acc[ci]
                        ),
                    );
                }
            }
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, DATA_BASE};

    fn l1() -> CacheGeometry {
        CacheGeometry::paper_l1()
    }

    /// `x = 1`: one quantized 8-instruction leaf on a single code line —
    /// the first fetch is a cold miss, the other seven always hit.
    #[test]
    fn straight_line_fetches_classify_exactly() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::c(1)));
        let p = b.build().unwrap();
        let cls = classify(&p, l1(), l1());
        assert_eq!(cls.sites.len(), 8);
        assert_eq!(cls.sites[0].class, Classification::AlwaysMiss);
        for s in &cls.sites[1..] {
            assert_eq!(s.class, Classification::AlwaysHit, "site {}", s.site.id);
        }
        assert_eq!(cls.rollup.il1.sites, 8);
        assert_eq!(cls.rollup.il1.always_miss, 1);
        assert_eq!(cls.rollup.il1.always_hit, 7);
        assert_eq!(cls.rollup.dl1.sites, 0);
        let d = validate_classification(&p, &[Inputs::new()], &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    /// A constant-index load in a loop is first-miss via conflict-set
    /// persistence: its line fits the set for the whole program.
    #[test]
    fn repeated_load_in_loop_is_first_miss() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let i = b.var("i");
        let a = b.array("a", 4);
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(4),
            4,
            vec![Stmt::Assign(x, Expr::load(a, Expr::c(0)))],
        ));
        let p = b.build().unwrap();
        let cls = classify(&p, l1(), l1());
        let read = cls
            .sites
            .iter()
            .find(|s| s.site.kind == AccessKind::Read)
            .unwrap();
        assert_eq!(read.site.loc, SiteLoc::Addr(DATA_BASE));
        assert_eq!(read.site.loops, vec![0]);
        assert_eq!(read.class, Classification::FirstMiss(Scope::Program));
        let d = validate_classification(&p, &[Inputs::new()], &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    /// Two distinct lines alternating through a 1-set/1-way data cache:
    /// every data access thrashes, which the may analysis proves.
    fn thrash_program() -> (crate::Program, crate::Var) {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        let a = b.array("a", 8);
        let bb = b.array("b", 8);
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(2),
            2,
            vec![
                Stmt::Assign(x, Expr::load(a, Expr::c(0))),
                Stmt::Assign(y, Expr::load(bb, Expr::c(0))),
            ],
        ));
        (b.build().unwrap(), x)
    }

    #[test]
    fn thrashing_loads_are_always_miss() {
        let (p, _) = thrash_program();
        let dl1 = CacheGeometry::new(32, 1, 32).unwrap();
        let cls = classify(&p, l1(), dl1);
        let reads: Vec<_> = cls
            .sites
            .iter()
            .filter(|s| s.site.kind == AccessKind::Read)
            .collect();
        assert_eq!(reads.len(), 2);
        for s in &reads {
            assert_eq!(s.class, Classification::AlwaysMiss, "site {}", s.site.id);
        }
        let d = validate_classification(&p, &[Inputs::new()], &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    /// A branch-dependent eviction pattern leaves the victim site
    /// not-classified — and a sound NC claims nothing, so validation stays
    /// clean even though the site both hits and misses dynamically.
    #[test]
    fn branch_dependent_eviction_is_not_classified() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        let a = b.array("a", 8);
        let bb = b.array("b", 8);
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(4),
            4,
            vec![
                Stmt::if_(
                    Expr::var(i).rem(Expr::c(2)).ne(Expr::c(0)),
                    vec![Stmt::Assign(x, Expr::load(a, Expr::c(0)))],
                    vec![],
                ),
                Stmt::Assign(y, Expr::load(bb, Expr::c(0))),
            ],
        ));
        let p = b.build().unwrap();
        let dl1 = CacheGeometry::new(32, 1, 32).unwrap();
        let cls = classify(&p, l1(), dl1);
        let b_read = cls
            .sites
            .iter()
            .rfind(|s| s.site.kind == AccessKind::Read)
            .unwrap();
        assert_eq!(b_read.class, Classification::NotClassified);
        let d = validate_classification(&p, &[Inputs::new()], &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    /// Each CCA00x code actually fires when the classification is wrong.
    #[test]
    fn seeded_violations_fire_every_code() {
        let (p, _) = thrash_program();
        let dl1 = CacheGeometry::new(32, 1, 32).unwrap();
        let cls = classify(&p, l1(), dl1);

        let mut bad = cls.clone();
        for s in &mut bad.sites {
            s.class = Classification::AlwaysHit;
        }
        let d = validate_classification(&p, &[Inputs::new()], &bad).unwrap();
        assert!(d.codes().contains(&DiagCode::Cca001), "{d}");
        assert!(d.codes().contains(&DiagCode::Cca004), "{d}");

        let mut bad = cls.clone();
        for s in &mut bad.sites {
            s.class = Classification::AlwaysMiss;
        }
        let d = validate_classification(&p, &[Inputs::new()], &bad).unwrap();
        assert!(d.codes().contains(&DiagCode::Cca002), "{d}");
        assert!(d.codes().contains(&DiagCode::Cca004), "{d}");

        // The a-read misses on every iteration; claiming first-miss over
        // the whole program is refuted on the second iteration.
        let mut bad = cls.clone();
        let a_read = bad
            .sites
            .iter()
            .position(|s| s.site.kind == AccessKind::Read)
            .unwrap();
        bad.sites[a_read].class = Classification::FirstMiss(Scope::Program);
        let d = validate_classification(&p, &[Inputs::new()], &bad).unwrap();
        assert_eq!(d.codes(), vec![DiagCode::Cca003], "{d}");
    }

    /// Data-dependent indices produce range sites; the analysis stays sound
    /// across a while/if nest exercised on several paths.
    #[test]
    fn range_sites_in_while_if_nest_validate_clean() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let s = b.var("s");
        let a = b.array("a", 8);
        b.push(Stmt::while_(
            Expr::var(x).gt(Expr::c(0)),
            8,
            vec![
                Stmt::if_(
                    Expr::var(x).rem(Expr::c(2)).ne(Expr::c(0)),
                    vec![Stmt::Assign(
                        s,
                        Expr::var(s).add(Expr::load(a, Expr::var(x).sub(Expr::c(1)))),
                    )],
                    vec![Stmt::Assign(s, Expr::var(s).add(Expr::c(1)))],
                ),
                Stmt::store(a, Expr::var(x).sub(Expr::c(1)), Expr::var(s)),
                Stmt::Assign(x, Expr::var(x).sub(Expr::c(1))),
            ],
        ));
        let p = b.build().unwrap();
        let cls = classify(&p, l1(), l1());
        assert!(
            cls.sites
                .iter()
                .any(|cs| matches!(cs.site.loc, SiteLoc::Range { .. })),
            "expected data-dependent range sites"
        );
        let inputs = [
            Inputs::new(),
            Inputs::new().with_var(x, 3),
            Inputs::new().with_var(x, 8),
        ];
        let d = validate_classification(&p, &inputs, &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    /// Touch reads wrap their index into the array; the mirror and site
    /// model must agree with the interpreter on that too.
    #[test]
    fn touch_and_nop_sites_validate_clean() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let a = b.array("a", 4);
        b.push(Stmt::Touch {
            refs: vec![(a, Expr::var(x))],
            pad: 2,
        });
        b.push(Stmt::Nop { count: 3 });
        let p = b.build().unwrap();
        let cls = classify(&p, l1(), l1());
        let read = cls
            .sites
            .iter()
            .find(|s| s.site.kind == AccessKind::Read)
            .unwrap();
        assert_eq!(
            read.site.loc,
            SiteLoc::Range {
                base: DATA_BASE,
                end: DATA_BASE + 16
            }
        );
        let inputs = [Inputs::new(), Inputs::new().with_var(x, 100)];
        let d = validate_classification(&p, &inputs, &cls).unwrap();
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn codes_and_display() {
        assert_eq!(Classification::AlwaysHit.code(), "AH");
        assert_eq!(Classification::AlwaysMiss.code(), "AM");
        assert_eq!(Classification::FirstMiss(Scope::Program).code(), "FM");
        assert_eq!(Classification::NotClassified.code(), "NC");
        assert_eq!(
            Classification::FirstMiss(Scope::Loop(3)).to_string(),
            "first-miss(loop 3)"
        );
        assert_eq!(SiteLoc::Addr(0x1000).to_string(), "0x1000");
        assert_eq!(
            SiteLoc::Range {
                base: 0x10,
                end: 0x20
            }
            .to_string(),
            "0x10..0x20"
        );
    }
}
